"""System configuration for the InvisiFence reproduction.

The defaults follow Figure 6 of the paper (the Flexus baseline system):
16 cores at 4 GHz, 64 KB 2-way L1 data caches with 64-byte blocks and a
2-cycle load-to-use latency, an 8 MB 8-way shared L2 with a 25-cycle hit
latency, 40 ns main memory, and a 4x4 2-D torus interconnect with 25 ns
per-hop latency.  Store buffers are a 64-entry word-granularity FIFO for SC
and TSO, an 8-entry block-granularity coalescing buffer for RMO and
single-checkpoint InvisiFence, and a 32-entry coalescing buffer for
configurations with two in-flight checkpoints (including
InvisiFence-Continuous).

All latencies are expressed in core clock cycles.  The paper's nanosecond
figures are converted at 4 GHz (1 ns = 4 cycles).

Two factory helpers are provided:

* :func:`paper_config` -- the full Figure 6 system.
* :func:`small_config` -- a scaled-down system (fewer cores, smaller caches,
  shorter latencies) used by the test suite and the quick benchmark presets
  so that runs finish in seconds while preserving the latency *ratios* that
  drive the paper's effects.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

from .errors import ConfigurationError


class ConsistencyModel(str, Enum):
    """Memory consistency models studied by the paper (Section 2)."""

    SC = "sc"
    TSO = "tso"
    RMO = "rmo"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SpeculationMode(str, Enum):
    """How (and whether) post-retirement speculation is employed."""

    NONE = "none"
    SELECTIVE = "selective"
    CONTINUOUS = "continuous"
    ASO = "aso"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ViolationPolicy(str, Enum):
    """What to do when an external request conflicts with speculation."""

    ABORT = "abort"
    COMMIT_ON_VIOLATE = "commit_on_violate"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class StoreBufferKind(str, Enum):
    """Store buffer organisations from Figure 2 / Figure 6."""

    FIFO_WORD = "fifo_word"
    COALESCING_BLOCK = "coalescing_block"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of a single cache level."""

    size_bytes: int
    associativity: int
    block_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.block_bytes <= 0:
            raise ConfigurationError("cache geometry values must be positive")
        if self.hit_latency < 0:
            raise ConfigurationError("hit latency must be non-negative")
        if self.size_bytes % (self.associativity * self.block_bytes) != 0:
            raise ConfigurationError(
                "cache size must be a multiple of associativity * block size"
            )
        if self.block_bytes & (self.block_bytes - 1):
            raise ConfigurationError("block size must be a power of two")

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity


@dataclass(frozen=True)
class StoreBufferConfig:
    """Capacity and granularity of a store buffer."""

    kind: StoreBufferKind
    entries: int
    entry_bytes: int

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigurationError("store buffer must have at least one entry")
        if self.entry_bytes <= 0:
            raise ConfigurationError("store buffer entry size must be positive")


#: Accepted values for :attr:`InterconnectConfig.contention`.
CONTENTION_MODES = ("none", "queued")

#: Largest machine the geometry resolver will lay out (an 8x8 torus).
MAX_RESOLVED_CORES = 64


@dataclass(frozen=True)
class InterconnectConfig:
    """2-D torus parameters (Figure 6), plus the optional contention model.

    ``contention`` selects the link model: ``"none"`` (the paper's
    contention-free network: every traversal costs ``hops * hop_latency``)
    or ``"queued"`` (messages queue per directed link and per ejection
    port, each occupying a link for ``hop_latency // link_bandwidth``
    cycles -- see DESIGN.md section 4).  The default is ``"none"`` so that
    existing configurations, cache keys aside, simulate byte-identically.
    """

    mesh_width: int
    mesh_height: int
    hop_latency: int
    contention: str = "none"
    #: messages one directed link can accept per ``hop_latency`` window
    #: (only meaningful under ``contention="queued"``).
    link_bandwidth: int = 1

    def __post_init__(self) -> None:
        if self.mesh_width <= 0 or self.mesh_height <= 0:
            raise ConfigurationError("torus dimensions must be positive")
        if self.hop_latency < 0:
            raise ConfigurationError("hop latency must be non-negative")
        if self.contention not in CONTENTION_MODES:
            raise ConfigurationError(
                f"unknown contention mode {self.contention!r}; "
                f"expected one of {CONTENTION_MODES}"
            )
        if self.link_bandwidth < 1:
            raise ConfigurationError("link bandwidth must be at least 1")

    @property
    def num_nodes(self) -> int:
        return self.mesh_width * self.mesh_height

    @property
    def link_occupancy(self) -> int:
        """Cycles one message occupies a link under ``contention="queued"``."""
        return max(1, self.hop_latency // self.link_bandwidth)


def torus_geometry(num_cores: int) -> Tuple[int, int]:
    """Resolve a core count to the most-square (width, height) torus.

    Every core gets exactly one node (no idle directory slices): the
    resolver picks the factor pair of ``num_cores`` with the smallest
    aspect ratio, preferring ``width <= height``.  Powers of two therefore
    map 4 -> 2x2, 8 -> 2x4, 16 -> 4x4, 32 -> 4x8, 64 -> 8x8, and prime
    counts degenerate to a 1xN ring.
    """
    if num_cores <= 0:
        raise ConfigurationError("need at least one core to lay out a torus")
    if num_cores > MAX_RESOLVED_CORES:
        raise ConfigurationError(
            f"geometry resolver supports up to {MAX_RESOLVED_CORES} cores "
            f"(8x8 torus), got {num_cores}"
        )
    width = 1
    for candidate in range(1, int(num_cores ** 0.5) + 1):
        if num_cores % candidate == 0:
            width = candidate
    return width, num_cores // width


def resolved_interconnect(num_cores: int, hop_latency: int = 25 * 4,
                          contention: str = "none",
                          link_bandwidth: int = 1) -> InterconnectConfig:
    """An :class:`InterconnectConfig` sized for ``num_cores`` by the resolver."""
    width, height = torus_geometry(num_cores)
    return InterconnectConfig(mesh_width=width, mesh_height=height,
                              hop_latency=hop_latency, contention=contention,
                              link_bandwidth=link_bandwidth)


@dataclass(frozen=True)
class SpeculationConfig:
    """Policy knobs for post-retirement speculation (Sections 3 and 4)."""

    mode: SpeculationMode = SpeculationMode.NONE
    violation_policy: ViolationPolicy = ViolationPolicy.ABORT
    num_checkpoints: int = 1
    #: commit-on-violate deferral window, in cycles (paper: 4000).
    cov_timeout: int = 4000
    #: minimum chunk size for continuous speculation (paper: ~100 insns).
    min_chunk_size: int = 100
    #: ASO takes an additional checkpoint every this many retired ops.
    aso_checkpoint_interval: int = 64
    #: per-store drain cost when ASO commits its SSB into the L2.
    aso_drain_cycles_per_store: int = 2
    #: instructions into a speculation after which a 2-checkpoint selective
    #: configuration takes its second checkpoint.
    second_checkpoint_threshold: int = 64

    def __post_init__(self) -> None:
        if self.num_checkpoints < 1:
            raise ConfigurationError("at least one checkpoint is required")
        if self.num_checkpoints > 2 and self.mode != SpeculationMode.ASO:
            raise ConfigurationError(
                "InvisiFence supports at most two in-flight checkpoints"
            )
        if self.cov_timeout <= 0:
            raise ConfigurationError("CoV timeout must be positive")
        if self.min_chunk_size <= 0:
            raise ConfigurationError("minimum chunk size must be positive")
        if self.aso_checkpoint_interval <= 0:
            raise ConfigurationError("ASO checkpoint interval must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated machine configuration."""

    num_cores: int = 16
    consistency: ConsistencyModel = ConsistencyModel.SC
    speculation: SpeculationConfig = field(default_factory=SpeculationConfig)

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=64 * 1024, associativity=2, block_bytes=64, hit_latency=2
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=8 * 1024 * 1024, associativity=8, block_bytes=64, hit_latency=25
        )
    )
    store_buffer: Optional[StoreBufferConfig] = None
    interconnect: InterconnectConfig = field(
        default_factory=lambda: InterconnectConfig(
            mesh_width=4, mesh_height=4, hop_latency=25 * 4
        )
    )
    #: main memory access latency (paper: 40 ns at 4 GHz).
    memory_latency: int = 160
    #: fixed directory/protocol-controller occupancy per transaction.
    directory_latency: int = 8
    #: latency of a clean-writeback used to preserve pre-speculative data.
    clean_writeback_latency: int = 30
    #: store-prefetch lead: the baseline processors issue store prefetches at
    #: execute time (Section 6.1), so by the time a store retires its miss
    #: has typically been outstanding for a while.  The retirement-level core
    #: model approximates this by shortening the visible latency of write
    #: misses by this many cycles (never below the L1 hit latency).
    store_prefetch_lead: int = 150
    #: maximum retirement width (ops retired back-to-back per cycle is 1 in
    #: this model; compute ops carry their own multi-instruction weight).
    retire_width: int = 4
    #: address-interleaved L2 banks.  One bank is the paper's monolithic
    #: shared L2; larger machines split the tag array so capacity conflicts
    #: stay local to a bank (see DESIGN.md section 4).
    l2_banks: int = 1

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigurationError("need at least one core")
        if self.num_cores > self.interconnect.num_nodes:
            raise ConfigurationError(
                "interconnect has fewer nodes than there are cores"
            )
        if self.l1.block_bytes != self.l2.block_bytes:
            raise ConfigurationError("L1 and L2 must use the same block size")
        if self.l2_banks < 1:
            raise ConfigurationError("the L2 needs at least one bank")
        if self.l2.num_sets % self.l2_banks != 0:
            raise ConfigurationError(
                f"L2 with {self.l2.num_sets} sets cannot be split into "
                f"{self.l2_banks} equal banks"
            )
        if self.memory_latency < 0 or self.directory_latency < 0:
            raise ConfigurationError("latencies must be non-negative")
        if self.store_buffer is None:
            object.__setattr__(
                self, "store_buffer", default_store_buffer(self.consistency, self.speculation)
            )

    # -- convenience -----------------------------------------------------

    @property
    def block_bytes(self) -> int:
        return self.l1.block_bytes

    @property
    def uses_speculation(self) -> bool:
        return self.speculation.mode != SpeculationMode.NONE

    def describe(self) -> Dict[str, str]:
        """Return a flat, printable description of this configuration."""
        sb = self.store_buffer
        assert sb is not None
        return {
            "cores": str(self.num_cores),
            "consistency": self.consistency.value,
            "speculation": self.speculation.mode.value,
            "violation policy": self.speculation.violation_policy.value,
            "checkpoints": str(self.speculation.num_checkpoints),
            "L1": f"{self.l1.size_bytes // 1024}KB {self.l1.associativity}-way, "
                  f"{self.l1.hit_latency}-cycle",
            "L2": f"{self.l2.size_bytes // (1024 * 1024)}MB {self.l2.associativity}-way, "
                  f"{self.l2.hit_latency}-cycle"
                  + (f", {self.l2_banks} banks" if self.l2_banks > 1 else ""),
            "store buffer": f"{sb.kind.value} x{sb.entries} ({sb.entry_bytes}B)",
            "memory latency": f"{self.memory_latency} cycles",
            "interconnect": f"{self.interconnect.mesh_width}x"
                            f"{self.interconnect.mesh_height} torus, "
                            f"{self.interconnect.hop_latency} cycles/hop"
                            + (f", {self.interconnect.contention} contention"
                               if self.interconnect.contention != "none" else ""),
        }

    def replace(self, **changes: object) -> "SystemConfig":
        """Return a copy of this configuration with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    # -- (de)serialization -----------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form suitable for ``json.dumps``.

        The enum fields are ``str`` subclasses, so the output serializes
        to JSON directly; :meth:`from_dict` restores the enum types.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SystemConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        spec = dict(data["speculation"])
        spec["mode"] = SpeculationMode(spec["mode"])
        spec["violation_policy"] = ViolationPolicy(spec["violation_policy"])
        store_buffer = None
        if data.get("store_buffer") is not None:
            sb = dict(data["store_buffer"])
            sb["kind"] = StoreBufferKind(sb["kind"])
            store_buffer = StoreBufferConfig(**sb)
        return cls(
            num_cores=data["num_cores"],
            consistency=ConsistencyModel(data["consistency"]),
            speculation=SpeculationConfig(**spec),
            l1=CacheConfig(**data["l1"]),
            l2=CacheConfig(**data["l2"]),
            store_buffer=store_buffer,
            interconnect=InterconnectConfig(**data["interconnect"]),
            memory_latency=data["memory_latency"],
            directory_latency=data["directory_latency"],
            clean_writeback_latency=data["clean_writeback_latency"],
            store_prefetch_lead=data["store_prefetch_lead"],
            retire_width=data["retire_width"],
            l2_banks=data.get("l2_banks", 1),
        )


def default_store_buffer(
    consistency: ConsistencyModel, speculation: SpeculationConfig
) -> StoreBufferConfig:
    """Pick the Figure 6 store buffer for a consistency/speculation pair.

    SC and TSO conventionally use an 8-byte, 64-entry FIFO.  RMO and
    InvisiFence use a 64-byte coalescing buffer with 8 entries, enlarged to
    32 entries when two checkpoints may be in flight (which includes
    InvisiFence-Continuous).  ASO's SSB is modelled separately; its L1-side
    buffer matches the coalescing organisation.
    """
    if speculation.mode == SpeculationMode.NONE:
        if consistency in (ConsistencyModel.SC, ConsistencyModel.TSO):
            return StoreBufferConfig(StoreBufferKind.FIFO_WORD, 64, 8)
        return StoreBufferConfig(StoreBufferKind.COALESCING_BLOCK, 8, 64)
    if speculation.mode == SpeculationMode.ASO:
        # ASO's Scalable Store Buffer: a large per-store FIFO (the controller
        # replaces this with a ScalableStoreBuffer instance of the same shape).
        return StoreBufferConfig(StoreBufferKind.FIFO_WORD, 256, 8)
    if speculation.mode == SpeculationMode.CONTINUOUS:
        return StoreBufferConfig(StoreBufferKind.COALESCING_BLOCK, 32, 64)
    if speculation.num_checkpoints >= 2:
        return StoreBufferConfig(StoreBufferKind.COALESCING_BLOCK, 32, 64)
    return StoreBufferConfig(StoreBufferKind.COALESCING_BLOCK, 8, 64)


def default_l2_banks(num_cores: int) -> int:
    """L2 banking for a core count: monolithic up to 16 cores, then split.

    The paper's 16-core machine uses one shared L2; larger machines split
    the tag array roughly one bank per 16 cores (32 -> 2, 64 -> 4) so a
    single bank's set conflicts do not become a global bottleneck.  The
    bank count is rounded down to a power of two so it always divides the
    (power-of-two) set counts of the stock L2 configurations — 48 cores
    get 2 banks, not an unsplittable 3.
    """
    banks = 1
    while banks * 2 <= num_cores // 16:
        banks *= 2
    return banks


def paper_config(
    consistency: ConsistencyModel = ConsistencyModel.SC,
    speculation: Optional[SpeculationConfig] = None,
    num_cores: int = 16,
    interconnect: Optional[InterconnectConfig] = None,
) -> SystemConfig:
    """Build the Figure 6 baseline system for a given configuration.

    The torus is sized for ``num_cores`` by :func:`torus_geometry` (the
    paper's 16 cores resolve to its 4x4 torus) unless an explicit
    ``interconnect`` overrides it, e.g. to enable the contention model.
    """
    spec = speculation if speculation is not None else SpeculationConfig()
    if interconnect is None:
        interconnect = resolved_interconnect(num_cores, hop_latency=25 * 4)
    return SystemConfig(num_cores=num_cores, consistency=consistency,
                        speculation=spec, interconnect=interconnect,
                        l2_banks=default_l2_banks(num_cores))


def small_config(
    consistency: ConsistencyModel = ConsistencyModel.SC,
    speculation: Optional[SpeculationConfig] = None,
    num_cores: int = 4,
    interconnect: Optional[InterconnectConfig] = None,
) -> SystemConfig:
    """A scaled-down system for tests and quick benchmark runs.

    Latency ratios (L1 : L2 : memory : hop) follow the paper; absolute
    values and cache sizes are reduced so that small synthetic traces
    exercise capacity effects and runs complete quickly.
    """
    spec = speculation if speculation is not None else SpeculationConfig()
    if interconnect is None:
        interconnect = resolved_interconnect(num_cores, hop_latency=20)
    return SystemConfig(
        num_cores=num_cores,
        consistency=consistency,
        speculation=spec,
        l1=CacheConfig(size_bytes=8 * 1024, associativity=2, block_bytes=64,
                       hit_latency=2),
        l2=CacheConfig(size_bytes=256 * 1024, associativity=8, block_bytes=64,
                       hit_latency=12),
        interconnect=interconnect,
        memory_latency=80,
        directory_latency=4,
        clean_writeback_latency=10,
        store_prefetch_lead=30,
        l2_banks=default_l2_banks(num_cores),
    )

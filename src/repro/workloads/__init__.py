"""Synthetic multithreaded workloads.

The paper evaluates InvisiFence on commercial server workloads (Apache,
Zeus, OLTP on Oracle and DB2, DSS on DB2) and two SPLASH-2 scientific codes
(Barnes, Ocean) running on a full-system simulator.  Those applications and
datasets are proprietary and cannot be traced here, so this package
generates *synthetic* multithreaded memory traces whose first-order
behaviours match the per-workload characteristics that drive the paper's
results: synchronisation frequency (atomics + fences from fine-grained
locking), store burstiness, cache-miss rates, and the amount and style of
inter-thread sharing (which determines the conflict rate seen by
speculation).

See DESIGN.md for the substitution rationale and
:mod:`repro.workloads.presets` for the per-workload parameterisation.
"""

from .spec import WorkloadSpec
from .generator import SyntheticWorkloadGenerator, generate_workload
from .presets import WORKLOAD_PRESETS, preset, workload_names
from .registry import build_trace, resolve_spec

__all__ = [
    "resolve_spec",
    "WorkloadSpec",
    "SyntheticWorkloadGenerator",
    "generate_workload",
    "WORKLOAD_PRESETS",
    "preset",
    "workload_names",
    "build_trace",
]

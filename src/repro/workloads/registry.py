"""Workload resolution: name -> ready-to-run multithreaded trace.

Names resolve against the workload presets first, then against the
scenario registry, so a scenario short-name is accepted anywhere a
workload preset name is (the campaign executor, the CLI's ``sweep`` and
``simulate``, the figure drivers).  :func:`resolve_spec` returns the
scaled specification object itself, which is what the result cache hashes
to key a cell.
"""

from __future__ import annotations

from typing import Optional

from ..errors import WorkloadError
from ..trace.trace import MultiThreadedTrace
from .generator import generate_workload
from .presets import WORKLOAD_PRESETS, preset, workload_names
from .spec import WorkloadSpec


def resolve_spec(name_or_spec, ops_per_thread: Optional[int] = None):
    """Resolve a name or spec to a scaled ``WorkloadSpec``/``ScenarioSpec``.

    ``ops_per_thread`` rescales the spec (proportionally across phases for
    scenarios).  Raises :class:`WorkloadError` for unknown names.
    """
    # Imported lazily: the scenarios package builds on the workload layer,
    # so a module-level import would be circular.
    from ..scenarios.registry import DEFAULT_SCENARIO_REGISTRY
    from ..scenarios.spec import ScenarioSpec

    if isinstance(name_or_spec, (WorkloadSpec, ScenarioSpec)):
        spec = name_or_spec
    elif name_or_spec in WORKLOAD_PRESETS:
        spec = preset(name_or_spec)
    elif name_or_spec in DEFAULT_SCENARIO_REGISTRY:
        spec = DEFAULT_SCENARIO_REGISTRY.get(name_or_spec)
    else:
        raise WorkloadError(
            f"unknown workload {name_or_spec!r}; available workloads: "
            f"{', '.join(workload_names())}; scenarios: "
            f"{', '.join(DEFAULT_SCENARIO_REGISTRY.names())}"
        )
    if ops_per_thread is not None:
        spec = spec.scaled(ops_per_thread)
    return spec


def build_trace(name_or_spec, num_threads: int, ops_per_thread: Optional[int] = None,
                seed: int = 0) -> MultiThreadedTrace:
    """Build the trace for a workload preset, scenario name, or spec object.

    ``ops_per_thread`` overrides the spec's trace length (experiments use
    this to trade fidelity for runtime).
    """
    from ..scenarios.engine import generate_scenario
    from ..scenarios.spec import ScenarioSpec

    spec = resolve_spec(name_or_spec, ops_per_thread)
    if isinstance(spec, ScenarioSpec):
        return generate_scenario(spec, num_threads=num_threads, seed=seed)
    return generate_workload(spec, num_threads=num_threads, seed=seed)

"""Workload registry: name -> ready-to-run multithreaded trace."""

from __future__ import annotations

from typing import Optional

from ..trace.trace import MultiThreadedTrace
from .generator import generate_workload
from .presets import preset
from .spec import WorkloadSpec


def build_trace(name_or_spec, num_threads: int, ops_per_thread: Optional[int] = None,
                seed: int = 0) -> MultiThreadedTrace:
    """Build the trace for a preset name or an explicit :class:`WorkloadSpec`.

    ``ops_per_thread`` overrides the spec's trace length (experiments use
    this to trade fidelity for runtime).
    """
    spec: WorkloadSpec = preset(name_or_spec) if isinstance(name_or_spec, str) else name_or_spec
    if ops_per_thread is not None:
        spec = spec.scaled(ops_per_thread)
    return generate_workload(spec, num_threads=num_threads, seed=seed)

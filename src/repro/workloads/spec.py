"""Workload specification.

A :class:`WorkloadSpec` captures the knobs of the synthetic trace
generator.  Each knob maps to a behaviour that the paper's evaluation
depends on:

* ``sync_interval`` / ``critical_section_len`` / ``num_locks`` -- how often
  threads execute lock acquires (an atomic plus an acquire fence) and how
  contended those locks are; this drives the "SB drain" stalls of TSO/RMO
  and the conflict rate seen during speculation.
* ``store_fraction`` / ``store_burst_len`` -- store density and
  burstiness; bursts of store misses fill the word-granularity FIFO store
  buffers of SC/TSO ("SB full" stalls).
* ``shared_fraction`` / ``shared_blocks`` / ``locality`` -- footprint and
  sharing, which set the cache miss rate ("Other" stalls) and the amount
  of invalidation traffic.
* ``migratory_fraction`` -- read-modify-write sharing on hot blocks, the
  classic producer/consumer pattern that generates invalidations to
  recently read blocks (the main source of speculation violations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import WorkloadError


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic workload."""

    name: str
    description: str = ""

    # -- scale ---------------------------------------------------------------
    ops_per_thread: int = 20_000

    # -- instruction mix (fractions of non-synchronisation operations) -------
    load_fraction: float = 0.42
    store_fraction: float = 0.28
    compute_fraction: float = 0.30
    #: mean cycles per compute bundle (geometric distribution).
    compute_run_mean: float = 3.0

    # -- synchronisation -------------------------------------------------------
    #: mean number of operations between critical sections.
    sync_interval: float = 200.0
    #: mean operations inside a critical section.
    critical_section_len: float = 6.0
    #: number of distinct locks (fewer locks => more contention).
    num_locks: int = 64
    #: data blocks protected by each lock (accessed inside its section).
    blocks_per_lock: int = 4
    #: probability that a critical section uses a lock from the thread's own
    #: partition of the lock space rather than a uniformly random lock.
    #: Real servers partition most locking (per-connection, per-transaction
    #: state); only the remainder is truly contended across cores.  A
    #: trace-driven model has no lock hand-off causality, so without this
    #: knob every acquire would be a potential cross-core conflict.
    lock_affinity: float = 0.75

    # -- memory footprint and locality ------------------------------------------
    #: private blocks per thread.
    private_blocks: int = 2_048
    #: globally shared blocks.
    shared_blocks: int = 8_192
    #: fraction of data accesses that go to the shared region.
    shared_fraction: float = 0.25
    #: probability that an access reuses a recently touched block.
    locality: float = 0.80
    #: size of the per-region reuse window (blocks).
    reuse_window: int = 32

    # -- store behaviour -----------------------------------------------------------
    #: probability that a store starts a burst of streaming stores.
    store_burst_prob: float = 0.05
    #: mean length of a store burst (consecutive blocks).
    store_burst_len: float = 4.0

    # -- sharing style ---------------------------------------------------------------
    #: fraction of shared accesses that are migratory read-modify-writes.
    migratory_fraction: float = 0.10
    #: number of hot migratory blocks.
    migratory_blocks: int = 64

    # -- lock-free synchronisation -----------------------------------------------------
    #: probability that a background operation is a standalone atomic
    #: (e.g. an atomic counter increment, no fence attached).  These are the
    #: operations that make TSO pay a store-buffer drain where RMO only
    #: waits for the atomic's own block.
    lockfree_atomic_prob: float = 0.0
    #: number of shared counter blocks targeted by lock-free atomics.
    atomic_counter_blocks: int = 32

    def __post_init__(self) -> None:
        fractions = (self.load_fraction, self.store_fraction, self.compute_fraction)
        if any(f < 0 for f in fractions):
            raise WorkloadError("instruction-mix fractions must be non-negative")
        if abs(sum(fractions) - 1.0) > 1e-6:
            raise WorkloadError(
                f"instruction-mix fractions must sum to 1.0, got {sum(fractions):.3f}"
            )
        if self.ops_per_thread <= 0:
            raise WorkloadError("ops_per_thread must be positive")
        if self.sync_interval <= 0 or self.critical_section_len <= 0:
            raise WorkloadError("synchronisation parameters must be positive")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise WorkloadError("shared_fraction must lie in [0, 1]")
        if not 0.0 <= self.locality <= 1.0:
            raise WorkloadError("locality must lie in [0, 1]")
        if not 0.0 <= self.migratory_fraction <= 1.0:
            raise WorkloadError("migratory_fraction must lie in [0, 1]")
        if self.num_locks <= 0 or self.private_blocks <= 0 or self.shared_blocks <= 0:
            raise WorkloadError("region sizes must be positive")
        if not 0.0 <= self.lockfree_atomic_prob <= 1.0:
            raise WorkloadError("lockfree_atomic_prob must lie in [0, 1]")
        if not 0.0 <= self.lock_affinity <= 1.0:
            raise WorkloadError("lock_affinity must lie in [0, 1]")
        if self.atomic_counter_blocks <= 0:
            raise WorkloadError("atomic_counter_blocks must be positive")

    def scaled(self, ops_per_thread: int) -> "WorkloadSpec":
        """Return a copy of this spec with a different trace length."""
        import dataclasses

        return dataclasses.replace(self, ops_per_thread=ops_per_thread)

    def describe(self) -> Dict[str, str]:
        """Printable summary (used by the Figure 7 table)."""
        return {
            "name": self.name,
            "description": self.description,
            "sync interval": f"{self.sync_interval:.0f} ops",
            "locks": str(self.num_locks),
            "store fraction": f"{self.store_fraction:.2f}",
            "shared fraction": f"{self.shared_fraction:.2f}",
            "footprint": f"{self.private_blocks} private + {self.shared_blocks} shared blocks",
        }

"""Per-workload parameterisations (the Figure 7 analogues).

The presets are calibrated to reproduce the qualitative behaviours the
paper reports for each application class:

* **apache / zeus** (web servers): very frequent fine-grained locking and
  lock-free synchronisation, bursty stores (network buffers, logging), a
  moderate shared working set.  These show the largest fence/atomic
  penalties under conventional TSO/RMO.
* **oltp-oracle / oltp-db2** (TPC-C): frequent synchronisation plus a large
  working set with poor locality, so "Other" (plain miss) stalls are a big
  fraction of time; store bursts from redo logging.
* **dss-db2** (TPC-H query): scan-dominated, relatively few
  synchronisation operations, large streaming footprint.
* **barnes / ocean** (SPLASH-2): scientific codes with long compute phases
  and infrequent synchronisation; RMO shows essentially no ordering stalls
  here, which the paper uses to show InvisiFence's benefit persists only
  where synchronisation is frequent.

Calibration notes: trace lengths of a few thousand operations per thread
mean cold misses are a larger share than in the paper's multi-second
samples, and the retirement-level core model has no reorder-buffer overlap,
so absolute stall percentages run higher than the paper's; the calibration
targets the *relative* shape across workloads and consistency models (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import WorkloadError
from .spec import WorkloadSpec

WORKLOAD_PRESETS: Dict[str, WorkloadSpec] = {
    "apache": WorkloadSpec(
        name="apache",
        description="Web server, 16K connections, fastCGI, worker threading model",
        load_fraction=0.40, store_fraction=0.30, compute_fraction=0.30,
        compute_run_mean=3.0,
        sync_interval=55.0, critical_section_len=5.0, num_locks=64,
        blocks_per_lock=4, lock_affinity=0.60,
        private_blocks=768, shared_blocks=4_096, shared_fraction=0.22,
        locality=0.88, reuse_window=32,
        store_burst_prob=0.03, store_burst_len=4.0,
        migratory_fraction=0.04, migratory_blocks=64,
        lockfree_atomic_prob=0.015, atomic_counter_blocks=64,
    ),
    "zeus": WorkloadSpec(
        name="zeus",
        description="Web server, 16K connections, fastCGI",
        load_fraction=0.41, store_fraction=0.29, compute_fraction=0.30,
        compute_run_mean=3.0,
        sync_interval=70.0, critical_section_len=4.0, num_locks=64,
        blocks_per_lock=4, lock_affinity=0.65,
        private_blocks=768, shared_blocks=4_096, shared_fraction=0.20,
        locality=0.89, reuse_window=32,
        store_burst_prob=0.03, store_burst_len=4.0,
        migratory_fraction=0.05, migratory_blocks=64,
        lockfree_atomic_prob=0.012, atomic_counter_blocks=64,
    ),
    "oltp-oracle": WorkloadSpec(
        name="oltp-oracle",
        description="TPC-C, 100 warehouses, 16 clients, 1.4 GB SGA",
        load_fraction=0.45, store_fraction=0.27, compute_fraction=0.28,
        compute_run_mean=3.0,
        sync_interval=95.0, critical_section_len=7.0, num_locks=128,
        blocks_per_lock=6, lock_affinity=0.70,
        private_blocks=2_048, shared_blocks=12_288, shared_fraction=0.40,
        locality=0.68, reuse_window=16,
        store_burst_prob=0.02, store_burst_len=5.0,
        migratory_fraction=0.08, migratory_blocks=96,
        lockfree_atomic_prob=0.008, atomic_counter_blocks=64,
    ),
    "oltp-db2": WorkloadSpec(
        name="oltp-db2",
        description="TPC-C, 100 warehouses, 64 clients, 450 MB buffer pool",
        load_fraction=0.45, store_fraction=0.26, compute_fraction=0.29,
        compute_run_mean=3.0,
        sync_interval=115.0, critical_section_len=6.0, num_locks=128,
        blocks_per_lock=6, lock_affinity=0.70,
        private_blocks=2_048, shared_blocks=12_288, shared_fraction=0.38,
        locality=0.70, reuse_window=16,
        store_burst_prob=0.02, store_burst_len=5.0,
        migratory_fraction=0.07, migratory_blocks=96,
        lockfree_atomic_prob=0.006, atomic_counter_blocks=64,
    ),
    "dss-db2": WorkloadSpec(
        name="dss-db2",
        description="TPC-H query 2 on DB2, 450 MB buffer pool",
        load_fraction=0.55, store_fraction=0.15, compute_fraction=0.30,
        compute_run_mean=5.0,
        sync_interval=600.0, critical_section_len=5.0, num_locks=128,
        blocks_per_lock=4, lock_affinity=0.80,
        private_blocks=3_072, shared_blocks=16_384, shared_fraction=0.45,
        locality=0.60, reuse_window=8,
        store_burst_prob=0.02, store_burst_len=8.0,
        migratory_fraction=0.02, migratory_blocks=64,
        lockfree_atomic_prob=0.002, atomic_counter_blocks=32,
    ),
    "barnes": WorkloadSpec(
        name="barnes",
        description="SPLASH-2 Barnes-Hut, 16K bodies, 2.0 subdivision tolerance",
        load_fraction=0.40, store_fraction=0.20, compute_fraction=0.40,
        compute_run_mean=6.0,
        sync_interval=1_500.0, critical_section_len=4.0, num_locks=256,
        blocks_per_lock=2, lock_affinity=0.80,
        private_blocks=640, shared_blocks=4_096, shared_fraction=0.10,
        locality=0.95, reuse_window=48,
        store_burst_prob=0.01, store_burst_len=3.0,
        migratory_fraction=0.03, migratory_blocks=32,
        lockfree_atomic_prob=0.001, atomic_counter_blocks=32,
    ),
    "ocean": WorkloadSpec(
        name="ocean",
        description="SPLASH-2 Ocean, 1026x1026 grid",
        load_fraction=0.42, store_fraction=0.28, compute_fraction=0.30,
        compute_run_mean=5.0,
        sync_interval=900.0, critical_section_len=3.0, num_locks=64,
        blocks_per_lock=2, lock_affinity=0.80,
        private_blocks=896, shared_blocks=4_096, shared_fraction=0.10,
        locality=0.92, reuse_window=32,
        store_burst_prob=0.02, store_burst_len=6.0,
        migratory_fraction=0.02, migratory_blocks=16,
        lockfree_atomic_prob=0.001, atomic_counter_blocks=32,
    ),
}


def workload_names() -> List[str]:
    """Workload names in the order the paper's figures present them."""
    return ["apache", "zeus", "oltp-oracle", "oltp-db2", "dss-db2", "barnes", "ocean"]


def preset(name: str) -> WorkloadSpec:
    """Look up a preset by name."""
    try:
        return WORKLOAD_PRESETS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        ) from None

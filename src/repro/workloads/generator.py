"""Synthetic trace generator.

Each thread's trace is generated independently from a deterministic
per-thread RNG stream (derived from the workload seed and thread id), so
traces are reproducible and threads can be generated lazily.

The generated behaviour, per thread:

* A background mix of compute bundles, loads, and stores over a private
  region and a shared region, with temporal locality modelled by a reuse
  window of recently touched blocks.
* Periodic critical sections: an atomic compare-and-swap on a lock block
  followed by an acquire fence, a handful of accesses to the blocks
  protected by that lock, and a releasing store to the lock block.  Locks
  and their data are shared by all threads, so contended locks generate
  invalidation traffic and speculation conflicts.
* Occasional store bursts over consecutive blocks (log flushing, buffer
  copies), which stress FIFO store buffer capacity.
* Occasional migratory read-modify-write accesses to a small set of hot
  shared blocks.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..memory.address import WORD_BYTES
from ..trace.ops import MemOp, atomic, compute, fence, load, store
from ..trace.trace import MultiThreadedTrace, Trace
from .spec import WorkloadSpec

#: Cache block size assumed by the address-map layout.
BLOCK_BYTES = 64

# Address-map region bases (in blocks).  Regions are disjoint by
# construction for any reasonable spec sizes.
_LOCK_REGION_BASE = 1_000
_LOCK_DATA_BASE = 10_000
_COUNTER_BASE = 50_000
_MIGRATORY_BASE = 60_000
_SHARED_BASE = 100_000
_PRIVATE_BASE = 10_000_000
_PRIVATE_STRIDE = 1_000_000


def _block_to_addr(block: int, rng: np.random.Generator) -> int:
    """Pick a word-aligned address inside ``block``."""
    offset = int(rng.integers(0, BLOCK_BYTES // WORD_BYTES)) * WORD_BYTES
    return block * BLOCK_BYTES + offset


def thread_rng(seed: int, thread_id: int) -> np.random.Generator:
    """The per-thread RNG stream used by single-spec workloads."""
    return np.random.default_rng((seed * 65_537 + thread_id) & 0x7FFFFFFF)


def phase_rng(seed: int, thread_id: int, phase_index: int) -> np.random.Generator:
    """Deterministic per-(seed, thread, phase) RNG stream.

    Phase splicing derives every phase's stream independently, so editing
    one phase of a scenario leaves the operations of every other phase
    bitwise unchanged.
    """
    entropy = (seed & 0xFFFFFFFF, thread_id, phase_index)
    return np.random.default_rng(np.random.SeedSequence(entropy))


class SyntheticWorkloadGenerator:
    """Generates a :class:`MultiThreadedTrace` from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec, num_threads: int, seed: int = 0) -> None:
        self.spec = spec
        self.num_threads = num_threads
        self.seed = seed

    # -- public API -----------------------------------------------------------

    def generate(self) -> MultiThreadedTrace:
        traces = [self.generate_thread(tid) for tid in range(self.num_threads)]
        return MultiThreadedTrace(traces, name=self.spec.name, seed=self.seed)

    def generate_thread(self, thread_id: int) -> Trace:
        rng = thread_rng(self.seed, thread_id)
        ops = self.emit_ops(thread_id, rng, self.spec.ops_per_thread)
        return Trace(ops, thread_id=thread_id)

    def emit_ops(self, thread_id: int, rng: np.random.Generator,
                 count: int) -> List[MemOp]:
        """Emit exactly ``count`` operations of this spec's mix.

        The RNG is injected so the scenario engine's phase splicing can
        drive one spec with an independent per-(seed, thread, phase)
        stream; :meth:`generate_thread` wraps this with the classic
        per-thread stream.
        """
        spec = self.spec
        ops: List[MemOp] = []

        private_base = _PRIVATE_BASE + thread_id * _PRIVATE_STRIDE
        private_recent: List[int] = []
        shared_recent: List[int] = []

        sync_prob = 1.0 / spec.sync_interval
        while len(ops) < count:
            if rng.random() < sync_prob:
                self._emit_critical_section(ops, rng, thread_id)
            else:
                self._emit_background_op(ops, rng, private_base,
                                         private_recent, shared_recent)
        del ops[count:]
        return ops

    # -- pieces ------------------------------------------------------------------

    def _pick_lock(self, rng: np.random.Generator, thread_id: int) -> int:
        """Choose a lock, biased towards the thread's own partition."""
        spec = self.spec
        if spec.lock_affinity and rng.random() < spec.lock_affinity:
            partition = max(1, spec.num_locks // max(1, self.num_threads))
            base = (thread_id % max(1, self.num_threads)) * partition
            return (base + int(rng.integers(0, partition))) % spec.num_locks
        return int(rng.integers(0, spec.num_locks))

    def _emit_critical_section(self, ops: List[MemOp], rng: np.random.Generator,
                               thread_id: int) -> None:
        spec = self.spec
        lock_id = self._pick_lock(rng, thread_id)
        lock_block = _LOCK_REGION_BASE + lock_id
        lock_addr = lock_block * BLOCK_BYTES

        # Acquire: atomic compare-and-swap plus an acquire fence.  Following
        # the paper's methodology, no fence is emitted at release.
        ops.append(atomic(lock_addr, label="lock_acquire"))
        ops.append(fence(label="acquire_fence"))

        length = max(1, int(rng.geometric(1.0 / spec.critical_section_len)))
        data_base = _LOCK_DATA_BASE + lock_id * spec.blocks_per_lock
        for _ in range(length):
            block = data_base + int(rng.integers(0, spec.blocks_per_lock))
            addr = _block_to_addr(block, rng)
            if rng.random() < 0.5:
                ops.append(load(addr, label="critical_read"))
            else:
                ops.append(store(addr, label="critical_write"))

        # Release: an ordinary store to the lock word.
        ops.append(store(lock_addr, label="lock_release"))

    def _emit_background_op(self, ops: List[MemOp], rng: np.random.Generator,
                            private_base: int, private_recent: List[int],
                            shared_recent: List[int]) -> None:
        spec = self.spec
        if spec.lockfree_atomic_prob and rng.random() < spec.lockfree_atomic_prob:
            # Lock-free synchronisation: an atomic increment on a shared
            # counter, with no fence attached.
            block = _COUNTER_BASE + int(rng.integers(0, spec.atomic_counter_blocks))
            ops.append(atomic(_block_to_addr(block, rng), label="lockfree_atomic"))
            return

        draw = rng.random()
        if draw < spec.compute_fraction:
            cycles = max(1, int(rng.geometric(1.0 / spec.compute_run_mean)))
            ops.append(compute(cycles))
            return

        is_store = draw < spec.compute_fraction + spec.store_fraction
        shared = rng.random() < spec.shared_fraction

        if shared and rng.random() < spec.migratory_fraction:
            # Migratory read-modify-write on a hot block.
            block = _MIGRATORY_BASE + int(rng.integers(0, spec.migratory_blocks))
            addr = _block_to_addr(block, rng)
            ops.append(load(addr, label="migratory_read"))
            ops.append(store(addr, label="migratory_write"))
            return

        if is_store and rng.random() < spec.store_burst_prob:
            self._emit_store_burst(ops, rng, private_base, shared)
            return

        block = self._pick_block(rng, private_base, shared,
                                 private_recent, shared_recent)
        addr = _block_to_addr(block, rng)
        label = "shared" if shared else "private"
        ops.append(store(addr, label=label) if is_store else load(addr, label=label))

    def _emit_store_burst(self, ops: List[MemOp], rng: np.random.Generator,
                          private_base: int, shared: bool) -> None:
        """Streaming stores over consecutive blocks (buffer copy / log write).

        Every word of every block is written, which is the access pattern
        that separates the two store-buffer organisations: a word-granularity
        FIFO needs eight entries per block while a coalescing buffer needs
        one (and none at all once the block is writable in the L1).
        """
        spec = self.spec
        length = max(2, int(rng.geometric(1.0 / spec.store_burst_len)))
        if shared:
            start = _SHARED_BASE + int(rng.integers(0, max(1, spec.shared_blocks - length)))
        else:
            start = private_base + int(rng.integers(0, max(1, spec.private_blocks - length)))
        for i in range(length):
            base = (start + i) * BLOCK_BYTES
            for word in range(BLOCK_BYTES // WORD_BYTES):
                ops.append(store(base + word * WORD_BYTES, label="burst"))

    def _pick_block(self, rng: np.random.Generator, private_base: int, shared: bool,
                    private_recent: List[int], shared_recent: List[int]) -> int:
        spec = self.spec
        recent = shared_recent if shared else private_recent
        if recent and rng.random() < spec.locality:
            return recent[int(rng.integers(0, len(recent)))]
        if shared:
            block = _SHARED_BASE + int(rng.integers(0, spec.shared_blocks))
        else:
            block = private_base + int(rng.integers(0, spec.private_blocks))
        recent.append(block)
        if len(recent) > spec.reuse_window:
            recent.pop(0)
        return block


def generate_workload(spec: WorkloadSpec, num_threads: int,
                      seed: int = 0) -> MultiThreadedTrace:
    """Generate a multi-threaded trace for ``spec``."""
    return SyntheticWorkloadGenerator(spec, num_threads, seed).generate()

"""Process-parallel campaign executor.

A :class:`CampaignExecutor` runs a list of :class:`~repro.campaign.jobs.Job`
cells and returns their :class:`~repro.engine.results.RunResult`\\ s in the
order the jobs were given, regardless of how many worker processes computed
them.  With ``jobs=1`` every cell runs in-process (the deterministic serial
path); with ``jobs>1`` missing cells fan out over a ``multiprocessing``
pool.  Because traces are generated deterministically from their seed and
the simulator itself is deterministic, both paths produce bitwise-identical
results.

When a :class:`~repro.campaign.cache.ResultCache` is attached, cached cells
are served from disk and only the missing cells are simulated; freshly
simulated cells are written back, so a repeated campaign simulates nothing.

Worker processes rebuild each trace from its (spec, seed) rather than
receiving it pickled: a trace is orders of magnitude bigger than its spec
and regenerating it is far cheaper than one simulation.  The *resolved*
spec object is shipped (not the workload name) so that scenarios or
presets registered at runtime in the parent also work under spawn-based
``multiprocessing``, where workers re-import the registries from scratch.
The serial path instead memoizes traces per (workload, seed) across the
executor's lifetime, so a figure's many configurations share one trace
build.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..config import SystemConfig
from ..engine.results import RunResult
from ..engine.simulator import simulate
from ..trace.trace import MultiThreadedTrace
from ..workloads.registry import build_trace, resolve_spec
from .cache import ResultCache, cache_key
from .jobs import Job, dedupe_jobs
from .registry import DEFAULT_REGISTRY, ConfigRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..experiments.common import ExperimentSettings

#: (config, scaled workload/scenario spec, seed, warmup_fraction) --
#: everything a worker needs to simulate one cell, all cheaply picklable.
_CellPayload = Tuple[SystemConfig, object, int, float]


def _simulate_cell(payload: _CellPayload) -> RunResult:
    """Worker entry point: build the trace and simulate one cell."""
    config, spec, seed, warmup_fraction = payload
    trace = build_trace(spec, num_threads=config.num_cores, seed=seed)
    return simulate(config, trace, warmup_fraction=warmup_fraction)


@dataclass
class CampaignReport:
    """What one :meth:`CampaignExecutor.run` call actually did."""

    total: int = 0
    simulated: int = 0
    cache_hits: int = 0
    #: duplicate cells folded into one simulation.
    deduplicated: int = 0

    def describe(self, cache: Optional[ResultCache] = None) -> str:
        """One-line human summary (shared by the CLI and scripts)."""
        where = "no cache" if cache is None else str(cache.root)
        return f"{self.simulated} simulated, {self.cache_hits} cache hits ({where})"


class CampaignExecutor:
    """Fans (config, workload, seed) cells out over worker processes."""

    def __init__(self, settings: "ExperimentSettings", jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 registry: Optional[ConfigRegistry] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.settings = settings
        self.jobs = jobs
        self.cache = cache
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.last_report = CampaignReport()
        self._traces: Dict[Tuple[str, int, int], MultiThreadedTrace] = {}

    # -- building blocks ----------------------------------------------------

    def config_for(self, job: Job) -> SystemConfig:
        return self.registry.make(job.config_name, self.settings)

    def trace_for(self, workload: str, seed: int,
                  num_threads: Optional[int] = None) -> MultiThreadedTrace:
        """Build (or reuse) the trace for one (workload, seed) cell.

        ``num_threads`` defaults to the settings' core count; a registered
        configuration that overrides ``num_cores`` (a geometry variant)
        gets its own memo entry, so the serial path builds exactly the
        trace a pool worker would rebuild from the shipped config.
        Memoized for the executor's lifetime: the in-process serial path
        shares one trace across every configuration that replays it, as do
        repeated campaigns through the same executor.
        """
        if num_threads is None:
            num_threads = self.settings.num_cores
        key = (workload, seed, num_threads)
        if key not in self._traces:
            self._traces[key] = build_trace(
                workload, num_threads=num_threads,
                ops_per_thread=self.settings.ops_per_thread, seed=seed)
        return self._traces[key]

    def key_for(self, job: Job) -> str:
        """The cell's persistent cache key."""
        spec = resolve_spec(job.workload, self.settings.ops_per_thread)
        return cache_key(self.config_for(job), spec, job.seed,
                         self.settings.warmup_fraction)

    def _payload(self, job: Job) -> _CellPayload:
        spec = resolve_spec(job.workload, self.settings.ops_per_thread)
        return (self.config_for(job), spec, job.seed,
                self.settings.warmup_fraction)

    # -- execution -----------------------------------------------------------

    def run(self, jobs: Sequence[Job]) -> List[RunResult]:
        """Run ``jobs``; returns results in the same order as the input."""
        jobs = list(jobs)
        unique = dedupe_jobs(jobs)
        report = CampaignReport(total=len(jobs),
                                deduplicated=len(jobs) - len(unique))

        results: Dict[Job, RunResult] = {}
        keys: Dict[Job, str] = {}
        missing: List[Job] = []
        for job in unique:
            if self.cache is not None:
                keys[job] = self.key_for(job)
                cached = self.cache.get(keys[job])
                if cached is not None:
                    results[job] = cached
                    report.cache_hits += 1
                    continue
            missing.append(job)

        report.simulated = len(missing)
        if missing:
            workers = min(self.jobs, len(missing))
            if workers > 1:
                payloads = [self._payload(job) for job in missing]
                with multiprocessing.Pool(processes=workers) as pool:
                    simulated = pool.map(_simulate_cell, payloads, chunksize=1)
            else:
                simulated = []
                for job in missing:
                    config = self.config_for(job)
                    trace = self.trace_for(job.workload, job.seed,
                                           num_threads=config.num_cores)
                    simulated.append(
                        simulate(config, trace,
                                 warmup_fraction=self.settings.warmup_fraction))
            for job, result in zip(missing, simulated):
                results[job] = result
                if self.cache is not None:
                    self.cache.put(keys[job], result)

        self.last_report = report
        return [results[job] for job in jobs]

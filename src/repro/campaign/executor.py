"""Process-parallel campaign executor.

A :class:`CampaignExecutor` runs a list of :class:`~repro.campaign.jobs.Job`
cells and returns their :class:`~repro.engine.results.RunResult`\\ s in the
order the jobs were given, regardless of how many worker processes computed
them.  With ``jobs=1`` every cell runs in-process (the deterministic serial
path); with ``jobs>1`` missing cells fan out over a ``multiprocessing``
pool.  Because traces are generated deterministically from their seed and
the simulator itself is deterministic, both paths produce bitwise-identical
results.

When a :class:`~repro.campaign.cache.ResultCache` is attached, cached cells
are served from disk and only the missing cells are simulated; freshly
simulated cells are written back, so a repeated campaign simulates nothing.

Worker processes rebuild each trace from its (spec, seed) rather than
receiving it pickled: a trace is orders of magnitude bigger than its spec
and regenerating it is far cheaper than one simulation.  The *resolved*
spec object is shipped (not the workload name) so that scenarios or
presets registered at runtime in the parent also work under spawn-based
``multiprocessing``, where workers re-import the registries from scratch.
The serial path instead memoizes traces per (workload, seed) across the
executor's lifetime, so a figure's many configurations share one trace
build.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..config import SystemConfig
from ..engine.batch.lanes import simulate_batch
from ..engine.results import RunResult
from ..engine.simulator import simulate
from ..engine.system import validate_engine
from ..obs.recorder import Recorder, active
from ..trace.trace import MultiThreadedTrace
from ..workloads.registry import build_trace, resolve_spec
from .cache import CacheStats, ResultCache, cache_key
from .jobs import Job, dedupe_jobs
from .registry import DEFAULT_REGISTRY, ConfigRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..experiments.common import ExperimentSettings

#: (config, scaled workload/scenario spec, seed, warmup_fraction, engine)
#: -- everything a worker needs to simulate one cell, all cheaply picklable.
_CellPayload = Tuple[SystemConfig, object, int, float, str]

#: A whole same-config lane for the batch engine: (config, [(spec, seed)],
#: warmup_fraction).  One worker simulates the lane so the vectorized
#: static tables amortize across its runs.
_LanePayload = Tuple[SystemConfig, List[Tuple[object, int]], float]


def _simulate_cell(payload: _CellPayload) -> RunResult:
    """Worker entry point: build the trace and simulate one cell."""
    config, spec, seed, warmup_fraction, engine = payload
    trace = build_trace(spec, num_threads=config.num_cores, seed=seed)
    return simulate(config, trace, warmup_fraction=warmup_fraction,
                    engine=engine)


def _simulate_lane(payload: _LanePayload) -> List[RunResult]:
    """Worker entry point: simulate one same-config lane with the batch tier."""
    config, cells, warmup_fraction = payload
    traces = [build_trace(spec, num_threads=config.num_cores, seed=seed)
              for spec, seed in cells]
    return simulate_batch(config, traces, warmup_fraction=warmup_fraction)


# Timed worker variants, used only when a recorder is attached: they report
# epoch timestamps and the worker's pid so the parent can place each job on
# the campaign's wall-clock tracks.  Results are unchanged -- the timing
# wraps the exact same simulation call.

def _simulate_cell_timed(payload: _CellPayload):
    start = time.time()
    result = _simulate_cell(payload)
    return result, start, time.time(), os.getpid()


def _simulate_lane_timed(payload: _LanePayload):
    start = time.time()
    results = _simulate_lane(payload)
    return results, start, time.time(), os.getpid()


@dataclass
class CampaignReport:
    """What one :meth:`CampaignExecutor.run` call actually did."""

    total: int = 0
    simulated: int = 0
    cache_hits: int = 0
    #: duplicate cells folded into one simulation.
    deduplicated: int = 0
    #: cache tallies accumulated by this run (``None`` without a cache).
    cache_stats: Optional[CacheStats] = None
    #: per-backend (label, tallies) deltas for this run; more than one
    #: entry when a sharded backend is active.
    backend_stats: Optional[List[Tuple[str, CacheStats]]] = None

    def describe(self, cache: Optional[ResultCache] = None) -> str:
        """One-line human summary (shared by the CLI and scripts).

        With a sharded backend the cache tallies are broken out per
        shard -- a single aggregate would hide a misrouted or empty
        shard entirely.
        """
        where = "no cache" if cache is None else cache.describe()
        line = f"{self.simulated} simulated, {self.cache_hits} cache hits ({where})"
        if self.cache_stats is not None:
            line += f", {self.cache_stats.stores} stored"
        if self.backend_stats is not None and len(self.backend_stats) > 1:
            shards = "; ".join(
                f"{label}: {stats.hits} hits/{stats.stores} stored"
                for label, stats in self.backend_stats)
            line += f" [{shards}]"
        return line

    def merge(self, other: "CampaignReport") -> None:
        """Fold another report's tallies into this one (plan summaries)."""
        self.total += other.total
        self.simulated += other.simulated
        self.cache_hits += other.cache_hits
        self.deduplicated += other.deduplicated
        if other.cache_stats is not None:
            self.cache_stats = other.cache_stats if self.cache_stats is None \
                else self.cache_stats.plus(other.cache_stats)
        if other.backend_stats is not None:
            if self.backend_stats is None:
                self.backend_stats = list(other.backend_stats)
            else:
                merged = dict(self.backend_stats)
                for label, stats in other.backend_stats:
                    merged[label] = merged[label].plus(stats) \
                        if label in merged else stats
                self.backend_stats = list(merged.items())


class CampaignExecutor:
    """Fans (config, workload, seed) cells out over worker processes."""

    def __init__(self, settings: "ExperimentSettings", jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 registry: Optional[ConfigRegistry] = None,
                 engine: str = "fast",
                 recorder: Optional[Recorder] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.settings = settings
        self.jobs = jobs
        self.cache = cache
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        #: campaign-level observability: per-job wall-clock spans, cache
        #: tallies, lane widths.  ``None`` (the default) records nothing;
        #: simulations themselves always run without an engine recorder
        #: here, so their results never depend on telemetry.
        self.recorder = active(recorder)
        #: worker pid -> small campaign tid, for stable trace tracks.
        self._worker_tids: Dict[int, int] = {}
        #: execution kernel for missing cells.  All engines produce
        #: byte-identical results, so cache keys and entries are
        #: engine-independent; under ``"batch"`` missing cells are grouped
        #: into same-config lanes so the vectorized tables are shared.
        self.engine = validate_engine(engine)
        self.last_report = CampaignReport()
        self._traces: Dict[Tuple[str, int, int], MultiThreadedTrace] = {}

    # -- building blocks ----------------------------------------------------

    def config_for(self, job: Job) -> SystemConfig:
        return self.registry.make(job.config_name, self.settings)

    def trace_for(self, workload: str, seed: int,
                  num_threads: Optional[int] = None) -> MultiThreadedTrace:
        """Build (or reuse) the trace for one (workload, seed) cell.

        ``num_threads`` defaults to the settings' core count; a registered
        configuration that overrides ``num_cores`` (a geometry variant)
        gets its own memo entry, so the serial path builds exactly the
        trace a pool worker would rebuild from the shipped config.
        Memoized for the executor's lifetime: the in-process serial path
        shares one trace across every configuration that replays it, as do
        repeated campaigns through the same executor.
        """
        if num_threads is None:
            num_threads = self.settings.num_cores
        key = (workload, seed, num_threads)
        if key not in self._traces:
            self._traces[key] = build_trace(
                workload, num_threads=num_threads,
                ops_per_thread=self.settings.ops_per_thread, seed=seed)
        return self._traces[key]

    def key_for(self, job: Job) -> str:
        """The cell's persistent cache key."""
        spec = resolve_spec(job.workload, self.settings.ops_per_thread)
        return cache_key(self.config_for(job), spec, job.seed,
                         self.settings.warmup_fraction)

    def _payload(self, job: Job) -> _CellPayload:
        spec = resolve_spec(job.workload, self.settings.ops_per_thread)
        return (self.config_for(job), spec, job.seed,
                self.settings.warmup_fraction, self.engine)

    # -- execution -----------------------------------------------------------

    def _worker_tid(self, pid: int) -> int:
        """A small, stable campaign-track id for a worker process."""
        tid = self._worker_tids.get(pid)
        if tid is None:
            tid = self._worker_tids[pid] = len(self._worker_tids) + 1
        return tid

    def _job_args(self, job: Job, pid: int) -> Dict[str, object]:
        return {"config": job.config_name, "workload": job.workload,
                "seed": job.seed, "engine": self.engine, "worker": pid}

    def run(self, jobs: Sequence[Job]) -> List[RunResult]:
        """Run ``jobs``; returns results in the same order as the input."""
        jobs = list(jobs)
        unique = dedupe_jobs(jobs)
        report = CampaignReport(total=len(jobs),
                                deduplicated=len(jobs) - len(unique))
        rec = self.recorder
        cache_before = self.cache.stats if self.cache is not None else None
        backends_before = dict(self.cache.backend_stats()) \
            if self.cache is not None else None

        results: Dict[Job, RunResult] = {}
        keys: Dict[Job, str] = {}
        missing: List[Job] = []
        for job in unique:
            if self.cache is not None:
                keys[job] = self.key_for(job)
                cached = self.cache.get(keys[job])
                if cached is not None:
                    results[job] = cached
                    report.cache_hits += 1
                    continue
            missing.append(job)

        report.simulated = len(missing)
        if missing:
            workers = min(self.jobs, len(missing))
            if self.engine == "batch":
                simulated = self._run_lanes(missing, workers)
            elif workers > 1:
                payloads = [self._payload(job) for job in missing]
                with multiprocessing.Pool(processes=workers) as pool:
                    if rec is not None:
                        timed = pool.map(_simulate_cell_timed, payloads,
                                         chunksize=1)
                        simulated = []
                        for job, (result, start, end, pid) in zip(missing,
                                                                  timed):
                            rec.wall_span(self._worker_tid(pid), "job",
                                          start, end, self._job_args(job, pid))
                            simulated.append(result)
                    else:
                        simulated = pool.map(_simulate_cell, payloads,
                                             chunksize=1)
            else:
                simulated = []
                for job in missing:
                    config = self.config_for(job)
                    trace = self.trace_for(job.workload, job.seed,
                                           num_threads=config.num_cores)
                    start = time.time() if rec is not None else 0.0
                    result = simulate(
                        config, trace,
                        warmup_fraction=self.settings.warmup_fraction,
                        engine=self.engine)
                    if rec is not None:
                        rec.wall_span(0, "job", start, time.time(),
                                      self._job_args(job, os.getpid()))
                    simulated.append(result)
            for job, result in zip(missing, simulated):
                results[job] = result
                if self.cache is not None:
                    self.cache.put(keys[job], result)

        if self.cache is not None:
            report.cache_stats = self.cache.stats.since(cache_before)
            report.backend_stats = [
                (label, stats.since(backends_before.get(label, CacheStats())))
                for label, stats in self.cache.backend_stats()]
        if rec is not None:
            rec.count("campaign.jobs", report.total)
            rec.count("campaign.simulated", report.simulated)
            rec.count("campaign.cache_hits", report.cache_hits)
            rec.count("campaign.deduplicated", report.deduplicated)
            for label, stats in report.backend_stats or ():
                rec.count(f"cache.{label}.hits", stats.hits)
                rec.count(f"cache.{label}.misses", stats.misses)
                rec.count(f"cache.{label}.stores", stats.stores)
        self.last_report = report
        return [results[job] for job in jobs]

    def _run_lanes(self, missing: Sequence[Job], workers: int) -> List[RunResult]:
        """Simulate missing cells with the batch tier, laned by configuration.

        Cells sharing a configuration form one lane: the batch engine
        builds a single vectorized profile stack for the whole lane, so
        its static passes amortize across every (workload, seed) in it.
        Results come back in ``missing`` order, and because runs in a lane
        share only immutable tables, they are byte-identical to per-cell
        simulation at any lane width and under any grouping.

        Lanes are dispatched widest first.  The pool hands one lane per
        worker and wide lanes (especially multicore ones) dominate the
        wall clock, so a wide lane scheduled last would leave the other
        workers idle for its whole duration.  Ordering only changes
        scheduling: results are still written back by position.
        """
        grouped: Dict[str, List[int]] = {}
        for pos, job in enumerate(missing):
            grouped.setdefault(job.config_name, []).append(pos)
        # Stable sort: equal-width lanes keep first-appearance order, so
        # dispatch order is deterministic for a given job list.
        lanes: List[List[int]] = sorted(
            grouped.values(), key=len, reverse=True)
        rec = self.recorder
        if rec is not None:
            rec.count("campaign.lanes", len(lanes))
            for members in lanes:
                rec.observe("campaign.lane_width", len(members))
        results: List[Optional[RunResult]] = [None] * len(missing)
        if workers > 1 and len(lanes) > 1:
            payloads: List[_LanePayload] = []
            for members in lanes:
                config = self.config_for(missing[members[0]])
                cells = [(resolve_spec(missing[pos].workload,
                                       self.settings.ops_per_thread),
                          missing[pos].seed) for pos in members]
                payloads.append((config, cells,
                                 self.settings.warmup_fraction))
            with multiprocessing.Pool(
                    processes=min(workers, len(lanes))) as pool:
                if rec is not None:
                    timed = pool.map(_simulate_lane_timed, payloads,
                                     chunksize=1)
                    lane_results = []
                    for members, (lane, start, end, pid) in zip(
                            lanes, timed):
                        first = missing[members[0]]
                        rec.wall_span(
                            self._worker_tid(pid), "lane", start, end,
                            {"config": first.config_name,
                             "width": len(members), "worker": pid})
                        lane_results.append(lane)
                else:
                    lane_results = pool.map(_simulate_lane, payloads,
                                            chunksize=1)
            for members, lane in zip(lanes, lane_results):
                for pos, result in zip(members, lane):
                    results[pos] = result
        else:
            for members in lanes:
                config = self.config_for(missing[members[0]])
                traces = [self.trace_for(missing[pos].workload,
                                         missing[pos].seed,
                                         num_threads=config.num_cores)
                          for pos in members]
                start = time.time() if rec is not None else 0.0
                lane = simulate_batch(
                    config, traces,
                    warmup_fraction=self.settings.warmup_fraction)
                if rec is not None:
                    rec.wall_span(
                        0, "lane", start, time.time(),
                        {"config": missing[members[0]].config_name,
                         "width": len(members), "worker": os.getpid()})
                for pos, result in zip(members, lane):
                    results[pos] = result
        return results  # type: ignore[return-value]

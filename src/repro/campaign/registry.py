"""Declarative registry of machine-configuration factories.

The paper's evaluation names ten machine configurations (``sc``,
``invisi_rmo``, ...).  Instead of a hard-coded if/elif chain, each
short-name maps to a *factory* -- a callable taking the experiment
settings (anything exposing ``num_cores`` and ``cov_timeout``, in
practice :class:`~repro.experiments.common.ExperimentSettings`) and
returning a :class:`~repro.config.SystemConfig`.

New machine variants are one-line registrations::

    from repro.campaign import DEFAULT_REGISTRY, derived

    DEFAULT_REGISTRY.register("invisi_cont_cov_1k",
                              derived("invisi_cont_cov", cov_timeout=1000))

(``derived`` applies :class:`~repro.config.SpeculationConfig` overrides when
the keyword matches a speculation field, and ``SystemConfig`` overrides
otherwise.)  Registered names are immediately usable by the CLI's
``sweep``/``simulate`` commands, the campaign executor, and the figure
drivers.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, Optional, Tuple, TYPE_CHECKING

from ..config import (
    ConsistencyModel,
    SpeculationConfig,
    SpeculationMode,
    SystemConfig,
    ViolationPolicy,
    paper_config,
)
from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..experiments.common import ExperimentSettings

#: A factory builds the SystemConfig for one short-name at a given scale.
ConfigFactory = Callable[["ExperimentSettings"], SystemConfig]


class ConfigRegistry:
    """Mapping of configuration short-names to config factories.

    Iteration order is registration order, so sweeps over ``names()`` are
    deterministic.

    A registry may *overlay* a ``parent``: lookups fall back to the parent
    (live, so names registered in the parent later are still visible), while
    registrations stay local.  The study framework uses overlays to give a
    study private configuration variants (e.g. the ablation sweeps' swept
    store-buffer sizes) without polluting :data:`DEFAULT_REGISTRY`.
    """

    def __init__(self, factories: Optional[Dict[str, ConfigFactory]] = None,
                 parent: Optional["ConfigRegistry"] = None) -> None:
        self._factories: Dict[str, ConfigFactory] = dict(factories or {})
        self._parent = parent
        for name in self._factories:
            if parent is not None and name in parent:
                raise ConfigurationError(
                    f"configuration {name!r} would shadow the parent "
                    f"registry's registration")

    # -- registration --------------------------------------------------------

    def register(self, name: str,
                 factory: Optional[ConfigFactory] = None) -> ConfigFactory:
        """Register ``factory`` under ``name`` (usable as a decorator)."""
        if factory is None:
            return lambda f: self.register(name, f)
        if not name:
            raise ConfigurationError("configuration name must be non-empty")
        if name in self:
            raise ConfigurationError(
                f"configuration {name!r} is already registered"
            )
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove a registration (mainly for tests and ad-hoc sweeps)."""
        if name not in self._factories:
            raise ConfigurationError(f"configuration {name!r} is not registered")
        del self._factories[name]

    # -- lookup --------------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        """Registered short-names, parent's (live) first."""
        if self._parent is None:
            return tuple(self._factories)
        return self._parent.names() + tuple(self._factories)

    def factory(self, name: str) -> ConfigFactory:
        """The factory registered under ``name`` (here or in the parent)."""
        if name in self._factories:
            return self._factories[name]
        if self._parent is not None:
            return self._parent.factory(name)
        raise ConfigurationError(
            f"unknown configuration {name!r}; known: {', '.join(self.names())}")

    def __contains__(self, name: object) -> bool:
        if name in self._factories:
            return True
        return self._parent is not None and name in self._parent

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self.names())

    def make(self, name: str, settings: "ExperimentSettings") -> SystemConfig:
        """Build the :class:`SystemConfig` registered under ``name``."""
        return self.factory(name)(settings)


# ---------------------------------------------------------------------------
# Default factories: the paper's ten configurations (see experiments/common.py
# for the short-name glossary).

def _conventional(consistency: ConsistencyModel) -> ConfigFactory:
    def factory(settings: "ExperimentSettings") -> SystemConfig:
        return paper_config(consistency, num_cores=settings.num_cores)
    return factory


def _speculative(consistency: ConsistencyModel, mode: SpeculationMode,
                 num_checkpoints: int = 1,
                 violation_policy: ViolationPolicy = ViolationPolicy.ABORT,
                 settings_cov_timeout: bool = False) -> ConfigFactory:
    def factory(settings: "ExperimentSettings") -> SystemConfig:
        kwargs: Dict[str, object] = dict(mode=mode, num_checkpoints=num_checkpoints,
                                         violation_policy=violation_policy)
        if settings_cov_timeout:
            kwargs["cov_timeout"] = settings.cov_timeout
        return paper_config(consistency, SpeculationConfig(**kwargs),
                            num_cores=settings.num_cores)
    return factory


_SPECULATION_FIELDS = frozenset(
    f.name for f in dataclasses.fields(SpeculationConfig))


def derived(base: str, registry: Optional[ConfigRegistry] = None,
            **changes: object) -> ConfigFactory:
    """Factory for a variant of an already-registered configuration.

    Keywords naming :class:`SpeculationConfig` fields (``num_checkpoints``,
    ``cov_timeout``, ...) are applied to the speculation sub-config; the
    rest are applied to the :class:`SystemConfig` itself.
    """
    spec_changes = {k: v for k, v in changes.items() if k in _SPECULATION_FIELDS}
    system_changes = {k: v for k, v in changes.items() if k not in _SPECULATION_FIELDS}

    def factory(settings: "ExperimentSettings") -> SystemConfig:
        config = (registry or DEFAULT_REGISTRY).make(base, settings)
        if spec_changes:
            speculation = dataclasses.replace(config.speculation, **spec_changes)
            config = config.replace(speculation=speculation)
        if system_changes:
            config = config.replace(**system_changes)
        return config

    return factory


#: The registry used by default throughout the experiment and CLI layers.
DEFAULT_REGISTRY = ConfigRegistry({
    "sc": _conventional(ConsistencyModel.SC),
    "tso": _conventional(ConsistencyModel.TSO),
    "rmo": _conventional(ConsistencyModel.RMO),
    "invisi_sc": _speculative(ConsistencyModel.SC, SpeculationMode.SELECTIVE),
    "invisi_tso": _speculative(ConsistencyModel.TSO, SpeculationMode.SELECTIVE),
    "invisi_rmo": _speculative(ConsistencyModel.RMO, SpeculationMode.SELECTIVE),
    "invisi_sc_2ckpt": _speculative(ConsistencyModel.SC, SpeculationMode.SELECTIVE,
                                    num_checkpoints=2),
    "aso_sc": _speculative(ConsistencyModel.SC, SpeculationMode.ASO,
                           num_checkpoints=2),
    "invisi_cont": _speculative(ConsistencyModel.SC, SpeculationMode.CONTINUOUS,
                                num_checkpoints=2),
    "invisi_cont_cov": _speculative(ConsistencyModel.SC, SpeculationMode.CONTINUOUS,
                                    num_checkpoints=2,
                                    violation_policy=ViolationPolicy.COMMIT_ON_VIOLATE,
                                    settings_cov_timeout=True),
})

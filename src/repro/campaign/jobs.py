"""The campaign job model.

A :class:`Job` names one cell of the evaluation cross-product: a machine
configuration short-name, a workload preset or scenario name, and a
generator seed.
Jobs are hashable and ordered, so they can key caches and be deduplicated
while preserving a stable, reproducible execution order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True, order=True)
class Job:
    """One (configuration, workload, seed) cell of a campaign."""

    config_name: str
    #: a workload preset name or a scenario name.
    workload: str
    seed: int = 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.config_name}/{self.workload}@{self.seed}"


def expand_jobs(config_names: Iterable[str], workloads: Iterable[str],
                seeds: Iterable[int]) -> List[Job]:
    """Cross-product of configurations, workloads, and seeds.

    The order is configuration-major, then workload, then seed -- the order
    every figure driver iterates in, so parallel and serial campaigns report
    results identically.
    """
    workloads = tuple(workloads)
    seeds = tuple(seeds)
    return [Job(config, workload, seed)
            for config in config_names
            for workload in workloads
            for seed in seeds]


def dedupe_jobs(jobs: Sequence[Job]) -> List[Job]:
    """Unique jobs in first-appearance order."""
    return list(dict.fromkeys(jobs))

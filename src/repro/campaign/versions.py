"""Kernel-version fingerprints: cache invalidation by source hash.

Cache keys are content hashes of everything that determines a cell's
outcome (config, scaled workload spec, seed, warmup, wire schema) -- but
the simulator's *source code* also determines the outcome, and a refactor
that changes simulated behaviour must not keep serving stale entries.
Embedding one monolithic hash of the whole package would be correct but
wasteful: touching the selective-speculation controller would cold-start
conventional baseline cells that never execute that code.

Sources are therefore grouped by the machinery a cell can actually reach:

``base``
    the execution substrate every cell runs through -- the engines
    (event loop, fast path, vectorized batch tier), CPU/core stepping,
    coherence, consistency, store buffers, memory, interconnect, traces,
    workload generation, and the configuration model;
``selective`` / ``continuous`` / ``aso``
    the speculation controller selected by the cell's
    :class:`~repro.config.SpeculationMode` (plus the shared checkpoint
    machinery for the two InvisiFence controllers);
``scenarios``
    the phase-splicing scenario engine, reached only by cells whose
    workload is a :class:`~repro.scenarios.spec.ScenarioSpec`.

:func:`kernel_versions` maps a (config, spec) cell to the fingerprints of
just the groups it depends on; :func:`~repro.campaign.cache.cache_key`
embeds that mapping in the key payload.  After an engine refactor, an
incremental campaign re-simulates exactly the cells whose reachable
sources changed -- everything else is still a cache hit.

Fingerprints are computed once per process (file contents hashed under
:func:`functools.lru_cache`); campaigns pay a few milliseconds at first
key computation, nothing after.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path
from typing import Dict, Tuple

from ..config import SpeculationMode, SystemConfig

#: The installed package root all group paths are resolved against.
_PKG = Path(__file__).resolve().parent.parent


def _tree(*parts: str) -> Tuple[Path, ...]:
    """All python sources under a package subtree, sorted for stability."""
    return tuple(sorted((_PKG.joinpath(*parts)).rglob("*.py")))


def _files(*names: str) -> Tuple[Path, ...]:
    return tuple(_PKG / name for name in names)


#: Source groups, group name -> files whose bytes feed the fingerprint.
#: Mutable on purpose: tests repoint groups at temporary files to prove
#: the invalidation scoping without touching the real tree (call
#: :func:`clear_fingerprint_cache` after mutating).
SOURCE_GROUPS: Dict[str, Tuple[Path, ...]] = {
    "base": (_files("config.py")
             + _tree("engine") + _tree("cpu") + _tree("coherence")
             + _tree("consistency") + _tree("memory") + _tree("interconnect")
             + _tree("trace") + _tree("workloads")
             + _files("core/__init__.py", "core/base.py")),
    "selective": _files("core/selective.py", "core/checkpoint.py"),
    "continuous": _files("core/continuous.py", "core/checkpoint.py"),
    "aso": _tree("aso"),
    "scenarios": _tree("scenarios"),
}

#: Speculation mode -> the controller source group it executes.
_MODE_GROUPS = {
    SpeculationMode.NONE: None,
    SpeculationMode.SELECTIVE: "selective",
    SpeculationMode.CONTINUOUS: "continuous",
    SpeculationMode.ASO: "aso",
}


@lru_cache(maxsize=None)
def group_fingerprint(group: str) -> str:
    """SHA-256 over a group's file names and contents (hex, 16 chars).

    Missing files hash as empty (a deleted module is itself a change).
    The digest is truncated: 64 bits is ample for "did anything change"
    and keeps key payloads readable.
    """
    digest = hashlib.sha256()
    for path in SOURCE_GROUPS[group]:
        digest.update(path.name.encode("utf-8"))
        try:
            digest.update(path.read_bytes())
        except OSError:
            digest.update(b"<missing>")
    return digest.hexdigest()[:16]


def clear_fingerprint_cache() -> None:
    """Drop memoized fingerprints (after mutating :data:`SOURCE_GROUPS`)."""
    group_fingerprint.cache_clear()


def groups_for(config: SystemConfig, spec: object) -> Tuple[str, ...]:
    """The source groups one (config, spec) cell's outcome depends on."""
    from ..scenarios.spec import ScenarioSpec  # deferred: import cycle

    groups = ["base"]
    mode_group = _MODE_GROUPS.get(config.speculation.mode)
    if mode_group is not None:
        groups.append(mode_group)
    if isinstance(spec, ScenarioSpec):
        groups.append("scenarios")
    return tuple(groups)


def kernel_versions(config: SystemConfig, spec: object) -> Dict[str, str]:
    """Group-name -> fingerprint for the groups this cell depends on."""
    return {group: group_fingerprint(group)
            for group in groups_for(config, spec)}

"""Persistent on-disk cache of simulation results.

Results are stored as one JSON file per cell under a cache root (default
``results/cache/``), keyed by a SHA-256 content hash of everything that
determines the simulation's outcome: the full :class:`SystemConfig`, the
scaled :class:`WorkloadSpec`, the generator seed, the warmup fraction, and
a schema version.  Any change to a configuration, a workload preset's
calibration, or the result wire format therefore changes the key, so stale
entries are simply never looked up again -- there is no invalidation logic
to get wrong.

Writes go through a temporary file and ``os.replace`` so that concurrent
workers (or an interrupted run) never leave a half-written entry behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..engine.results import RESULT_SCHEMA_VERSION, RunResult
from ..config import SystemConfig

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path("results") / "cache"


def cache_key(config: SystemConfig, spec, seed: int,
              warmup_fraction: float) -> str:
    """Content hash identifying one simulation cell.

    ``spec`` is the scaled :class:`~repro.workloads.spec.WorkloadSpec` or
    :class:`~repro.scenarios.spec.ScenarioSpec` (any dataclass whose
    ``asdict`` form captures everything that shapes the generated trace).
    """
    payload: Dict[str, Any] = {
        "schema": RESULT_SCHEMA_VERSION,
        "config": config.to_dict(),
        "workload": dataclasses.asdict(spec),
        "seed": seed,
        "warmup_fraction": warmup_fraction,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Structured hit/miss/store tallies of a :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The delta accumulated after an ``earlier`` snapshot."""
        return CacheStats(hits=self.hits - earlier.hits,
                          misses=self.misses - earlier.misses,
                          stores=self.stores - earlier.stores)


class ResultCache:
    """Content-addressed store of :class:`RunResult` JSON files."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the cache's lifetime tallies."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          stores=self.stores)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        """Load the cached result for ``key``, or ``None`` on a miss.

        Unreadable or schema-incompatible entries count as misses.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
            result = RunResult.from_json(text)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> Path:
        """Atomically persist ``result`` under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(result.to_json(), encoding="utf-8")
        os.replace(tmp, path)
        self.stores += 1
        return path

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

"""Persistent cache of simulation results over a pluggable backend.

Results are stored as serialized :class:`RunResult` entries keyed by a
SHA-256 content hash of everything that determines the simulation's
outcome: the full :class:`SystemConfig`, the scaled
:class:`WorkloadSpec`, the generator seed, the warmup fraction, a schema
version, and the *kernel version* -- fingerprints of the simulator
sources the cell's outcome depends on (:mod:`~repro.campaign.versions`).
Any change to a configuration, a workload preset's calibration, the
result wire format, or an engine-relevant source file therefore changes
the key, so stale entries are simply never looked up again -- there is
no invalidation logic to get wrong, and a refactor only cold-starts the
cells whose reachable sources actually changed.

Storage is a :class:`~repro.campaign.backends.CacheBackend`: the local
directory of JSON files (the default, layout unchanged since PR 1), a
sqlite shard file safe for concurrent writer processes, or a sharded
composite of either -- see :func:`~repro.campaign.backends.backend_from_url`
for the ``dir://`` / ``sqlite://`` URL forms and
:func:`repro.api.open_cache` for the blessed opener.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..engine.results import RESULT_SCHEMA_VERSION, RunResult
from ..config import SystemConfig
from ..errors import ConfigurationError
from .backends import (
    CacheBackend,
    CacheStats,
    DirectoryBackend,
    backend_from_url,
)
from .versions import kernel_versions

__all__ = [
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CACHE_URL",
    "ResultCache",
    "cache_key",
]

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path("results") / "cache"

#: The same default, spelled as a cache URL.
DEFAULT_CACHE_URL = f"dir://{DEFAULT_CACHE_DIR}"


def cache_key(config: SystemConfig, spec, seed: int,
              warmup_fraction: float,
              versions: Optional[Mapping[str, str]] = None) -> str:
    """Content hash identifying one simulation cell.

    ``spec`` is the scaled :class:`~repro.workloads.spec.WorkloadSpec` or
    :class:`~repro.scenarios.spec.ScenarioSpec` (any dataclass whose
    ``asdict`` form captures everything that shapes the generated trace).
    ``versions`` defaults to the kernel-source fingerprints of the groups
    this cell depends on (:func:`~repro.campaign.versions.kernel_versions`);
    pass an explicit mapping to pin or ignore them.
    """
    if versions is None:
        versions = kernel_versions(config, spec)
    payload: Dict[str, Any] = {
        "schema": RESULT_SCHEMA_VERSION,
        "config": config.to_dict(),
        "workload": dataclasses.asdict(spec),
        "seed": seed,
        "warmup_fraction": warmup_fraction,
        "kernel": dict(versions),
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of :class:`RunResult`\\ s over a backend.

    ``ResultCache(root)`` keeps its historical meaning -- a local
    directory of JSON entries; pass ``backend=`` (any
    :class:`CacheBackend`) or use :meth:`from_url` for sqlite and sharded
    stores.  The cache keeps its own hit/miss/store tallies (what *this*
    front-end observed) while the backend keeps per-shard lifetime
    tallies for reporting.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR,
                 backend: Optional[CacheBackend] = None) -> None:
        self.backend = backend if backend is not None \
            else DirectoryBackend(Path(root))
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @classmethod
    def from_url(cls, url: Union[str, Path]) -> "ResultCache":
        """Open a cache from a ``dir://`` / ``sqlite://`` URL or bare path."""
        return cls(backend=backend_from_url(url))

    @property
    def stats(self) -> CacheStats:
        """Snapshot of this front-end's lifetime tallies."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          stores=self.stores)

    def backend_stats(self) -> List[Tuple[str, CacheStats]]:
        """Per-backend (label, lifetime stats); one entry unless sharded."""
        return self.backend.backend_stats()

    @property
    def sharded(self) -> bool:
        """Whether more than one constituent backend is active."""
        return len(self.backend.backend_stats()) > 1

    def describe(self) -> str:
        """Short location label (the backend's, e.g. ``dir:results/cache``)."""
        return self.backend.label

    @property
    def root(self) -> Path:
        """The directory backend's root (directory caches only)."""
        root = getattr(self.backend, "root", None)
        if root is None:
            raise ConfigurationError(
                f"cache backend {self.backend.label} has no root directory")
        return root

    def path_for(self, key: str) -> Path:
        """On-disk entry path (directory caches only)."""
        path_for = getattr(self.backend, "path_for", None)
        if path_for is None:
            raise ConfigurationError(
                f"cache backend {self.backend.label} has no per-entry paths")
        return path_for(key)

    # -- entries -------------------------------------------------------------

    def get(self, key: str) -> Optional[RunResult]:
        """Load the cached result for ``key``, or ``None`` on a miss.

        Unreadable or schema-incompatible entries count as misses.
        """
        result = self.backend.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Atomically persist ``result`` under ``key``."""
        self.backend.put(key, result)
        self.stores += 1

    def contains(self, key: str) -> bool:
        """Whether an entry exists, without loading or tallying it."""
        return self.backend.contains(key)

    def __len__(self) -> int:
        """Number of entries currently stored."""
        return len(self.backend)

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        return self.backend.clear()

    # -- leases (distributed draining) ---------------------------------------

    def try_claim(self, key: str, owner: str, ttl: float) -> Optional[str]:
        """Claim ``key`` for ``owner``; see :meth:`CacheBackend.try_claim`."""
        return self.backend.try_claim(key, owner, ttl)

    def release(self, key: str, owner: str) -> None:
        self.backend.release(key, owner)

    def lease_owner(self, key: str) -> Optional[str]:
        return self.backend.lease_owner(key)

"""Work-queue draining: many worker processes, one shared plan and backend.

The pool executor (:class:`~repro.campaign.executor.CampaignExecutor`)
tops out at one machine: a parent process owns the job list and fans
cells out to its own children.  The work queue inverts that: *every*
worker independently compiles the same deduplicated
:class:`~repro.studies.plan.StudyPlan` (plans are deterministic functions
of study names and settings), opens the same shared cache backend, and
drains whatever cells are still missing.  Coordination happens entirely
through the backend:

* a cell already stored is skipped (someone finished it);
* a missing cell is *claimed* via an atomic lease record
  (:meth:`~repro.campaign.backends.CacheBackend.try_claim`) before
  simulation, so no two live workers simulate the same cell;
* a lease expires after ``lease_ttl`` seconds, so cells claimed by a
  crashed or wedged worker are re-issued to its peers;
* :meth:`~repro.campaign.backends.CacheBackend.put` clears the lease in
  the same transaction that publishes the entry.

Because cache keys are content-addressed and every engine is
deterministic, the drained store is byte-identical to a serial run's no
matter how many workers raced, which worker won each claim, or in what
order cells completed -- the tests pin this.

``repro worker`` is the CLI surface; see also
:meth:`repro.api.execute_plan` for the in-process equivalent.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import time
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING, Tuple

from ..engine.results import RunResult
from ..errors import ReproError
from ..obs.recorder import Recorder, active
from ..workloads.registry import resolve_spec
from .cache import ResultCache, cache_key
from .executor import _CellPayload, _simulate_cell

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..studies.plan import StudyPlan


def default_worker_id() -> str:
    """A host-unique worker identity for lease records."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerReport:
    """What one :meth:`QueueWorker.drain` call actually did."""

    total: int = 0
    #: cells this worker claimed and simulated.
    simulated: int = 0
    #: claims that took over another worker's expired lease.
    reissued: int = 0
    #: cells another worker completed (present in the backend).
    served_elsewhere: int = 0
    #: poll iterations spent waiting on peers' live leases.
    lease_waits: int = 0
    wall_seconds: float = 0.0

    def describe(self) -> str:
        return (f"{self.simulated} simulated ({self.reissued} reissued), "
                f"{self.served_elsewhere} served elsewhere, "
                f"{self.lease_waits} lease waits, "
                f"{self.wall_seconds:.1f}s")


class QueueWorker:
    """Drains one study plan's missing cells through a shared backend."""

    def __init__(self, plan: "StudyPlan", cache: ResultCache,
                 worker_id: Optional[str] = None, engine: str = "fast",
                 lease_ttl: float = 60.0, poll_interval: float = 0.05,
                 max_wait: float = 600.0,
                 recorder: Optional[Recorder] = None) -> None:
        if lease_ttl <= 0:
            raise ReproError(f"lease_ttl must be positive, got {lease_ttl}")
        self.plan = plan
        self.cache = cache
        self.worker_id = worker_id if worker_id else default_worker_id()
        self.engine = engine
        self.lease_ttl = lease_ttl
        self.poll_interval = poll_interval
        self.max_wait = max_wait
        self.recorder = active(recorder)
        self.last_report = WorkerReport()

    def _payloads(self) -> List[Tuple[str, _CellPayload]]:
        """(cache key, simulation payload) for every unique plan cell.

        Keys are computed exactly as the pool executor computes them --
        same registry overlay, same per-cell core-count scaling -- so a
        drained backend serves a later ``study run`` entirely from cache.
        """
        registry = self.plan.registry()
        settings = self.plan.settings
        payloads: List[Tuple[str, _CellPayload]] = []
        for cell in self.plan.unique_cells:
            scaled = settings if cell.num_cores == settings.num_cores \
                else dataclasses.replace(settings, num_cores=cell.num_cores)
            config = registry.make(cell.config_name, scaled)
            spec = resolve_spec(cell.workload, scaled.ops_per_thread)
            key = cache_key(config, spec, cell.seed, scaled.warmup_fraction)
            payloads.append((key, (config, spec, cell.seed,
                                   scaled.warmup_fraction, self.engine)))
        return payloads

    def _simulate(self, key: str, payload: _CellPayload) -> RunResult:
        rec = self.recorder
        start = time.time() if rec is not None else 0.0
        result = _simulate_cell(payload)
        self.cache.put(key, result)
        if rec is not None:
            config, spec, seed, _, engine = payload
            rec.wall_span(0, "job", start, time.time(),
                          {"workload": getattr(spec, "name", "?"),
                           "seed": seed, "engine": engine,
                           "worker": self.worker_id})
        return result

    def drain(self) -> WorkerReport:
        """Claim and simulate missing cells until the plan is fully stored.

        Returns when every unique cell is present in the backend.  Cells
        held under a peer's live lease are polled; if no progress is
        possible for ``max_wait`` seconds (a peer neither finishes nor
        lets its lease expire -- which a crash eventually does), raises
        :class:`~repro.errors.ReproError` naming the stuck cells.
        """
        rec = self.recorder
        start = time.perf_counter()
        pending = self._payloads()
        report = WorkerReport(total=len(pending))
        self.last_report = report  # live view, even if drain() raises
        deadline = time.monotonic() + self.max_wait
        while pending:
            still_pending: List[Tuple[str, _CellPayload]] = []
            progressed = False
            for key, payload in pending:
                if self.cache.contains(key):
                    report.served_elsewhere += 1
                    progressed = True
                    continue
                claim = self.cache.try_claim(key, self.worker_id,
                                             self.lease_ttl)
                if claim is None:
                    still_pending.append((key, payload))
                    continue
                if claim == "expired":
                    report.reissued += 1
                    if rec is not None:
                        rec.count("queue.reissued")
                if rec is not None:
                    rec.count("queue.claims")
                self._simulate(key, payload)
                report.simulated += 1
                progressed = True
            pending = still_pending
            if progressed:
                deadline = time.monotonic() + self.max_wait
            elif pending:
                if time.monotonic() >= deadline:
                    held = [self.cache.lease_owner(key) for key, _ in pending]
                    raise ReproError(
                        f"worker {self.worker_id}: no progress in "
                        f"{self.max_wait:.0f}s with {len(pending)} cells "
                        f"still leased by {sorted(set(filter(None, held)))}")
                report.lease_waits += 1
                if rec is not None:
                    rec.count("queue.lease_retries")
                time.sleep(self.poll_interval)
        report.wall_seconds = time.perf_counter() - start
        if rec is not None:
            rec.count("queue.cells", report.total)
            rec.count("queue.simulated", report.simulated)
            rec.count("queue.served_elsewhere", report.served_elsewhere)
        return report

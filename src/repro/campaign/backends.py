"""Pluggable cache backends: local directory, sqlite shard, sharded composite.

The campaign result store is split into a small *backend* protocol
(:class:`CacheBackend`) so one campaign API serves every deployment shape:

* :class:`DirectoryBackend` -- one JSON file per entry under a local
  directory (the original ``results/cache/`` layout, unchanged on disk);
* :class:`SqliteBackend` -- one sqlite shard file in WAL mode, safe for
  many concurrent reader and writer *processes* sharing a filesystem;
* :class:`ShardedBackend` -- a composite routing each key to one of N
  child backends by key prefix, so a large campaign's store splits
  across directories, files, or disks.

Keys are content hashes (see :func:`~repro.campaign.cache.cache_key`), so
entries are immutable once written: backends never need versioned
overwrites, and concurrent writers racing on the same key write identical
bytes.

Backends double as the coordination substrate for distributed draining:
:meth:`CacheBackend.try_claim` installs an atomic *lease record* for a
key (a worker's declaration "I am simulating this cell"), which expires
after a TTL so a crashed worker's cells are re-issued to its peers.
Completing a cell (:meth:`CacheBackend.put`) clears its lease.

Backends are addressed by URL (:func:`backend_from_url`)::

    dir://results/cache             local directory (the default)
    dir://results/cache?shards=4    4 directory shards, sharded composite
    sqlite://results/cache.sqlite   one sqlite shard file
    sqlite://cache.sqlite?shards=2  2 sqlite shard files

A bare path with no scheme is a directory backend, so every pre-existing
``--cache-dir`` value keeps meaning what it meant.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..engine.results import RunResult
from ..errors import ConfigurationError


def _retry_locked(fn, attempts: int = 6, delay: float = 0.05):
    """Call ``fn``, retrying briefly on transient SQLITE_BUSY errors.

    sqlite's busy handler (the connect ``timeout``) covers most lock
    waits, but a few paths return "database is locked" immediately --
    notably the journal-mode switch while peers race to create the same
    fresh database, and write-upgrade deadlock avoidance.  Those resolve
    in milliseconds, so a bounded linear backoff is enough; anything
    else (or persistent contention) still raises.
    """
    for attempt in range(attempts):
        try:
            return fn()
        except sqlite3.OperationalError as exc:
            message = str(exc)
            if "locked" not in message and "busy" not in message:
                raise
            if attempt == attempts - 1:
                raise
            time.sleep(delay * (attempt + 1))


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Structured hit/miss/store tallies of one backend (or an aggregate)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The delta accumulated after an ``earlier`` snapshot."""
        return CacheStats(hits=self.hits - earlier.hits,
                          misses=self.misses - earlier.misses,
                          stores=self.stores - earlier.stores)

    def plus(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(hits=self.hits + other.hits,
                          misses=self.misses + other.misses,
                          stores=self.stores + other.stores)


class CacheBackend:
    """The storage protocol behind :class:`~repro.campaign.cache.ResultCache`.

    Implementations store serialized :class:`RunResult` entries under
    content-addressed keys and keep their own lifetime hit/miss/store
    tallies (:attr:`stats`), so composite backends can report per-shard
    activity.  The lease methods implement distributed work claiming; a
    backend that cannot coordinate writers may simply leave them
    unsupported, but all three shipped backends implement them.
    """

    #: short human label, e.g. ``dir:results/cache`` (set by subclasses).
    label: str = "backend"

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def stats(self) -> CacheStats:
        """Lifetime tallies of this backend instance."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          stores=self.stores)

    def backend_stats(self) -> List[Tuple[str, CacheStats]]:
        """Per-constituent (label, stats) pairs; one entry unless sharded."""
        return [(self.label, self.stats)]

    # -- entries -------------------------------------------------------------

    def get(self, key: str) -> Optional[RunResult]:
        """Load the entry for ``key`` or ``None``; tallies a hit or miss."""
        raise NotImplementedError

    def put(self, key: str, result: RunResult) -> None:
        """Atomically persist ``result`` and clear any lease on ``key``."""
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        """Whether an entry exists, without loading it or tallying."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of entries currently stored."""
        raise NotImplementedError

    def clear(self) -> int:
        """Delete every entry (leases included); returns entries removed."""
        raise NotImplementedError

    # -- leases --------------------------------------------------------------

    def try_claim(self, key: str, owner: str,
                  ttl: float) -> Optional[str]:
        """Atomically install a lease on ``key`` for ``owner``.

        Returns ``"new"`` when the key was unclaimed, ``"expired"`` when
        an expired lease (a crashed or stalled worker) was taken over,
        and ``None`` when a live lease is held by someone else.  Claims
        are idempotent for the same owner (refreshing the expiry).
        """
        raise NotImplementedError

    def release(self, key: str, owner: str) -> None:
        """Drop ``owner``'s lease on ``key`` (no-op if not held)."""
        raise NotImplementedError

    def lease_owner(self, key: str) -> Optional[str]:
        """The owner of a live lease on ``key``, or ``None``."""
        raise NotImplementedError


def _decode(text: str) -> Optional[RunResult]:
    try:
        return RunResult.from_json(text)
    except (ValueError, KeyError, TypeError):
        return None


class DirectoryBackend(CacheBackend):
    """One JSON file per entry under a local directory.

    This is the original ``ResultCache`` on-disk layout -- existing cache
    directories are readable unchanged.  Leases are ``<key>.lease`` JSON
    files created with ``O_EXCL`` (atomic on POSIX and NFSv4); takeover
    of an expired lease goes through a tempfile + ``os.replace`` with a
    read-back confirmation, so the worst race between two claimants is
    one of them winning -- never both.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        super().__init__()
        self.root = Path(root)
        self.label = f"dir:{self.root}"

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _lease_path(self, key: str) -> Path:
        return self.root / f"{key}.lease"

    def get(self, key: str) -> Optional[RunResult]:
        try:
            text = self.path_for(key).read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        result = _decode(text)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(result.to_json(), encoding="utf-8")
        os.replace(tmp, path)
        self.stores += 1
        self.release(key, owner="*")

    def contains(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
            for path in self.root.glob("*.lease"):
                path.unlink()
        return removed

    # -- leases --------------------------------------------------------------

    def _read_lease(self, key: str) -> Optional[Dict[str, object]]:
        try:
            return json.loads(self._lease_path(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def try_claim(self, key: str, owner: str, ttl: float) -> Optional[str]:
        self.root.mkdir(parents=True, exist_ok=True)
        record = json.dumps({"owner": owner, "expires": time.time() + ttl})
        path = self._lease_path(key)
        try:
            with open(path, "x", encoding="utf-8") as handle:
                handle.write(record)
            return "new"
        except FileExistsError:
            pass
        lease = self._read_lease(key)
        if lease is not None and lease.get("owner") == owner:
            path.write_text(record, encoding="utf-8")  # refresh own lease
            return "new"
        if lease is not None and lease.get("expires", 0) > time.time():
            return None
        # Expired (or unreadable) lease: take it over.  os.replace is
        # atomic, so between racing claimants exactly one record survives;
        # the read-back decides who actually won.
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(record, encoding="utf-8")
        os.replace(tmp, path)
        final = self._read_lease(key)
        if final is not None and final.get("owner") == owner:
            return "expired"
        return None

    def release(self, key: str, owner: str) -> None:
        lease = self._read_lease(key)
        if lease is None:
            return
        if owner != "*" and lease.get("owner") != owner:
            return
        try:
            self._lease_path(key).unlink()
        except OSError:
            pass

    def lease_owner(self, key: str) -> Optional[str]:
        lease = self._read_lease(key)
        if lease is None or lease.get("expires", 0) <= time.time():
            return None
        return lease.get("owner")  # type: ignore[return-value]


class SqliteBackend(CacheBackend):
    """One sqlite shard file, safe for concurrent writer processes.

    WAL journaling lets readers proceed under a writer; every mutation is
    a single transaction, and lease claiming runs under ``BEGIN
    IMMEDIATE`` so the test-and-take-over of an expired lease is atomic
    across processes.  The connection is opened lazily and re-opened
    after a fork, so backends can be constructed in a parent and used in
    ``multiprocessing`` workers.
    """

    def __init__(self, path: Union[str, Path], timeout: float = 30.0) -> None:
        super().__init__()
        self.path = Path(path)
        self.timeout = timeout
        self.label = f"sqlite:{self.path}"
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None

    def _connect(self) -> sqlite3.Connection:
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = _retry_locked(self._open)
            self._conn_pid = pid
        return self._conn

    def _open(self) -> sqlite3.Connection:
        # Retried by _connect: when several processes race to create the
        # same fresh database, the journal-mode switch and the schema
        # writes can return SQLITE_BUSY on paths that bypass the busy
        # handler, despite the connect timeout.
        conn = sqlite3.connect(self.path, timeout=self.timeout,
                               isolation_level=None)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("CREATE TABLE IF NOT EXISTS entries ("
                         "key TEXT PRIMARY KEY, body TEXT NOT NULL)")
            conn.execute("CREATE TABLE IF NOT EXISTS leases ("
                         "key TEXT PRIMARY KEY, owner TEXT NOT NULL, "
                         "expires REAL NOT NULL)")
        except BaseException:
            conn.close()
            raise
        return conn

    def get(self, key: str) -> Optional[RunResult]:
        row = self._connect().execute(
            "SELECT body FROM entries WHERE key = ?", (key,)).fetchone()
        result = _decode(row[0]) if row is not None else None
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        conn = self._connect()
        body = result.to_json()
        _retry_locked(lambda: conn.execute("BEGIN IMMEDIATE"))
        try:
            conn.execute("INSERT OR REPLACE INTO entries (key, body) "
                         "VALUES (?, ?)", (key, body))
            conn.execute("DELETE FROM leases WHERE key = ?", (key,))
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        self.stores += 1

    def contains(self, key: str) -> bool:
        row = self._connect().execute(
            "SELECT 1 FROM entries WHERE key = ?", (key,)).fetchone()
        return row is not None

    def __len__(self) -> int:
        if not self.path.is_file():
            return 0
        return self._connect().execute(
            "SELECT COUNT(*) FROM entries").fetchone()[0]

    def clear(self) -> int:
        if not self.path.is_file():
            return 0
        conn = self._connect()
        removed = conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        _retry_locked(lambda: conn.execute("BEGIN IMMEDIATE"))
        try:
            conn.execute("DELETE FROM entries")
            conn.execute("DELETE FROM leases")
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return removed

    def close(self) -> None:
        """Close the underlying connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None
            self._conn_pid = None

    # -- leases --------------------------------------------------------------

    def try_claim(self, key: str, owner: str, ttl: float) -> Optional[str]:
        conn = self._connect()
        now = time.time()
        _retry_locked(lambda: conn.execute("BEGIN IMMEDIATE"))
        try:
            row = conn.execute("SELECT owner, expires FROM leases "
                               "WHERE key = ?", (key,)).fetchone()
            if row is None:
                verdict: Optional[str] = "new"
            elif row[0] == owner:
                verdict = "new"  # refresh own lease
            elif row[1] <= now:
                verdict = "expired"
            else:
                verdict = None
            if verdict is not None:
                conn.execute("INSERT OR REPLACE INTO leases "
                             "(key, owner, expires) VALUES (?, ?, ?)",
                             (key, owner, now + ttl))
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return verdict

    def release(self, key: str, owner: str) -> None:
        self._connect().execute(
            "DELETE FROM leases WHERE key = ? AND owner = ?", (key, owner))

    def lease_owner(self, key: str) -> Optional[str]:
        row = self._connect().execute(
            "SELECT owner, expires FROM leases WHERE key = ?",
            (key,)).fetchone()
        if row is None or row[1] <= time.time():
            return None
        return row[0]


class ShardedBackend(CacheBackend):
    """Routes each key to one of N child backends by key prefix.

    The shard index is the key's leading 32 hash bits modulo the shard
    count -- deterministic, uniform for SHA-256 keys, and independent of
    insertion order, so any process that opens the same shard list sees
    every entry where it expects it.  Stats aggregate across shards;
    :meth:`backend_stats` exposes the per-shard split.
    """

    def __init__(self, shards: Sequence[CacheBackend]) -> None:
        super().__init__()
        if not shards:
            raise ConfigurationError("a sharded backend needs >= 1 shard")
        self.shards = list(shards)
        self.label = f"sharded[{len(self.shards)}]"

    def shard_for(self, key: str) -> CacheBackend:
        try:
            index = int(key[:8], 16) % len(self.shards)
        except ValueError:
            raise ConfigurationError(
                f"cache key {key!r} is not content-addressed (hex)")
        return self.shards[index]

    @property
    def stats(self) -> CacheStats:
        total = CacheStats()
        for shard in self.shards:
            total = total.plus(shard.stats)
        return total

    def backend_stats(self) -> List[Tuple[str, CacheStats]]:
        return [(shard.label, shard.stats) for shard in self.shards]

    def get(self, key: str) -> Optional[RunResult]:
        return self.shard_for(key).get(key)

    def put(self, key: str, result: RunResult) -> None:
        self.shard_for(key).put(key, result)

    def contains(self, key: str) -> bool:
        return self.shard_for(key).contains(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def clear(self) -> int:
        return sum(shard.clear() for shard in self.shards)

    def try_claim(self, key: str, owner: str, ttl: float) -> Optional[str]:
        return self.shard_for(key).try_claim(key, owner, ttl)

    def release(self, key: str, owner: str) -> None:
        self.shard_for(key).release(key, owner)

    def lease_owner(self, key: str) -> Optional[str]:
        return self.shard_for(key).lease_owner(key)


def _parse_url(url: str) -> Tuple[str, str, Dict[str, str]]:
    """Split ``scheme://path?query`` without urllib's path mangling."""
    if "://" in url:
        scheme, rest = url.split("://", 1)
    else:
        scheme, rest = "dir", url
    query: Dict[str, str] = {}
    if "?" in rest:
        rest, raw = rest.split("?", 1)
        for item in raw.split("&"):
            if not item:
                continue
            name, _, value = item.partition("=")
            query[name] = value
    if not rest:
        raise ConfigurationError(f"cache URL {url!r} has an empty path")
    return scheme, rest, query


def _shard_count(url: str, query: Dict[str, str]) -> int:
    raw = query.pop("shards", "1")
    try:
        shards = int(raw)
    except ValueError:
        shards = 0
    if shards < 1:
        raise ConfigurationError(
            f"cache URL {url!r}: shards must be a positive integer")
    if query:
        raise ConfigurationError(
            f"cache URL {url!r}: unknown parameter "
            f"{', '.join(sorted(query))} (only 'shards' is recognized)")
    return shards


def backend_from_url(url: Union[str, Path]) -> CacheBackend:
    """Open the backend a cache URL names (see the module docstring).

    A bare path (no ``scheme://``) opens a :class:`DirectoryBackend`, so
    anything that used to be a valid ``--cache-dir`` is a valid URL.
    """
    scheme, path, query = _parse_url(str(url))
    shards = _shard_count(str(url), query)
    if scheme == "dir":
        if shards == 1:
            return DirectoryBackend(path)
        return ShardedBackend([DirectoryBackend(Path(path) / f"shard{i}")
                               for i in range(shards)])
    if scheme == "sqlite":
        if shards == 1:
            return SqliteBackend(path)
        return ShardedBackend([SqliteBackend(f"{path}.shard{i}")
                               for i in range(shards)])
    raise ConfigurationError(
        f"unknown cache URL scheme {scheme!r} in {url!r} "
        f"(known: dir://, sqlite://)")

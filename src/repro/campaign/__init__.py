"""Campaign subsystem: declarative configs, parallel execution, caching.

Regenerating the paper's figures is a large (configuration x workload x
seed) cross-product of independent simulations.  This package turns that
cross-product into an explicit *campaign*:

* :mod:`~repro.campaign.registry` -- a declarative registry mapping
  configuration short-names (``sc``, ``invisi_rmo``, ...) to config
  factories, runtime-extensible for new machine variants;
* :mod:`~repro.campaign.jobs` -- the hashable :class:`Job` cell model and
  cross-product helpers;
* :mod:`~repro.campaign.executor` -- :class:`CampaignExecutor`, which fans
  cells out over a ``multiprocessing`` pool (deterministic serial path for
  ``jobs=1``) and returns results in stable order;
* :mod:`~repro.campaign.cache` -- :class:`ResultCache`, a content-addressed
  on-disk store so re-running a figure only simulates missing cells.

The experiment layer's :class:`~repro.experiments.common.ExperimentRunner`
is a thin façade over these pieces; use this package directly for custom
sweeps (see the CLI's ``sweep`` subcommand).
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, cache_key
from .executor import CampaignExecutor, CampaignReport
from .jobs import Job, dedupe_jobs, expand_jobs
from .registry import DEFAULT_REGISTRY, ConfigFactory, ConfigRegistry, derived

__all__ = [
    "CampaignExecutor",
    "CampaignReport",
    "ConfigFactory",
    "ConfigRegistry",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_REGISTRY",
    "Job",
    "ResultCache",
    "cache_key",
    "dedupe_jobs",
    "derived",
    "expand_jobs",
]

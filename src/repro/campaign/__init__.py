"""Campaign subsystem: declarative configs, parallel execution, caching.

Regenerating the paper's figures is a large (configuration x workload x
seed) cross-product of independent simulations.  This package turns that
cross-product into an explicit *campaign*:

* :mod:`~repro.campaign.registry` -- a declarative registry mapping
  configuration short-names (``sc``, ``invisi_rmo``, ...) to config
  factories, runtime-extensible for new machine variants;
* :mod:`~repro.campaign.jobs` -- the hashable :class:`Job` cell model and
  cross-product helpers;
* :mod:`~repro.campaign.executor` -- :class:`CampaignExecutor`, which fans
  cells out over a ``multiprocessing`` pool (deterministic serial path for
  ``jobs=1``) and returns results in stable order;
* :mod:`~repro.campaign.cache` -- :class:`ResultCache`, a content-addressed
  result store so re-running a figure only simulates missing cells;
* :mod:`~repro.campaign.backends` -- the pluggable storage behind the
  cache: local directory, sqlite shard (concurrent-writer safe), or a
  sharded composite, addressed by ``dir://`` / ``sqlite://`` URLs;
* :mod:`~repro.campaign.versions` -- kernel-source fingerprints embedded
  in cache keys, so an engine refactor invalidates exactly the cells
  whose reachable sources changed;
* :mod:`~repro.campaign.queue` -- :class:`QueueWorker`, the distributed
  work-queue tier: many worker processes drain one deduplicated study
  plan through a shared backend, claiming cells via expiring leases
  (``repro worker`` on the command line).

The experiment layer's :class:`~repro.experiments.common.ExperimentRunner`
is a thin façade over these pieces; use this package directly for custom
sweeps (see the CLI's ``sweep`` subcommand).
"""

from .backends import (
    CacheBackend,
    CacheStats,
    DirectoryBackend,
    ShardedBackend,
    SqliteBackend,
    backend_from_url,
)
from .cache import DEFAULT_CACHE_DIR, DEFAULT_CACHE_URL, ResultCache, cache_key
from .executor import CampaignExecutor, CampaignReport
from .jobs import Job, dedupe_jobs, expand_jobs
from .queue import QueueWorker, WorkerReport, default_worker_id
from .registry import DEFAULT_REGISTRY, ConfigFactory, ConfigRegistry, derived
from .versions import group_fingerprint, groups_for, kernel_versions

__all__ = [
    "CacheBackend",
    "CacheStats",
    "CampaignExecutor",
    "CampaignReport",
    "ConfigFactory",
    "ConfigRegistry",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_CACHE_URL",
    "DEFAULT_REGISTRY",
    "DirectoryBackend",
    "Job",
    "QueueWorker",
    "ResultCache",
    "ShardedBackend",
    "SqliteBackend",
    "WorkerReport",
    "backend_from_url",
    "cache_key",
    "dedupe_jobs",
    "default_worker_id",
    "derived",
    "expand_jobs",
    "group_fingerprint",
    "groups_for",
    "kernel_versions",
]

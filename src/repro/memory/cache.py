"""Set-associative cache tag array with InvisiFence speculative-bit support.

The :class:`CacheArray` models the tag/state side of an L1 data cache.  The
data values themselves are never simulated (the simulator is trace-driven),
but all state needed for timing and correctness of the studied mechanisms is
kept: coherence state, dirtiness, LRU ordering, and the speculatively-read /
speculatively-written bits.

Two operations mirror the flash circuits of Figure 3:

* :meth:`CacheArray.flash_clear_spec_bits` -- clear every speculative bit
  (used on commit), optionally restricted to one checkpoint id.
* :meth:`CacheArray.flash_invalidate_spec_written` -- invalidate every block
  whose speculatively-written bit is set (used on abort), again optionally
  restricted to one checkpoint id.

Victim selection prefers non-speculative blocks so that a fill does not
force the eviction of a speculatively accessed block unless the whole set
is speculative; in that case the caller is told a *forced commit* is needed
(Section 3.2: "forcing a commit before evicting any speculatively-read or
speculatively-written block").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..config import CacheConfig
from ..errors import SimulationError
from .address import block_address
from .block import CacheBlock, CoherenceState


@dataclass
class EvictionResult:
    """Outcome of preparing a fill: which victim (if any) was evicted."""

    #: the evicted block (already removed from the cache), or None.
    victim: Optional[CacheBlock]
    #: True when the victim was dirty and must be written back.
    needs_writeback: bool
    #: True when every candidate way held speculative state, so the caller
    #: must force a speculation commit before the fill can proceed.
    requires_forced_commit: bool


class CacheArray:
    """A set-associative, LRU-replaced cache tag array."""

    def __init__(self, config: CacheConfig) -> None:
        self._config = config
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        self._block_bytes = config.block_bytes
        #: per-set mapping from block address to CacheBlock.
        self._sets: List[Dict[int, CacheBlock]] = [dict() for _ in range(self._num_sets)]
        self._access_counter = 0

    # -- geometry helpers -------------------------------------------------

    @property
    def config(self) -> CacheConfig:
        return self._config

    @property
    def block_bytes(self) -> int:
        return self._block_bytes

    def set_index(self, addr: int) -> int:
        return (block_address(addr, self._block_bytes) // self._block_bytes) % self._num_sets

    def _set_for(self, addr: int) -> Dict[int, CacheBlock]:
        return self._sets[self.set_index(addr)]

    def _touch(self, block: CacheBlock) -> None:
        self._access_counter += 1
        block.last_use = self._access_counter

    # -- lookups ----------------------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheBlock]:
        """Return the valid block containing ``addr`` or ``None``."""
        baddr = block_address(addr, self._block_bytes)
        block = self._set_for(baddr).get(baddr)
        if block is None or not block.state.is_valid:
            return None
        if touch:
            self._touch(block)
        return block

    def contains(self, addr: int) -> bool:
        return self.lookup(addr, touch=False) is not None

    def is_writable(self, addr: int) -> bool:
        block = self.lookup(addr, touch=False)
        return block is not None and block.state.is_writable

    def __len__(self) -> int:
        return sum(
            1 for s in self._sets for b in s.values() if b.state.is_valid
        )

    def blocks(self) -> Iterator[CacheBlock]:
        """Iterate over all valid blocks (no LRU side effects)."""
        for s in self._sets:
            for block in s.values():
                if block.state.is_valid:
                    yield block

    def speculative_blocks(self) -> Iterator[CacheBlock]:
        """Iterate over valid blocks with at least one speculative bit set."""
        for block in self.blocks():
            if block.speculative:
                yield block

    # -- fills and evictions ----------------------------------------------

    def prepare_fill(self, addr: int) -> EvictionResult:
        """Make room for a fill of the block containing ``addr``.

        If the block is already present, or the set has a free way, no
        victim is chosen.  Otherwise the least-recently-used
        *non-speculative* block is evicted.  If every way in the set holds
        speculative state the caller must commit the current speculation
        first; no eviction is performed in that case.
        """
        baddr = block_address(addr, self._block_bytes)
        cache_set = self._set_for(baddr)
        existing = cache_set.get(baddr)
        if existing is not None and existing.state.is_valid:
            return EvictionResult(victim=None, needs_writeback=False,
                                  requires_forced_commit=False)
        # Drop any stale invalid entry for this address.
        if existing is not None:
            del cache_set[baddr]
        # Purge invalid placeholders to free ways.
        for key in [k for k, b in cache_set.items() if not b.state.is_valid]:
            del cache_set[key]
        if len(cache_set) < self._assoc:
            return EvictionResult(victim=None, needs_writeback=False,
                                  requires_forced_commit=False)
        candidates = [b for b in cache_set.values() if not b.speculative]
        if not candidates:
            return EvictionResult(victim=None, needs_writeback=False,
                                  requires_forced_commit=True)
        victim = min(candidates, key=lambda b: b.last_use)
        del cache_set[victim.address]
        return EvictionResult(victim=victim,
                              needs_writeback=victim.dirty
                              and victim.state is CoherenceState.MODIFIED,
                              requires_forced_commit=False)

    def install(self, addr: int, state: CoherenceState,
                dirty: bool = False) -> CacheBlock:
        """Install (or update) the block containing ``addr``.

        Callers must have invoked :meth:`prepare_fill` first when a new
        block may be needed; installing into a full set raises.
        """
        if not state.is_valid:
            raise SimulationError("cannot install a block in the INVALID state")
        baddr = block_address(addr, self._block_bytes)
        cache_set = self._set_for(baddr)
        block = cache_set.get(baddr)
        if block is None:
            if len(cache_set) >= self._assoc:
                raise SimulationError(
                    f"install into full set for address {baddr:#x}; "
                    "prepare_fill must be called first"
                )
            block = CacheBlock(address=baddr)
            cache_set[baddr] = block
        block.state = state
        block.dirty = dirty
        self._touch(block)
        return block

    def remove(self, addr: int) -> Optional[CacheBlock]:
        """Remove and return the block containing ``addr`` (if present)."""
        baddr = block_address(addr, self._block_bytes)
        return self._set_for(baddr).pop(baddr, None)

    # -- flash operations (Figure 3) --------------------------------------

    def flash_clear_spec_bits(self, checkpoint_id: Optional[int] = None) -> int:
        """Clear speculative bits; returns the number of blocks affected.

        With ``checkpoint_id`` given, only bits belonging to that
        checkpoint are cleared (used when one of two in-flight chunks
        commits).
        """
        cleared = 0
        for block in self.blocks():
            if not block.speculative:
                continue
            if checkpoint_id is None:
                block.clear_spec_bits()
                cleared += 1
            elif checkpoint_id in block.speculation_ids():
                block.clear_spec_bits_for(checkpoint_id)
                cleared += 1
        return cleared

    def flash_invalidate_spec_written(
        self, checkpoint_id: Optional[int] = None
    ) -> List[int]:
        """Invalidate speculatively written blocks; returns their addresses.

        This is the conditional flash-invalidate used on abort: the only
        up-to-date copy of a speculatively written block is the speculative
        one, so the block is dropped and will be re-fetched on demand.
        Speculatively *read* bits (for the selected checkpoint) are cleared
        as well, mirroring the full flash-clear that accompanies abort.
        """
        invalidated: List[int] = []
        for block in list(self.blocks()):
            if checkpoint_id is not None and checkpoint_id not in block.speculation_ids():
                continue
            if block.spec_written is not None and (
                checkpoint_id is None or block.spec_written == checkpoint_id
            ):
                invalidated.append(block.address)
                block.invalidate()
            else:
                if checkpoint_id is None:
                    block.clear_spec_bits()
                else:
                    block.clear_spec_bits_for(checkpoint_id)
        return invalidated

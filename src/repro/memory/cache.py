"""Set-associative cache tag array with InvisiFence speculative-bit support.

The :class:`CacheArray` models the tag/state side of an L1 data cache.  The
data values themselves are never simulated (the simulator is trace-driven),
but all state needed for timing and correctness of the studied mechanisms is
kept: coherence state, dirtiness, LRU ordering, and the speculatively-read /
speculatively-written bits.

Two operations mirror the flash circuits of Figure 3:

* :meth:`CacheArray.flash_clear_spec_bits` -- clear every speculative bit
  (used on commit), optionally restricted to one checkpoint id.
* :meth:`CacheArray.flash_invalidate_spec_written` -- invalidate every block
  whose speculatively-written bit is set (used on abort), again optionally
  restricted to one checkpoint id.

Victim selection prefers non-speculative blocks so that a fill does not
force the eviction of a speculatively accessed block unless the whole set
is speculative; in that case the caller is told a *forced commit* is needed
(Section 3.2: "forcing a commit before evicting any speculatively-read or
speculatively-written block").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..config import CacheConfig
from ..errors import SimulationError
from .address import block_address, block_mask
from .block import CacheBlock, CoherenceState


@dataclass
class EvictionResult:
    """Outcome of preparing a fill: which victim (if any) was evicted."""

    #: the evicted block (already removed from the cache), or None.
    victim: Optional[CacheBlock]
    #: True when the victim was dirty and must be written back.
    needs_writeback: bool
    #: True when every candidate way held speculative state, so the caller
    #: must force a speculation commit before the fill can proceed.
    requires_forced_commit: bool


class CacheArray:
    """A set-associative, LRU-replaced cache tag array."""

    def __init__(self, config: CacheConfig) -> None:
        self._config = config
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        self._block_bytes = config.block_bytes
        self._block_mask = block_mask(self._block_bytes)
        #: set-index -> {block address -> CacheBlock}; sets materialize on
        #: first install so construction stays O(1) in the number of sets.
        self._sets: Dict[int, Dict[int, CacheBlock]] = {}
        #: blocks that have had a speculative bit set since the last flash
        #: (address -> block, possibly stale); lets the flash circuits run
        #: in O(speculative blocks) instead of O(cache size).  Blocks hold a
        #: reference to this dict, so it is mutated in place, never rebound.
        self._spec_marked: Dict[int, CacheBlock] = {}
        self._access_counter = 0

    # -- geometry helpers -------------------------------------------------

    @property
    def config(self) -> CacheConfig:
        return self._config

    @property
    def block_bytes(self) -> int:
        return self._block_bytes

    def set_index(self, addr: int) -> int:
        return ((addr & self._block_mask) // self._block_bytes) % self._num_sets

    def _set_for(self, addr: int) -> Dict[int, CacheBlock]:
        """The (materialized) set holding ``addr``; creates it if absent."""
        index = self.set_index(addr)
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = {}
        return cache_set

    def _touch(self, block: CacheBlock) -> None:
        self._access_counter += 1
        block.last_use = self._access_counter

    # -- lookups ----------------------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheBlock]:
        """Return the valid block containing ``addr`` or ``None``."""
        baddr = addr & self._block_mask
        cache_set = self._sets.get((baddr // self._block_bytes) % self._num_sets)
        if cache_set is None:
            return None
        block = cache_set.get(baddr)
        if block is None or block.state is CoherenceState.INVALID:
            return None
        if touch:
            self._access_counter += 1
            block.last_use = self._access_counter
        return block

    def contains(self, addr: int) -> bool:
        return self.lookup(addr, touch=False) is not None

    def is_writable(self, addr: int) -> bool:
        block = self.lookup(addr, touch=False)
        if block is None:
            return False
        state = block.state
        return state is CoherenceState.MODIFIED or state is CoherenceState.EXCLUSIVE

    def __len__(self) -> int:
        return sum(
            1 for s in self._sets.values() for b in s.values() if b.state.is_valid
        )

    def blocks(self) -> Iterator[CacheBlock]:
        """Iterate over all valid blocks (no LRU side effects)."""
        for s in self._sets.values():
            for block in s.values():
                if block.state.is_valid:
                    yield block

    def speculative_blocks(self) -> Iterator[CacheBlock]:
        """Iterate over valid blocks with at least one speculative bit set."""
        for block in self.blocks():
            if block.speculative:
                yield block

    # -- fills and evictions ----------------------------------------------

    def prepare_fill(self, addr: int) -> EvictionResult:
        """Make room for a fill of the block containing ``addr``.

        If the block is already present, or the set has a free way, no
        victim is chosen.  Otherwise the least-recently-used
        *non-speculative* block is evicted.  If every way in the set holds
        speculative state the caller must commit the current speculation
        first; no eviction is performed in that case.
        """
        baddr = addr & self._block_mask
        cache_set = self._set_for(baddr)
        existing = cache_set.get(baddr)
        if existing is not None and existing.state.is_valid:
            return EvictionResult(victim=None, needs_writeback=False,
                                  requires_forced_commit=False)
        # Drop any stale invalid entry for this address.
        if existing is not None:
            del cache_set[baddr]
        if len(cache_set) >= self._assoc:
            # Purge invalid placeholders to free ways; only needed once the
            # raw way count fills up (invalid blocks are unobservable
            # elsewhere: lookups, iteration, and len() all skip them).
            for key in [k for k, b in cache_set.items() if not b.state.is_valid]:
                del cache_set[key]
        if len(cache_set) < self._assoc:
            return EvictionResult(victim=None, needs_writeback=False,
                                  requires_forced_commit=False)
        candidates = [b for b in cache_set.values() if not b.speculative]
        if not candidates:
            return EvictionResult(victim=None, needs_writeback=False,
                                  requires_forced_commit=True)
        victim = min(candidates, key=lambda b: b.last_use)
        del cache_set[victim.address]
        return EvictionResult(victim=victim,
                              needs_writeback=victim.dirty
                              and victim.state is CoherenceState.MODIFIED,
                              requires_forced_commit=False)

    def install(self, addr: int, state: CoherenceState,
                dirty: bool = False) -> CacheBlock:
        """Install (or update) the block containing ``addr``.

        Callers must have invoked :meth:`prepare_fill` first when a new
        block may be needed; installing into a full set raises.
        """
        if not state.is_valid:
            raise SimulationError("cannot install a block in the INVALID state")
        baddr = block_address(addr, self._block_bytes)
        cache_set = self._set_for(baddr)
        block = cache_set.get(baddr)
        if block is None:
            if len(cache_set) >= self._assoc:
                raise SimulationError(
                    f"install into full set for address {baddr:#x}; "
                    "prepare_fill must be called first"
                )
            block = CacheBlock(address=baddr, spec_registry=self._spec_marked)
            cache_set[baddr] = block
        block.state = state
        block.dirty = dirty
        self._touch(block)
        return block

    def remove(self, addr: int) -> Optional[CacheBlock]:
        """Remove and return the block containing ``addr`` (if present)."""
        baddr = addr & self._block_mask
        cache_set = self._sets.get((baddr // self._block_bytes) % self._num_sets)
        if cache_set is None:
            return None
        return cache_set.pop(baddr, None)

    # -- flash operations (Figure 3) --------------------------------------

    def _is_current(self, block: CacheBlock) -> bool:
        """Is ``block`` still this cache's resident copy of its address?"""
        cache_set = self._sets.get(
            (block.address // self._block_bytes) % self._num_sets)
        return cache_set is not None and cache_set.get(block.address) is block

    def _speculative_marked(self) -> List[CacheBlock]:
        """Resident, valid, still-speculative blocks from the registry."""
        return [block for block in self._spec_marked.values()
                if block.speculative and block.state.is_valid
                and self._is_current(block)]

    def flash_clear_spec_bits(self, checkpoint_id: Optional[int] = None) -> int:
        """Clear speculative bits; returns the number of blocks affected.

        With ``checkpoint_id`` given, only bits belonging to that
        checkpoint are cleared (used when one of two in-flight chunks
        commits).
        """
        if not self._spec_marked:
            return 0
        cleared = 0
        survivors: Dict[int, CacheBlock] = {}
        for block in self._speculative_marked():
            if checkpoint_id is None:
                block.clear_spec_bits()
                cleared += 1
            elif checkpoint_id in block.speculation_ids():
                block.clear_spec_bits_for(checkpoint_id)
                cleared += 1
                if block.speculative:
                    survivors[block.address] = block
            else:
                survivors[block.address] = block
        self._spec_marked.clear()
        self._spec_marked.update(survivors)
        return cleared

    def flash_invalidate_spec_written(
        self, checkpoint_id: Optional[int] = None
    ) -> List[int]:
        """Invalidate speculatively written blocks; returns their addresses.

        This is the conditional flash-invalidate used on abort: the only
        up-to-date copy of a speculatively written block is the speculative
        one, so the block is dropped and will be re-fetched on demand.
        Speculatively *read* bits (for the selected checkpoint) are cleared
        as well, mirroring the full flash-clear that accompanies abort.
        """
        invalidated: List[int] = []
        if not self._spec_marked:
            return invalidated
        survivors: Dict[int, CacheBlock] = {}
        for block in self._speculative_marked():
            if checkpoint_id is not None \
                    and checkpoint_id not in block.speculation_ids():
                survivors[block.address] = block
                continue
            if block.spec_written is not None and (
                checkpoint_id is None or block.spec_written == checkpoint_id
            ):
                invalidated.append(block.address)
                block.invalidate()
            else:
                if checkpoint_id is None:
                    block.clear_spec_bits()
                else:
                    block.clear_spec_bits_for(checkpoint_id)
                    if block.speculative:
                        survivors[block.address] = block
        self._spec_marked.clear()
        self._spec_marked.update(survivors)
        return invalidated

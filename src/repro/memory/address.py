"""Address arithmetic helpers.

Addresses are plain integers (byte addresses).  The helpers here convert
between byte addresses, cache-block addresses (the byte address of the
first byte in the block) and word addresses (8-byte granularity, matching
the FIFO store buffer entries of the SC/TSO baselines in Figure 6).
"""

from __future__ import annotations

from ..errors import ConfigurationError

#: Word size used by the word-granularity FIFO store buffers (bytes).
WORD_BYTES = 8

Address = int


def _check_block_size(block_bytes: int) -> None:
    if block_bytes <= 0 or block_bytes & (block_bytes - 1):
        raise ConfigurationError(f"block size must be a power of two, got {block_bytes}")


def block_address(addr: Address, block_bytes: int) -> Address:
    """Return the byte address of the block containing ``addr``."""
    _check_block_size(block_bytes)
    return addr & ~(block_bytes - 1)


def block_mask(block_bytes: int) -> int:
    """Validated AND-mask such that ``addr & mask == block_address(addr)``.

    Hot paths precompute this once instead of calling :func:`block_address`
    (and its power-of-two validation) per access.
    """
    _check_block_size(block_bytes)
    return ~(block_bytes - 1)


def block_index(addr: Address, block_bytes: int) -> int:
    """Return the index of the block containing ``addr``."""
    _check_block_size(block_bytes)
    return addr >> block_bytes.bit_length() - 1


def block_offset(addr: Address, block_bytes: int) -> int:
    """Return the offset of ``addr`` within its block."""
    _check_block_size(block_bytes)
    return addr & (block_bytes - 1)


def word_address(addr: Address) -> Address:
    """Return the byte address of the 8-byte word containing ``addr``."""
    return addr & ~(WORD_BYTES - 1)


def words_in_block(block_bytes: int) -> int:
    """Number of 8-byte words per cache block."""
    _check_block_size(block_bytes)
    return block_bytes // WORD_BYTES


def same_block(a: Address, b: Address, block_bytes: int) -> bool:
    """True when two byte addresses fall in the same cache block."""
    return block_address(a, block_bytes) == block_address(b, block_bytes)

"""Memory substrate: addresses, cache blocks, and set-associative caches.

This package provides the storage structures shared by the coherence
protocol and the processor model:

* :mod:`repro.memory.address` -- block/word address arithmetic.
* :mod:`repro.memory.block` -- per-block coherence state plus the
  speculatively-read / speculatively-written bits that InvisiFence adds to
  the L1 tags (Section 3.1 of the paper).
* :mod:`repro.memory.cache` -- a set-associative, LRU cache tag array with
  the flash-clear and conditional flash-invalidate operations InvisiFence
  relies on for constant-time commit and abort.
"""

from .address import Address, block_address, block_index, word_address
from .block import CacheBlock, CoherenceState
from .cache import CacheArray, EvictionResult

__all__ = [
    "Address",
    "block_address",
    "block_index",
    "word_address",
    "CacheBlock",
    "CoherenceState",
    "CacheArray",
    "EvictionResult",
]

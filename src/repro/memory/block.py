"""Cache block state.

Each L1 block carries an invalidation-protocol coherence state (a MESI
subset) plus the two bits InvisiFence adds to every L1 tag: the
speculatively-read and speculatively-written bits (Section 3.1).  The bits
are tagged with the identifier of the checkpoint (chunk) that set them so
that configurations with two in-flight checkpoints can attribute conflicts
and commits to the correct speculation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional


class CoherenceState(Enum):
    """Per-block coherence state as seen by one L1 cache."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"

    @property
    def is_valid(self) -> bool:
        return self is not CoherenceState.INVALID

    @property
    def is_writable(self) -> bool:
        return self in (CoherenceState.EXCLUSIVE, CoherenceState.MODIFIED)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class CacheBlock:
    """One L1 cache block: tag state plus InvisiFence speculative bits."""

    address: int
    state: CoherenceState = CoherenceState.INVALID
    dirty: bool = False
    #: last-access timestamp used for LRU replacement.
    last_use: int = 0
    #: speculatively-read bit; ``None`` when clear, else the id of the
    #: checkpoint whose load set it first.
    spec_read: Optional[int] = None
    #: speculatively-written bit; ``None`` when clear, else the id of the
    #: checkpoint whose store set it first.
    spec_written: Optional[int] = None
    #: the owning cache's speculative-block registry (address -> block).
    #: Marking a bit records the block there so the flash circuits visit
    #: only speculatively touched blocks instead of scanning the cache.
    spec_registry: Optional[Dict[int, "CacheBlock"]] = \
        field(default=None, compare=False, repr=False)

    # -- speculative-bit queries -----------------------------------------

    @property
    def speculative(self) -> bool:
        """True when either speculative bit is set."""
        return self.spec_read is not None or self.spec_written is not None

    def conflicts_with_external_write(self) -> bool:
        """An external write (invalidation) conflicts if we read or wrote it."""
        return self.speculative

    def conflicts_with_external_read(self) -> bool:
        """An external read conflicts only if we speculatively wrote it."""
        return self.spec_written is not None

    def speculation_ids(self) -> set:
        """Identifiers of all checkpoints that touched this block."""
        ids = set()
        if self.spec_read is not None:
            ids.add(self.spec_read)
        if self.spec_written is not None:
            ids.add(self.spec_written)
        return ids

    # -- speculative-bit updates -----------------------------------------

    def mark_spec_read(self, checkpoint_id: int) -> None:
        if self.spec_read is None:
            self.spec_read = checkpoint_id
            if self.spec_registry is not None:
                self.spec_registry[self.address] = self

    def mark_spec_written(self, checkpoint_id: int) -> None:
        if self.spec_written is None:
            self.spec_written = checkpoint_id
            if self.spec_registry is not None:
                self.spec_registry[self.address] = self

    def clear_spec_bits(self) -> None:
        """Flash-clear both speculative bits (commit path)."""
        self.spec_read = None
        self.spec_written = None

    def clear_spec_bits_for(self, checkpoint_id: int) -> None:
        """Clear only the bits owned by ``checkpoint_id`` (chunk commit)."""
        if self.spec_read == checkpoint_id:
            self.spec_read = None
        if self.spec_written == checkpoint_id:
            self.spec_written = None

    def invalidate(self) -> None:
        """Drop the block entirely (external invalidation or abort)."""
        self.state = CoherenceState.INVALID
        self.dirty = False
        self.clear_spec_bits()

"""2-D torus topology.

The paper's system is a 4x4 2-D torus with 25 ns per-hop latency.  This
module provides node placement and minimal-hop distance computations; the
latency model in :mod:`repro.interconnect.latency` converts hop counts into
cycles.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..config import InterconnectConfig
from ..errors import ConfigurationError


class TorusTopology:
    """Node coordinates and wrap-around hop distances on a 2-D torus."""

    def __init__(self, config: InterconnectConfig) -> None:
        self._config = config
        self._width = config.mesh_width
        self._height = config.mesh_height
        self._distance_cache: Dict[Tuple[int, int], int] = {}

    @property
    def config(self) -> InterconnectConfig:
        return self._config

    @property
    def num_nodes(self) -> int:
        return self._width * self._height

    def coordinates(self, node: int) -> Tuple[int, int]:
        """Return the (x, y) position of ``node``."""
        self._check_node(node)
        return node % self._width, node // self._width

    def node_at(self, x: int, y: int) -> int:
        """Return the node id at position (x, y)."""
        if not (0 <= x < self._width and 0 <= y < self._height):
            raise ConfigurationError(f"coordinates ({x}, {y}) outside torus")
        return y * self._width + x

    def hops(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes, with wrap-around links."""
        key = (src, dst)
        cached = self._distance_cache.get(key)
        if cached is not None:
            return cached
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        xdist = abs(sx - dx)
        xdist = min(xdist, self._width - xdist)
        ydist = abs(sy - dy)
        ydist = min(ydist, self._height - ydist)
        total = xdist + ydist
        self._distance_cache[key] = total
        self._distance_cache[(dst, src)] = total
        return total

    def home_node(self, block_addr: int, block_bytes: int) -> int:
        """Address-interleaved home (directory) node for a block."""
        return (block_addr // block_bytes) % self.num_nodes

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(
                f"node {node} outside torus of {self.num_nodes} nodes"
            )

"""2-D torus topology.

The paper's system is a 4x4 2-D torus with 25 ns per-hop latency; the
machine-scaling experiments lay out anything from a 1xN ring up to an 8x8
torus (see :func:`repro.config.torus_geometry`).  This module provides
node placement, minimal-hop distance computations, and dimension-order
routes; the latency model in :mod:`repro.interconnect.latency` converts
hop counts into cycles and, under the queued contention model, charges
each directed link on the route.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import InterconnectConfig
from ..errors import ConfigurationError

#: Directed-link direction indices used by :meth:`TorusTopology.route`.
_POS_X, _NEG_X, _POS_Y, _NEG_Y = range(4)


class TorusTopology:
    """Node coordinates and wrap-around hop distances on a 2-D torus."""

    def __init__(self, config: InterconnectConfig) -> None:
        self._config = config
        self._width = config.mesh_width
        self._height = config.mesh_height
        self._distance_cache: Dict[Tuple[int, int], int] = {}
        self._route_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    @property
    def config(self) -> InterconnectConfig:
        return self._config

    @property
    def num_nodes(self) -> int:
        return self._width * self._height

    def coordinates(self, node: int) -> Tuple[int, int]:
        """Return the (x, y) position of ``node``."""
        self._check_node(node)
        return node % self._width, node // self._width

    def node_at(self, x: int, y: int) -> int:
        """Return the node id at position (x, y)."""
        if not (0 <= x < self._width and 0 <= y < self._height):
            raise ConfigurationError(f"coordinates ({x}, {y}) outside torus")
        return y * self._width + x

    def hops(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes, with wrap-around links."""
        key = (src, dst)
        cached = self._distance_cache.get(key)
        if cached is not None:
            return cached
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        xdist = abs(sx - dx)
        xdist = min(xdist, self._width - xdist)
        ydist = abs(sy - dy)
        ydist = min(ydist, self._height - ydist)
        total = xdist + ydist
        self._distance_cache[key] = total
        self._distance_cache[(dst, src)] = total
        return total

    def route(self, src: int, dst: int) -> Tuple[int, ...]:
        """Directed links of the dimension-order (X then Y) route src -> dst.

        Each link is encoded as ``node * 4 + direction`` for the node the
        message *leaves* through that direction; wrap-around picks the
        shorter way around each ring and breaks exact ties toward the
        positive direction, so routes are deterministic.  The route has
        exactly :meth:`hops` entries (empty when ``src == dst``).
        """
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        x, y = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        links: List[int] = []
        width, height = self._width, self._height

        forward = (dx - x) % width
        step, direction = ((1, _POS_X) if forward <= width - forward
                           else (-1, _NEG_X))
        while x != dx:
            links.append(self.node_at(x, y) * 4 + direction)
            x = (x + step) % width

        forward = (dy - y) % height
        step, direction = ((1, _POS_Y) if forward <= height - forward
                           else (-1, _NEG_Y))
        while y != dy:
            links.append(self.node_at(x, y) * 4 + direction)
            y = (y + step) % height

        route = tuple(links)
        self._route_cache[key] = route
        return route

    def home_node(self, block_addr: int, block_bytes: int) -> int:
        """Address-interleaved home (directory) node for a block."""
        return (block_addr // block_bytes) % self.num_nodes

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(
                f"node {node} outside torus of {self.num_nodes} nodes"
            )

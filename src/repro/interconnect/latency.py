"""Latency model for coherence transactions.

Converts the structural path of a coherence transaction (requester ->
home directory -> possibly a remote owner and/or sharers -> requester)
into a cycle count, using the torus hop distances and the per-hop latency
from the system configuration.

The model is intentionally simple: each network traversal costs
``hops * hop_latency`` cycles, the directory adds a fixed occupancy, an L2
data hit adds the L2 hit latency, and an L2 miss adds the main-memory
latency.  Invalidations to sharers proceed in parallel; their contribution
is the worst-case sharer round trip (home -> sharer -> requester ack).

Two traversal modes exist (``InterconnectConfig.contention``):

* ``"none"`` -- the paper's contention-free network.  :meth:`LatencyModel.
  traverse` is pure: ``arrival = depart + hops * hop_latency``.
* ``"queued"`` -- every directed link on the dimension-order route, plus
  the destination's ejection port, is a FIFO resource that one message
  occupies for ``link_occupancy`` cycles.  A message departing while a
  link is busy waits for it; the extra wait is surfaced as
  ``contention_cycles`` for diagnostics.  See DESIGN.md section 4.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..config import SystemConfig
from .topology import TorusTopology


class LatencyModel:
    """Computes end-to-end latencies of coherence transactions."""

    def __init__(self, config: SystemConfig, topology: Optional[TorusTopology] = None) -> None:
        self._config = config
        self._topology = topology if topology is not None else TorusTopology(config.interconnect)
        self._hop = config.interconnect.hop_latency
        # The torus is small (at most 64 nodes), so the full one-way
        # latency matrix is precomputed once and network() becomes two list
        # indexes instead of a hop computation per transaction leg.
        nodes = self._topology.num_nodes
        self._net = [[self._topology.hops(src, dst) * self._hop
                      for dst in range(nodes)] for src in range(nodes)]
        self._queued = config.interconnect.contention == "queued"
        self._occupancy = config.interconnect.link_occupancy
        #: per-directed-link free times (``node * 4 + direction``), plus one
        #: ejection-port slot per node at the tail of the array.
        self._link_free = [0] * (nodes * 5) if self._queued else []
        #: cycles messages spent queued behind busy links (diagnostics).
        self.contention_cycles = 0

    @property
    def topology(self) -> TorusTopology:
        return self._topology

    @property
    def contended(self) -> bool:
        """True when the queued contention model is active."""
        return self._queued

    def network(self, src: int, dst: int) -> int:
        """One-way *uncontended* network latency between two nodes."""
        return self._net[src][dst]

    def traverse(self, src: int, dst: int, depart: int) -> int:
        """Arrival time of a message leaving ``src`` for ``dst`` at ``depart``.

        Under ``contention="none"`` this is pure arithmetic and equals
        ``depart + network(src, dst)``.  Under ``contention="queued"`` the
        message claims every directed link of the dimension-order route in
        order (waiting for each to free), then the destination's ejection
        port, and the claimed resources stay busy for ``link_occupancy``
        cycles behind it.  Each physical message must traverse exactly
        once: the call mutates link state.
        """
        if not self._queued:
            return depart + self._net[src][dst]
        if src == dst:
            return depart
        free = self._link_free
        occupancy = self._occupancy
        time = depart
        for link in self._topology.route(src, dst):
            start = free[link]
            if start > time:
                self.contention_cycles += start - time
            else:
                start = time
            free[link] = start + occupancy
            time = start + self._hop
        eject = self._topology.num_nodes * 4 + dst
        start = free[eject]
        if start > time:
            self.contention_cycles += start - time
        else:
            start = time
        free[eject] = start + occupancy
        return start

    def request_to_home(self, requester: int, home: int) -> int:
        return self.network(requester, home)

    def directory_access(self, l2_hit: bool) -> int:
        """Directory lookup plus L2 data access (or memory on a miss)."""
        latency = self._config.directory_latency + self._config.l2.hit_latency
        if not l2_hit:
            latency += self._config.memory_latency
        return latency

    def data_response(self, home: int, requester: int) -> int:
        return self.network(home, requester)

    def owner_forward(self, home: int, owner: int, requester: int) -> int:
        """Three-hop forwarding: home -> owner probe -> data to requester."""
        return (self.network(home, owner)
                + self._config.l1.hit_latency
                + self.network(owner, requester))

    def invalidation_round(self, home: int, sharers: Iterable[int], requester: int) -> int:
        """Worst-case invalidate/ack path over all sharers (in parallel)."""
        worst = 0
        for sharer in sharers:
            if sharer == requester:
                continue
            path = self.network(home, sharer) + self.network(sharer, requester)
            worst = max(worst, path)
        return worst

    def writeback(self, src: int, home: int) -> int:
        """Latency of pushing a dirty or clean block down to the home L2."""
        return self.network(src, home) + self._config.directory_latency

"""Interconnect model: a 2-D torus with fixed per-hop latency (Figure 6)."""

from .topology import TorusTopology
from .latency import LatencyModel

__all__ = ["TorusTopology", "LatencyModel"]

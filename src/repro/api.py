"""The public API facade: the blessed programmatic entry points.

Service and script consumers should import from here (or from the
package root, which re-exports this module) rather than reaching into
``repro.campaign.executor`` / ``repro.studies.runner`` internals, whose
layout may change between releases.  Four entry points cover the common
shapes:

:func:`simulate`
    one cell -- a workload (name, spec, or prebuilt trace) under a
    machine configuration (name or :class:`~repro.config.SystemConfig`),
    optionally served through a result cache;
:func:`run_study`
    one registered (or ad-hoc) study end to end, returning its result
    object;
:func:`execute_plan`
    many studies compiled into one deduplicated campaign plan, executed
    through a shared executor/cache -- the bulk entry point the CLI's
    ``study run`` and the service layer queue cold jobs through;
:func:`open_cache`
    a result cache from a ``dir://`` / ``sqlite://`` URL (with optional
    ``?shards=N``), a bare path, or ``None`` for the default local
    directory.

Example::

    from repro import execute_plan, open_cache, simulate

    # One cell, cached across calls:
    result = simulate("invisi_sc", "apache", cores=8, ops=4000,
                      cache=open_cache("sqlite://results/cache.sqlite"))

    # Ten studies, one deduplicated plan, sqlite-backed:
    execution = execute_plan(["figure8", "figure9"], jobs=4,
                             cache="sqlite://results/cache.sqlite")
    print(execution.result("figure8").format())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from .campaign.backends import CacheBackend
from .campaign.cache import ResultCache, cache_key
from .campaign.executor import CampaignReport
from .campaign.registry import DEFAULT_REGISTRY
from .config import SystemConfig
from .engine.results import RunResult
from .engine.simulator import simulate as _engine_simulate
from .obs.recorder import Recorder
from .trace.trace import MultiThreadedTrace
from .workloads.registry import build_trace, resolve_spec

__all__ = [
    "PlanExecution",
    "compile_study_plan",
    "execute_plan",
    "open_cache",
    "run_study",
    "simulate",
]

#: Anything :func:`open_cache` accepts.
CacheLike = Union[None, str, "ResultCache", CacheBackend]


def open_cache(cache: CacheLike = None) -> ResultCache:
    """Open (or pass through) a result cache.

    * ``None`` -- the default local directory (``results/cache/``);
    * a string or path -- a cache URL (``dir://path``, ``sqlite://file``,
      either with ``?shards=N``) or a bare directory path;
    * a :class:`~repro.campaign.backends.CacheBackend` -- wrapped;
    * a :class:`~repro.campaign.cache.ResultCache` -- returned unchanged.
    """
    if cache is None:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, CacheBackend):
        return ResultCache(backend=cache)
    return ResultCache.from_url(cache)


def _open_optional(cache: CacheLike) -> Optional[ResultCache]:
    """Like :func:`open_cache`, but ``None`` stays ``None`` (no cache)."""
    return None if cache is None else open_cache(cache)


def simulate(config: Union[str, SystemConfig],
             workload: Union[str, object, MultiThreadedTrace],
             max_events: Optional[int] = None,
             warmup_fraction: float = 0.0, engine: str = "fast",
             recorder: Optional[Recorder] = None, *,
             cores: int = 8, ops: int = 4000, seed: int = 1,
             cache: CacheLike = None) -> RunResult:
    """Simulate one (configuration, workload) cell.

    ``config`` is a registered short-name (``"sc"``, ``"invisi_sc"``,
    ...) or an explicit :class:`SystemConfig`.  ``workload`` is a
    workload preset or scenario name, a spec object, or a prebuilt
    :class:`MultiThreadedTrace`; names and specs are expanded to a trace
    at ``cores`` threads and ``ops`` operations per thread with generator
    ``seed``.  With a trace, the call is exactly the engine-level
    ``simulate(config, trace, ...)`` -- existing call sites are
    unaffected -- and ``cores``/``ops``/``seed``/``cache`` do not apply
    (traces carry their own shape, and content-addressed caching needs
    the generating spec).

    With ``cache`` set (anything :func:`open_cache` accepts), the cell is
    served from the cache when present and written back when simulated --
    the one-cell equivalent of a campaign.
    """
    if isinstance(workload, MultiThreadedTrace):
        if isinstance(config, str):
            from .experiments.common import ExperimentSettings

            config = DEFAULT_REGISTRY.make(
                config, ExperimentSettings(
                    num_cores=workload.num_threads,
                    ops_per_thread=max(1, workload.total_ops()
                                       // workload.num_threads)))
        return _engine_simulate(config, workload, max_events=max_events,
                                warmup_fraction=warmup_fraction,
                                engine=engine, recorder=recorder)

    from .experiments.common import ExperimentSettings

    settings = ExperimentSettings(num_cores=cores, ops_per_thread=ops,
                                  seeds=(seed,),
                                  warmup_fraction=warmup_fraction)
    if isinstance(config, str):
        config = DEFAULT_REGISTRY.make(config, settings)
    spec = resolve_spec(workload, ops)
    store = _open_optional(cache)
    key = None
    if store is not None:
        key = cache_key(config, spec, seed, warmup_fraction)
        cached = store.get(key)
        if cached is not None:
            return cached
    trace = build_trace(spec, num_threads=config.num_cores, seed=seed)
    result = _engine_simulate(config, trace, max_events=max_events,
                              warmup_fraction=warmup_fraction,
                              engine=engine, recorder=recorder)
    if store is not None and key is not None:
        store.put(key, result)
    return result


def run_study(study, settings=None, *, jobs: int = 1,
              cache: CacheLike = None, engine: str = "fast",
              out_dir=None, recorder: Optional[Recorder] = None,
              runner=None, study_runner=None):
    """Execute one study end to end; returns its result object.

    A thin wrapper over :func:`repro.studies.runner.run_study` that also
    accepts cache URLs; see that function for the sharing semantics of
    ``runner``/``study_runner``.
    """
    from .studies.runner import run_study as _run_study

    return _run_study(study, settings, runner=runner,
                      study_runner=study_runner, jobs=jobs,
                      cache=_open_optional(cache), out_dir=out_dir,
                      engine=engine, recorder=recorder)


@dataclass
class PlanExecution:
    """An executed study plan: the report plus lazily built results."""

    plan: Any
    runner: Any
    #: what the campaign actually did for the whole plan.
    report: CampaignReport
    _results: Dict[str, Any] = field(default_factory=dict)

    @property
    def cache(self) -> Optional[ResultCache]:
        return self.runner.cache

    def names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.plan.specs)

    def result(self, name: str):
        """The named study's result object (built once, memoized)."""
        if name not in self._results:
            spec = next(s for s in self.plan.specs if s.name == name)
            self._results[name] = run_study(spec, self.plan.settings,
                                            study_runner=self.runner)
        return self._results[name]

    def results(self) -> Dict[str, Any]:
        """Every study's result object, in plan order."""
        return {name: self.result(name) for name in self.names()}

    def describe(self) -> str:
        return f"{self.plan.describe()}; {self.report.describe(self.cache)}"


def execute_plan(studies: Union[str, Iterable], settings=None, *,
                 jobs: int = 1, cache: CacheLike = None,
                 engine: str = "fast",
                 recorder: Optional[Recorder] = None) -> PlanExecution:
    """Compile ``studies`` into one deduplicated plan and execute it.

    ``studies`` is a study name, an iterable of names and/or
    :class:`~repro.studies.spec.StudySpec` objects, or ``"*"`` for every
    registered study.  Shared cells (e.g. a common baseline) are
    simulated exactly once; missing cells fan out over ``jobs`` worker
    processes and persist in ``cache`` (anything :func:`open_cache`
    accepts -- pass a shared ``sqlite://`` URL to cooperate with
    ``repro worker`` processes draining the same plan).
    """
    plan = compile_study_plan(studies, settings)
    runner = plan.runner(jobs=jobs, cache=_open_optional(cache),
                         engine=engine, recorder=recorder)
    report = plan.execute(runner)
    return PlanExecution(plan=plan, runner=runner, report=report)


def compile_study_plan(studies: Union[str, Iterable], settings=None):
    """Compile (without executing) the deduplicated plan for ``studies``.

    The shared front half of :func:`execute_plan`; ``repro worker`` uses
    it so every worker process derives the identical plan -- and thus the
    identical content-addressed keys -- from the study names alone.
    """
    import repro.experiments  # noqa: F401  (imports register the studies)

    from .studies.plan import compile_plan
    from .studies.registry import DEFAULT_STUDY_REGISTRY
    from .studies.spec import StudySpec

    if isinstance(studies, str):
        studies = (DEFAULT_STUDY_REGISTRY.specs() if studies == "*"
                   else (studies,))
    specs = tuple(spec if isinstance(spec, StudySpec)
                  else DEFAULT_STUDY_REGISTRY.get(spec) for spec in studies)
    if settings is None:
        from .experiments.common import ExperimentSettings

        settings = ExperimentSettings()
    return compile_plan(specs, settings)

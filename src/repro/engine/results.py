"""Simulation results and aggregation helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import SystemConfig
from ..cpu.stats import BREAKDOWN_COMPONENTS, CoreStats


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    config: SystemConfig
    workload: str
    core_stats: List[CoreStats]
    #: total runtime in cycles (time at which the last core finished).
    runtime: int
    #: number of events processed (engine diagnostic).
    events_processed: int = 0
    seed: Optional[int] = None

    # -- aggregate views -----------------------------------------------------

    def aggregate(self) -> CoreStats:
        """Sum of all per-core counters."""
        total = CoreStats()
        for stats in self.core_stats:
            total.merge(stats)
        return total

    def breakdown(self, normalize: bool = False) -> Dict[str, float]:
        """Cycle breakdown summed over cores, optionally as fractions."""
        total = self.aggregate()
        values = {name: float(getattr(total, name)) for name in BREAKDOWN_COMPONENTS}
        if normalize:
            denom = sum(values.values())
            if denom > 0:
                values = {k: v / denom for k, v in values.items()}
        return values

    def cycles_per_core(self) -> float:
        """Average accounted cycles per core (a runtime proxy that is
        insensitive to end-of-trace idling on non-critical cores)."""
        if not self.core_stats:
            return 0.0
        return sum(s.total_accounted() for s in self.core_stats) / len(self.core_stats)

    def ordering_stall_fraction(self) -> float:
        """Fraction of accounted cycles lost to memory ordering (Figure 1)."""
        total = self.aggregate()
        accounted = total.total_accounted()
        if accounted == 0:
            return 0.0
        return total.ordering_stall_cycles() / accounted

    def speculation_fraction(self) -> float:
        """Fraction of accounted cycles spent speculating (Figure 10)."""
        total = self.aggregate()
        accounted = total.total_accounted()
        if accounted == 0:
            return 0.0
        return min(1.0, total.spec_cycles / accounted)

    def speedup_over(self, baseline: "RunResult") -> float:
        """Speedup of this run relative to ``baseline`` (same workload)."""
        if self.cycles_per_core() == 0:
            return 0.0
        return baseline.cycles_per_core() / self.cycles_per_core()

    def summary(self) -> Dict[str, float]:
        """Flat summary used by reports and benchmark assertions."""
        total = self.aggregate()
        out: Dict[str, float] = {
            "runtime": float(self.runtime),
            "cycles_per_core": self.cycles_per_core(),
            "ordering_stall_fraction": self.ordering_stall_fraction(),
            "speculation_fraction": self.speculation_fraction(),
            "commits": float(total.commits),
            "aborts": float(total.aborts),
            "speculations": float(total.speculations),
        }
        out.update({name: float(getattr(total, name)) for name in BREAKDOWN_COMPONENTS})
        return out


def aggregate_breakdown(results: List[RunResult],
                        normalize_to: Optional[RunResult] = None) -> Dict[str, float]:
    """Average the breakdowns of several runs (e.g. different seeds).

    When ``normalize_to`` is given, each component is expressed as a
    fraction of that run's total accounted cycles (the paper's
    "% of cycles normalised to sc" presentation).
    """
    if not results:
        return {name: 0.0 for name in BREAKDOWN_COMPONENTS}
    denom = None
    if normalize_to is not None:
        denom = sum(normalize_to.breakdown().values())
    combined: Dict[str, float] = {name: 0.0 for name in BREAKDOWN_COMPONENTS}
    for result in results:
        values = result.breakdown()
        scale = denom if denom else sum(values.values())
        for name in BREAKDOWN_COMPONENTS:
            combined[name] += (values[name] / scale) if scale else 0.0
    return {name: value / len(results) for name, value in combined.items()}

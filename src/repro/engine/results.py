"""Simulation results, aggregation helpers, and JSON (de)serialization.

:class:`RunResult` is immutable once built so that results can be shared
freely across processes and cached on disk without defensive copying; the
``to_dict``/``from_dict`` pair (and the ``to_json``/``from_json`` string
forms) is the wire format used by the campaign result cache.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..config import SystemConfig
from ..cpu.stats import BREAKDOWN_COMPONENTS, CoreStats

#: Version stamp embedded in serialized results; bump on any change to the
#: :class:`RunResult`/:class:`CoreStats` wire format so stale cache entries
#: are treated as misses rather than misread.
#: v2: per-phase stall attribution (``phase_names``/``phase_stats``).
RESULT_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulation run (immutable once constructed)."""

    config: SystemConfig
    workload: str
    core_stats: List[CoreStats]
    #: total runtime in cycles (time at which the last core finished).
    runtime: int
    #: number of events processed (engine diagnostic).
    events_processed: int = 0
    seed: Optional[int] = None
    #: phase labels, in order, for phase-structured (scenario) runs.
    phase_names: Optional[Tuple[str, ...]] = None
    #: per-phase, per-core counter deltas: ``phase_stats[phase][core]``.
    phase_stats: Optional[List[List[CoreStats]]] = None

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form suitable for ``json.dumps``."""
        data: Dict[str, Any] = {
            "schema": RESULT_SCHEMA_VERSION,
            "config": self.config.to_dict(),
            "workload": self.workload,
            "core_stats": [stats.to_dict() for stats in self.core_stats],
            "runtime": self.runtime,
            "events_processed": self.events_processed,
            "seed": self.seed,
        }
        if self.phase_names is not None:
            data["phase_names"] = list(self.phase_names)
            data["phase_stats"] = [[stats.to_dict() for stats in cores]
                                   for cores in self.phase_stats or []]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        schema = data.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema {schema!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        phase_names = data.get("phase_names")
        phase_stats = data.get("phase_stats")
        return cls(
            config=SystemConfig.from_dict(data["config"]),
            workload=data["workload"],
            core_stats=[CoreStats.from_dict(d) for d in data["core_stats"]],
            runtime=data["runtime"],
            events_processed=data.get("events_processed", 0),
            seed=data.get("seed"),
            phase_names=tuple(phase_names) if phase_names is not None else None,
            phase_stats=[[CoreStats.from_dict(d) for d in cores]
                         for cores in phase_stats]
            if phase_stats is not None else None,
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))

    # -- aggregate views -----------------------------------------------------

    def aggregate(self) -> CoreStats:
        """Sum of all per-core counters."""
        total = CoreStats()
        for stats in self.core_stats:
            total.merge(stats)
        return total

    def breakdown(self, normalize: bool = False) -> Dict[str, float]:
        """Cycle breakdown summed over cores, optionally as fractions."""
        total = self.aggregate()
        values = {name: float(getattr(total, name)) for name in BREAKDOWN_COMPONENTS}
        if normalize:
            denom = sum(values.values())
            if denom > 0:
                values = {k: v / denom for k, v in values.items()}
        return values

    def cycles_per_core(self) -> float:
        """Average accounted cycles per core (a runtime proxy that is
        insensitive to end-of-trace idling on non-critical cores)."""
        if not self.core_stats:
            return 0.0
        return sum(s.total_accounted() for s in self.core_stats) / len(self.core_stats)

    def ordering_stall_fraction(self) -> float:
        """Fraction of accounted cycles lost to memory ordering (Figure 1)."""
        total = self.aggregate()
        accounted = total.total_accounted()
        if accounted == 0:
            return 0.0
        return total.ordering_stall_cycles() / accounted

    def speculation_fraction(self) -> float:
        """Fraction of accounted cycles spent speculating (Figure 10)."""
        total = self.aggregate()
        accounted = total.total_accounted()
        if accounted == 0:
            return 0.0
        return min(1.0, total.spec_cycles / accounted)

    def speedup_over(self, baseline: "RunResult") -> float:
        """Speedup of this run relative to ``baseline`` (same workload)."""
        if self.cycles_per_core() == 0:
            return 0.0
        return baseline.cycles_per_core() / self.cycles_per_core()

    def summary(self) -> Dict[str, float]:
        """Flat summary used by reports and benchmark assertions."""
        total = self.aggregate()
        out: Dict[str, float] = {
            "runtime": float(self.runtime),
            "cycles_per_core": self.cycles_per_core(),
            "ordering_stall_fraction": self.ordering_stall_fraction(),
            "speculation_fraction": self.speculation_fraction(),
            "commits": float(total.commits),
            "aborts": float(total.aborts),
            "speculations": float(total.speculations),
        }
        out.update({name: float(getattr(total, name)) for name in BREAKDOWN_COMPONENTS})
        return out


def aggregate_breakdown(results: List[RunResult],
                        normalize_to: Optional[RunResult] = None) -> Dict[str, float]:
    """Average the breakdowns of several runs (e.g. different seeds).

    When ``normalize_to`` is given, each component is expressed as a
    fraction of that run's total accounted cycles (the paper's
    "% of cycles normalised to sc" presentation).
    """
    if not results:
        return {name: 0.0 for name in BREAKDOWN_COMPONENTS}
    denom = None
    if normalize_to is not None:
        denom = sum(normalize_to.breakdown().values())
    combined: Dict[str, float] = {name: 0.0 for name in BREAKDOWN_COMPONENTS}
    for result in results:
        values = result.breakdown()
        scale = denom if denom else sum(values.values())
        for name in BREAKDOWN_COMPONENTS:
            combined[name] += (values[name] / scale) if scale else 0.0
    return {name: value / len(results) for name, value in combined.items()}

"""System construction: wire cores, controllers, and the memory system.

:func:`build_system` assembles a complete simulated machine from a
:class:`~repro.config.SystemConfig` and a multi-threaded trace, choosing
the consistency controller implied by the configuration's speculation
mode:

==============  =====================================================
Speculation     Controller
==============  =====================================================
``none``        conventional SC / TSO / RMO (Section 2.1)
``selective``   :class:`repro.core.selective.InvisiFenceSelective`
``continuous``  :class:`repro.core.continuous.InvisiFenceContinuous`
``aso``         :class:`repro.aso.controller.ASOController`
==============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..aso.controller import ASOController
from ..coherence.memory_system import MemorySystem
from ..config import SpeculationMode, SystemConfig
from ..consistency.base import ConsistencyController
from ..consistency.conventional import conventional_controller
from ..core.continuous import InvisiFenceContinuous
from ..core.selective import InvisiFenceSelective
from ..cpu.core import Core
from ..errors import ConfigurationError
from ..obs.recorder import Recorder, active
from ..trace.trace import MultiThreadedTrace
from .events import EventQueue


def make_controller(core: Core) -> ConsistencyController:
    """Instantiate the controller selected by the core's configuration."""
    mode = core.config.speculation.mode
    if mode is SpeculationMode.NONE:
        return conventional_controller(core)
    if mode is SpeculationMode.SELECTIVE:
        return InvisiFenceSelective(core)
    if mode is SpeculationMode.CONTINUOUS:
        return InvisiFenceContinuous(core)
    if mode is SpeculationMode.ASO:
        return ASOController(core)
    raise ConfigurationError(f"unknown speculation mode {mode}")  # pragma: no cover


@dataclass
class System:
    """A fully wired simulated machine."""

    config: SystemConfig
    events: EventQueue
    memory: MemorySystem
    cores: List[Core]
    workload_name: str = "anonymous"
    #: phase labels for phase-structured traces (scenario runs).
    phase_names: Optional[Tuple[str, ...]] = None
    #: the *active* recorder wired through every component, or ``None``
    #: when telemetry is off (see :mod:`repro.obs`).
    recorder: Optional[Recorder] = None

    def start(self) -> None:
        """Schedule the first step of every core."""
        for core in self.cores:
            core.start(at=0)

    @property
    def finished(self) -> bool:
        return all(core.finished for core in self.cores)

    def finish_time(self) -> int:
        return max((core.finish_time or 0) for core in self.cores)


#: Engine variants accepted by :func:`build_system`.  ``"fast"`` is the
#: compiled/batched kernel; ``"reference"`` retains the original
#: one-event-per-op, allocation-per-outcome execution path and exists so the
#: differential suite can prove the fast path bitwise-equivalent;
#: ``"batch"`` layers vectorized quiescent-stretch retirement on top of the
#: fast kernel (see :mod:`repro.engine.batch`) and is likewise proven
#: byte-identical.
ENGINE_KINDS = ("fast", "reference", "batch")


def validate_engine(engine: str) -> str:
    """Check ``engine`` against :data:`ENGINE_KINDS`; return it unchanged.

    Raised eagerly by every entry point that accepts an engine name
    (``simulate``, ``build_system``, the campaign executor, the CLI) so
    an unknown name fails with one clear message instead of falling
    through to a partially-wired system.
    """
    if engine not in ENGINE_KINDS:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of "
            + "|".join(ENGINE_KINDS)
        )
    return engine


def build_system(config: SystemConfig, trace: MultiThreadedTrace,
                 warmup_fraction: float = 0.0, engine: str = "fast",
                 lane=None, recorder: Optional[Recorder] = None) -> System:
    """Build a system running ``trace`` under ``config``.

    The trace must provide at least as many threads as the configuration
    has cores; extra threads are ignored (with fewer threads than cores,
    the surplus cores simply stay idle).  ``warmup_fraction`` of each
    thread's leading operations are executed but excluded from the
    statistics (cache warmup).  ``engine`` selects the execution kernel
    (see :data:`ENGINE_KINDS`); all kernels produce identical results.

    ``lane`` is internal plumbing for :func:`repro.engine.batch.lanes.
    simulate_batch`: a ``(LaneProfiles, run_index)`` pair reusing a
    profile stack already built for a whole group of runs.

    ``recorder`` attaches the observability layer: hooks throughout the
    stack record speculation episodes, stall spans, coherence events, and
    batch-engine decisions into it.  ``None`` or a disabled recorder
    leaves every hook behind its single ``is not None`` check; recorders
    only observe, so results are byte-identical either way.
    """
    if trace.num_threads < config.num_cores:
        raise ConfigurationError(
            f"workload {trace.name!r} has {trace.num_threads} threads but the "
            f"system is configured with {config.num_cores} cores"
        )
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError("warmup_fraction must lie in [0, 1)")
    validate_engine(engine)
    rec = active(recorder)
    batch = engine == "batch"
    fast = engine != "reference"
    profiles = run_index = None
    if batch:
        # Imported here: the batch package's lane bridge imports this
        # module back, so a module-scope import would be circular.
        from .batch.core import BatchCore
        from .batch.epochs import EpochTracker
        from .batch.profile import build_lane_profiles
        if lane is not None:
            profiles, run_index = lane
        else:
            profiles = build_lane_profiles(config, [trace])
            run_index = 0
    events = EventQueue()
    memory = MemorySystem(config, fast_path=fast, recorder=rec)
    epochs = None
    if profiles is not None:
        memory.set_state_watcher(profiles.make_watcher(run_index))
        if config.num_cores > 1:
            # Multicore bulk advance: one epoch tracker per run computes
            # cross-core quiescence horizons from the residency mirrors;
            # every directory transaction invalidates its cached bounds.
            epochs = EpochTracker()
            memory.set_transaction_watcher(epochs.on_transaction)
    cores: List[Core] = []
    phase_bounds = trace.phase_bounds
    for core_id in range(config.num_cores):
        thread_trace = trace[core_id]
        warmup_ops = int(len(thread_trace) * warmup_fraction)
        if profiles is not None:
            core: Core = BatchCore(
                core_id, thread_trace, config, memory, events,
                warmup_ops=warmup_ops, phase_bounds=phase_bounds,
                profile=profiles.row_profile(run_index, core_id),
                epochs=epochs)
            if epochs is not None:
                epochs.register(core)
        else:
            core = Core(core_id, thread_trace, config, memory, events,
                        warmup_ops=warmup_ops, phase_bounds=phase_bounds,
                        batching=fast)
        core.obs = rec
        controller = make_controller(core)
        core.attach_controller(controller)
        cores.append(core)
    return System(config=config, events=events, memory=memory, cores=cores,
                  workload_name=trace.name, phase_names=trace.phase_names,
                  recorder=rec)

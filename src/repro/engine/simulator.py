"""Simulation driver."""

from __future__ import annotations

from typing import Optional

from ..config import SystemConfig
from ..errors import SimulationError
from ..obs.recorder import Recorder
from ..trace.trace import MultiThreadedTrace
from .results import RunResult
from .system import System, build_system, validate_engine

#: Hard cap on processed events, as a runaway-simulation backstop.  The cap
#: scales with trace size inside :class:`Simulator`.  It is generous because
#: continuous speculation under heavy contention can replay the same
#: operations many times before making progress.
_EVENTS_PER_OP_LIMIT = 512


class Simulator:
    """Runs a :class:`~repro.engine.system.System` to completion."""

    def __init__(self, system: System) -> None:
        self.system = system

    def run(self, max_events: Optional[int] = None,
            seed: Optional[int] = None) -> RunResult:
        """Run until every core has finished its trace.

        ``seed`` is the workload generator seed recorded in the result;
        :class:`RunResult` is immutable, so it must be supplied here rather
        than patched on afterwards.
        """
        system = self.system
        if max_events is None:
            total_ops = sum(len(core.trace) for core in system.cores)
            max_events = max(10_000, _EVENTS_PER_OP_LIMIT * total_ops)
        system.start()
        processed = 0
        while not system.finished:
            count = system.events.run(max_events=max_events - processed)
            processed += count
            if system.finished:
                break
            if count == 0 or processed >= max_events:
                unfinished = [c.core_id for c in system.cores if not c.finished]
                raise SimulationError(
                    f"simulation stalled with cores {unfinished} unfinished "
                    f"after {processed} events"
                )
        if system.recorder is not None:
            collect_run_gauges(system, system.recorder)
        phase_names = system.phase_names
        phase_stats = None
        if phase_names:
            per_core = [core.phase_stats() for core in system.cores]
            phase_stats = [[core_phases[p] for core_phases in per_core]
                           for p in range(len(phase_names))]
        return RunResult(
            config=system.config,
            workload=system.workload_name,
            core_stats=[core.stats for core in system.cores],
            runtime=system.finish_time(),
            events_processed=processed,
            seed=seed,
            phase_names=phase_names,
            phase_stats=phase_stats,
        )


def collect_run_gauges(system: System, rec: Recorder) -> None:
    """Fold a finished run's end-of-run gauges into the recorder.

    Store-buffer high-water marks and the memory system's per-core tallies
    are plain attributes maintained unconditionally; collecting them once
    at run end keeps them out of the hot paths entirely.
    """
    for core in system.cores:
        controller = core.controller
        if controller is None:
            continue
        sb = controller.sb
        rec.observe("sb.peak_occupancy", sb.peak_occupancy)
        rec.count("sb.inserted", sb.total_inserted)
        rec.count("sb.flash_invalidated", sb.flash_invalidated)
        coalesced = getattr(sb, "coalesced", 0)
        if coalesced:
            rec.count("sb.coalesced", coalesced)
    memory = system.memory
    rec.count("coherence.l1_hits", sum(memory.l1_hits))
    rec.count("coherence.l1_misses", sum(memory.l1_misses))
    rec.count("coherence.upgrades", sum(memory.upgrades))
    rec.count("coherence.conflicts", memory.conflicts_detected)


def simulate(config: SystemConfig, trace: MultiThreadedTrace,
             max_events: Optional[int] = None,
             warmup_fraction: float = 0.0, engine: str = "fast",
             recorder: Optional[Recorder] = None) -> RunResult:
    """Convenience wrapper: build a system for ``trace`` and run it.

    ``engine`` selects the execution kernel: ``"fast"`` (compiled traces,
    batched steps, allocation-free hit path), ``"reference"`` (the
    original one-event-per-op path), or ``"batch"`` (vectorized
    quiescent-stretch retirement on top of the fast kernel).  Results are
    bitwise identical across all three; an unknown name raises
    :class:`~repro.errors.ConfigurationError` naming the valid engines.
    """
    validate_engine(engine)
    system = build_system(config, trace, warmup_fraction=warmup_fraction,
                          engine=engine, recorder=recorder)
    return Simulator(system).run(max_events=max_events, seed=trace.seed)

"""The batch core: bulk retirement of quiescent stretches.

:class:`BatchCore` extends the fast kernel's run-until-interesting loop
(:meth:`repro.cpu.core.Core._step_fast`) with one extra move: before
processing the op at the current index through the controller, it tries
to retire a whole *stretch* of upcoming ops as array operations.

A stretch is sound exactly when, op by op, the exact kernel would have
taken nothing but its constant-latency hit paths.  The preconditions:

* the store buffer is empty at stretch entry (O(1) ``is_empty``);
* every op up to the stretch end is a COMPUTE, a FENCE, a LOAD whose
  block is resident in any valid state, or a STORE whose block is held
  MODIFIED/EXCLUSIVE -- checked by one gather against the lane's packed
  residency table, which coherence keeps fresh via the memory system's
  state watcher;
* no ATOMIC (those drain/stall by rule), no trace end, no warmup or
  phase boundary, no inline-budget exhaustion inside the stretch;
* the FIFO store buffer never fills inside the stretch (vectorized
  occupancy check over the stretch's store times);
* every op but the last finishes strictly before the next pending heap
  event -- the same exactness condition the fast kernel applies per op,
  found here with one ``searchsorted`` over the stretch's finish times.

Everything the exact kernel would have mutated is then committed in
closed form: counter deltas from prefix-sum differences, the event
queue's clock/processed count via ``note_inline_bulk``, LRU timestamps
from last-touch positions, stored blocks to MODIFIED/dirty, and the FIFO
buffer's physical entry list rebuilt to exactly what purge-on-insert
would have left.  If any precondition fails the op is handed to the
controller unchanged, so every interesting event (miss, upgrade,
SB-full, atomic, trace end) runs the exact fast kernel.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...memory.block import CoherenceState
from ...config import SystemConfig
from ...cpu.core import _MAX_INLINE_BATCH, Core
from ...cpu.store_buffer import StoreBufferEntry
from ...errors import SimulationError
from ...trace.trace import Trace
from .profile import RowProfile

#: Below this many ops, fixed numpy overhead beats the saved per-op work;
#: the exact kernel is used instead.  Correctness never depends on this.
_MIN_STRETCH = 4
#: Cap on ops examined per bulk attempt; longer runs simply take another
#: bulk step on the next loop iteration.
_MAX_STRETCH = 512
#: Adaptive opt-out: after this many bulk attempts, a core whose mean
#: retired-ops-per-attempt is below :data:`_MIN_GAIN` stops attempting
#: and runs the plain fast kernel.  Cores in lockstep leapfrog (dense
#: multicore event traffic) have tiny quiescent windows, and the attempt
#: overhead would otherwise swamp the savings.  Purely local and
#: deterministic, so results stay independent of lane width and order.
_ADAPT_ATTEMPTS = 128
_MIN_GAIN = 6


class BatchCore(Core):
    """A core that retires quiescent stretches as numpy array ops."""

    def __init__(self, core_id: int, trace: Trace, config: SystemConfig,
                 mem, events, warmup_ops: int = 0,
                 phase_bounds: Optional[Sequence[int]] = None,
                 profile: Optional[RowProfile] = None) -> None:
        super().__init__(core_id, trace, config, mem, events,
                         warmup_ops=warmup_ops, phase_bounds=phase_bounds,
                         batching=True)
        self._bp = profile
        self._bulk_tries = 0
        self._bulk_gain = 0

    def _step_fast(self, now: int, generation: int) -> None:
        """The fast kernel loop with a bulk attempt before each exact op."""
        if generation != self._generation or self._finished:
            return
        assert self.controller is not None
        process_op = self.controller.process_op
        events = self.events
        ops = self._ops
        weights = self._instr_weights
        trace_len = self._trace_len
        stats = self.stats
        budget = _MAX_INLINE_BATCH
        cool = -1
        bp = self._bp
        obs = self.obs
        if bp is not None and bp.length != trace_len:
            # The trace was mutated after the lane stack was built; the
            # static tables no longer line up, so run purely exact.
            bp = self._bp = None
            if obs is not None:
                obs.count("batch.optout.stale-profile")
        while True:
            if not self._warmup_done or self._next_bound < len(self._inner_bounds):
                self._pre_op()
            index = self._index
            if index >= trace_len:
                wake = self._handle_trace_end(now)
                if wake is None:
                    return
                head = events.next_time()
                budget -= 1
                limit = events.run_until
                if budget > 0 and (head is None or head > wake) \
                        and (limit is None or wake <= limit):
                    events.note_inline(wake)
                    now = wake
                    continue
                self._schedule_step(wake)
                return
            if bp is not None and budget >= _MIN_STRETCH and index >= cool:
                bulk = self._bulk_advance(bp, index, now, budget)
                tries = self._bulk_tries + 1
                self._bulk_tries = tries
                if bulk.__class__ is tuple:
                    count, last, prev_last, head = bulk
                    self._bulk_gain += count
                    budget -= count
                    limit = events.run_until
                    if budget > 0 and (head is None or head > last) \
                            and (limit is None or last <= limit):
                        events.note_inline_bulk(last, count)
                        now = last
                        continue
                    # The final op of the stretch hit the same boundary the
                    # exact loop would have: account the first count-1 ops
                    # inline and schedule the next step, exactly as the
                    # per-op path does after processing the final op.
                    events.note_inline_bulk(prev_last, count - 1)
                    self._schedule_step(last)
                    return
                else:
                    # Declined: the returned index is how far the decline
                    # reason is pinned for the rest of this inline chain
                    # (the heap head and residency only change across
                    # chain boundaries), so skip futile re-attempts.
                    cool = bulk
                    if tries >= _ADAPT_ATTEMPTS \
                            and self._bulk_gain < tries * _MIN_GAIN:
                        bp = self._bp = None
                        if obs is not None:
                            obs.count("batch.optout.adaptive")
                            obs.sim_instant(
                                self.core_id, "batch.optout", now,
                                {"tries": tries, "gain": self._bulk_gain})
            finish = process_op(ops[index], now)
            if finish < now:
                raise SimulationError(
                    f"controller returned a finish time in the past on core {self.core_id}"
                )
            self._index = index + 1
            stats.instructions += weights[index]
            heap = events._heap
            if heap:
                head_event = heap[0]
                head = events.next_time() if head_event.cancelled \
                    else head_event.time
            else:
                head = None
            budget -= 1
            limit = events.run_until
            if budget > 0 and (head is None or head > finish) \
                    and (limit is None or finish <= limit):
                events.note_inline(finish)
                now = finish
                continue
            self._schedule_step(finish)
            return

    def _bulk_advance(self, bp: RowProfile, k: int, now: int, budget: int):
        """Try to retire a stretch starting at trace index ``k``.

        Returns ``(count, last_finish, prev_finish, head)`` after applying
        all side effects.  On decline it returns an *int*: the first trace
        index at which re-attempting could succeed within the current
        inline chain (the caller processes ops through the exact kernel
        and skips bulk attempts until then).
        """
        obs = self.obs
        # Static caps: next atomic (or padded trace end), warmup boundary,
        # next phase boundary, the inline budget, and the attempt cap.
        end = int(bp.next_break[k])
        if not self._warmup_done and self.warmup_ops < end:
            end = self.warmup_ops
        next_bound = self._next_bound
        if next_bound < len(self._inner_bounds):
            bound = self._inner_bounds[next_bound]
            if bound < end:
                end = bound
        count = end - k
        if count < _MIN_STRETCH:
            if obs is not None:
                obs.count("batch.decline.short")
            return end
        if count > budget:
            count = budget
        if count > _MAX_STRETCH:
            count = _MAX_STRETCH

        b0 = bp.B0
        base = now - int(b0[k])

        # Stale store-buffer entries.  They are invisible to the stretch
        # unless some op *observes* the buffer: a drain waits for their
        # release (an extra stall ``delta`` that shifts every later op
        # uniformly, leaving the in-stretch stall algebra intact), and a
        # store must not insert before they have all released (purge
        # order, FIFO release monotonicity, occupancy).
        controller = self.controller
        sb = controller.sb
        delta = 0
        obs_rel = 0
        stale = sb._max_release
        if stale > now:
            if not bp.fifo:
                # Coalescing entries coalesce with same-block stores; wait
                # for the buffer to empty rather than model that.
                if obs is not None:
                    obs.count("batch.decline.coalescing-sb")
                return k + 1
            next_obs = int(bp.next_obs[k])
            if next_obs < k + count:
                t_obs = int(b0[next_obs]) + base
                if t_obs < stale:
                    if bp.is_store[next_obs]:
                        count = next_obs - k
                        if count < _MIN_STRETCH:
                            if obs is not None:
                                obs.count("batch.decline.stale-sb")
                            return k + 1
                    else:
                        delta = stale - t_obs
                        obs_rel = next_obs - k

        events = self.events
        heap = events._heap
        if heap:
            head_event = heap[0]
            head = events.next_time() if head_event.cancelled \
                else head_event.time
        else:
            head = None
        limit = events.run_until

        # Cheap pre-cap before any gather: ``B0 + base`` is a lower bound
        # on every finish time (stalls and ``delta`` only add), so a
        # searchsorted over the static prefix bounds the feasible count.
        if head is not None:
            cap = int(b0[k + 1:k + count + 1].searchsorted(
                head - base, side="left")) + 1
            if cap < count:
                count = cap
            if count < _MIN_STRETCH:
                # The head is fixed for the rest of this inline chain, and
                # finish times only grow as the chain advances toward it.
                if obs is not None:
                    obs.count("batch.decline.head-cap")
                return bp.length

        # Residency: every load hits, every store has write permission.
        # Only memory ops carry a requirement, so the gather runs over the
        # packed per-row memory-op index (window selection by binary
        # search over views, no boolean-mask copies).
        j = k + count
        mem_pos = bp.mem_pos
        lo = int(mem_pos.searchsorted(k))
        hi = int(mem_pos.searchsorted(j))
        if lo < hi:
            ok = bp.res[bp.mem_ids[lo:hi]] >= bp.mem_need[lo:hi]
            if not ok.all():
                bad = int(mem_pos[lo + int((~ok).argmax())])
                count = bad - k
                if count < _MIN_STRETCH:
                    # Residency only changes across chain boundaries (our
                    # own hits preserve state; misses break the chain).
                    if obs is not None:
                        obs.count("batch.decline.residency")
                    return bad + 1
                j = k + count
                hi = int(mem_pos.searchsorted(j))

        # Finish times: durations plus real drain stalls.  Stalls whose
        # referenced store precedes the stretch are bogus (the buffer is
        # empty, or covered by ``delta``, at entry) and are clipped away
        # against the S0 prefix at the first in-stretch store.  The finish
        # of op ``k+i`` is ``base + B0[k+1+i] + max(0, S0[k+1+i] -
        # stall_ref) (+ delta past the observing drain)``; it is needed in
        # full only when the next heap event or the run horizon actually
        # truncates the stretch -- otherwise two scalars suffice.
        s0 = bp.S0
        has_stalls = bp.has_stalls
        stall_ref = 0
        if has_stalls:
            first_store = int(bp.next_store[k])
            stall_ref = int(s0[min(first_store + 1, bp.length)])

        def _finish(i: int) -> int:
            value = base + int(b0[k + 1 + i])
            if has_stalls:
                stall = int(s0[k + 1 + i]) - stall_ref
                if stall > 0:
                    value += stall
            if delta and i >= obs_rel:
                value += delta
            return value

        last = _finish(count - 1)
        if (head is not None and last >= head) \
                or (limit is not None and last > limit):
            # Heap-head / run-horizon caps: ops before the last must
            # finish strictly before the next pending event and within
            # the horizon (identical to the per-op continue condition).
            if has_stalls:
                finishes = s0[k + 1:j + 1] - stall_ref
                np.maximum(finishes, 0, out=finishes)
                finishes += b0[k + 1:j + 1]
                finishes += base
            else:
                finishes = b0[k + 1:j + 1] + base
            if delta:
                finishes[obs_rel:] += delta
            if head is not None and finishes[count - 1] >= head:
                count = int(finishes.searchsorted(head, side="left")) + 1
            if limit is not None and finishes[count - 1] > limit:
                cap = int(finishes.searchsorted(limit, side="right")) + 1
                if cap < count:
                    count = cap
            if count < _MIN_STRETCH:
                if obs is not None:
                    obs.count("batch.decline.horizon")
                return bp.length
            j = k + count
            hi = int(mem_pos.searchsorted(j))
            last = int(finishes[count - 1])
            prev_last = int(finishes[count - 2])
        else:
            prev_last = _finish(count - 2)
        if delta and obs_rel >= count:
            # The observing drain fell off the truncated stretch: no op
            # left in it touches the stale entries.
            delta = 0

        # ---- commit the stretch -------------------------------------------
        # No in-stretch store can find the buffer full: store times rise
        # by at least a cycle per store, so live occupancy never exceeds
        # the hit latency, and eligibility requires capacity >= hl.
        stats = self.stats
        busy = int(bp.cum_busy[j] - bp.cum_busy[k])
        stats.busy += busy
        stats.instructions += busy
        other = int(bp.cum_other[j] - bp.cum_other[k])
        if other:
            stats.other += other
        stats.loads += int(bp.cum_loads[j] - bp.cum_loads[k])
        n_stores = int(bp.cum_stores[j] - bp.cum_stores[k])
        stats.stores += n_stores
        stats.fences += int(bp.cum_fences[j] - bp.cum_fences[k])
        if has_stalls:
            drained = int(s0[j]) - stall_ref
            if drained > 0:
                stats.sb_drain += drained
        if delta:
            stats.sb_drain += delta

        n_mem = hi - lo
        if n_mem:
            mem = self.mem
            mem.l1_hits[self.core_id] += n_mem
            cache = mem.l1(self.core_id)
            counter = cache._access_counter
            cache._access_counter = counter + n_mem
            last_touch: dict = {}
            for pos, dense in enumerate(bp.mem_ids[lo:hi].tolist()):
                last_touch[dense] = pos
            refs = bp.refs
            addr_list = bp.addr_list
            lookup = cache.lookup
            counter += 1
            for dense, pos in last_touch.items():
                block = refs.get(dense)
                if block is None:
                    block = refs[dense] = lookup(addr_list[dense], touch=False)
                block.last_use = counter + pos
            if n_stores:
                store_pos = bp.store_pos
                lo_s = int(store_pos.searchsorted(k))
                hi_s = lo_s + n_stores
                for dense in set(bp.store_ids[lo_s:hi_s].tolist()):
                    block = refs.get(dense)
                    if block is None:
                        block = refs[dense] = lookup(addr_list[dense],
                                                     touch=False)
                    block.state = CoherenceState.MODIFIED
                    block.dirty = True

        if n_stores and bp.fifo:
            # Rebuild the buffer's physical state: purge-on-insert leaves
            # exactly the trailing stores still in flight at the last
            # insertion (at most ``hl`` of them -- store times are
            # strictly increasing), with releases (monotone from an empty
            # start) equal to completion times.
            hl = bp.hl
            word_addr = bp.word_addr
            base_order = sb._insertions

            def _start(pos: int) -> int:
                value = base + int(b0[pos])
                if has_stalls:
                    stall = int(s0[pos]) - stall_ref
                    if stall > 0:
                        value += stall
                if delta and pos - k >= obs_rel:
                    value += delta
                return value

            last_t = _start(int(store_pos[hi_s - 1]))
            tail = []
            idx = hi_s - 1
            floor = last_t - hl
            while idx >= lo_s:
                pos = int(store_pos[idx])
                t = _start(pos) if idx != hi_s - 1 else last_t
                if t <= floor:
                    break
                tail.append((t, pos, idx))
                idx -= 1
            entries = []
            releases = []
            for t, pos, idx in reversed(tail):
                release = t + hl
                entries.append(StoreBufferEntry(
                    address=int(word_addr[pos]), completion_time=release,
                    release_time=release,
                    insertion_order=base_order + (idx - lo_s)))
                releases.append(release)
            sb._entries = entries
            sb._releases = releases
            sb._insertions = base_order + n_stores
            sb.total_inserted += n_stores
            sb._max_release = last_t + hl
            if sb.peak_occupancy < hl:
                # Early in a run the exact window peak still matters;
                # once the recorded peak reaches ``hl`` no in-stretch
                # store can raise it further.
                times = b0[store_pos[lo_s:hi_s]] + base
                if has_stalls:
                    stall = s0[store_pos[lo_s:hi_s]] - stall_ref
                    np.maximum(stall, 0, out=stall)
                    times = times + stall
                if delta:
                    times += delta
                live = np.arange(n_stores) - times.searchsorted(
                    times - hl, side="right")
                peak = int(live.max()) + 1
                if peak > sb.peak_occupancy:
                    sb.peak_occupancy = peak

        if obs is not None:
            obs.count("batch.retired", count)
            obs.observe("batch.stretch_len", count)
        self._index = j
        return count, last, prev_last, head

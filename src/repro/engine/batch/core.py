"""The batch core: bulk retirement of quiescent stretches.

:class:`BatchCore` extends the fast kernel's run-until-interesting loop
(:meth:`repro.cpu.core.Core._step_fast`) with one extra move: before
processing the op at the current index through the controller, it tries
to retire a whole *stretch* of upcoming ops as array operations.

A stretch is sound exactly when, op by op, the exact kernel would have
taken nothing but its constant-latency hit paths.  The preconditions:

* the store buffer is empty at stretch entry (O(1) ``is_empty``);
* every op up to the stretch end is a COMPUTE, a FENCE, a LOAD whose
  block is resident in any valid state, or a STORE whose block is held
  MODIFIED/EXCLUSIVE -- checked by one gather against the lane's packed
  residency table, which coherence keeps fresh via the memory system's
  state watcher;
* no ATOMIC (those drain/stall by rule), no trace end, no warmup or
  phase boundary, no inline-budget exhaustion inside the stretch;
* the FIFO store buffer never fills inside the stretch (vectorized
  occupancy check over the stretch's store times);
* every op but the last *starts* strictly before the truncating horizon:
  the next pending heap event -- the same exactness condition the fast
  kernel applies per op -- or, in a multicore lane, the coherence-epoch
  bound when that lies further out (no other core can generate coherence
  traffic before it; see :mod:`.epochs`), found with one ``searchsorted``
  over the stretch's finish times.

Everything the exact kernel would have mutated is then committed in
closed form: counter deltas from prefix-sum differences, the event
queue's clock/processed count via ``note_inline_bulk``, LRU timestamps
from last-touch positions, stored blocks to MODIFIED/dirty, and the FIFO
buffer's physical entry list rebuilt to exactly what purge-on-insert
would have left.  If any precondition fails the op is handed to the
controller unchanged, so every interesting event (miss, upgrade,
SB-full, atomic, trace end) runs the exact fast kernel.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...memory.block import CoherenceState
from ...config import SystemConfig
from ...cpu.core import _MAX_INLINE_BATCH, Core
from ...cpu.store_buffer import StoreBufferEntry
from ...errors import SimulationError
from ...trace.trace import Trace
from .epochs import EpochTracker
from .profile import RowProfile

#: Below this many ops, fixed numpy overhead beats the saved per-op work;
#: the exact kernel is used instead.  Correctness never depends on this.
_MIN_STRETCH = 4
#: Cap on ops examined per bulk attempt; longer runs simply take another
#: bulk step on the next loop iteration.
_MAX_STRETCH = 512
#: Per-reason decline cooldowns.  The first decline of a reason (since
#: the last retired stretch) costs nothing beyond its chain-exact pin;
#: consecutive declines of the same reason then back off exponentially
#: from :data:`_COOLDOWN_BASE` ops up to :data:`_COOLDOWN_CAP`, and any
#: retired stretch resets every reason.  A hostile phase (dense
#: multicore event traffic, a non-resident working set) therefore costs
#: a logarithmic number of probe attempts instead of either unbounded
#: re-probing or -- as the old global adaptive opt-out did --
#: permanently disabling batching for the whole run.  Purely per-core
#: and deterministic, so results stay independent of lane width and
#: order; cooldowns only skip attempts, never change what a successful
#: attempt retires.
_COOLDOWN_BASE = 16
_COOLDOWN_CAP = 4096


class BatchCore(Core):
    """A core that retires quiescent stretches as numpy array ops."""

    def __init__(self, core_id: int, trace: Trace, config: SystemConfig,
                 mem, events, warmup_ops: int = 0,
                 phase_bounds: Optional[Sequence[int]] = None,
                 profile: Optional[RowProfile] = None,
                 epochs: Optional[EpochTracker] = None) -> None:
        super().__init__(core_id, trace, config, mem, events,
                         warmup_ops=warmup_ops, phase_bounds=phase_bounds,
                         batching=True)
        self._bp = profile
        #: cross-core epoch tracker; ``None`` in single-core lanes, where
        #: the heap head alone already bounds every stretch exactly.
        self._epochs = epochs
        #: time of this core's most recently scheduled step event.  Other
        #: cores' horizon scans read it while this core is at rest.
        self._pending_at = 0
        #: per-chain memo of the epoch horizon: (generation, bound).
        self._chain_horizon: Optional[tuple] = None
        #: persistent cooldown floor (trace index) maintained by _decline.
        self._cool = -1
        #: per-reason exponential cooldown spans (see _COOLDOWN_BASE).
        self._backoff: dict = {}

    def start(self, at: int = 0) -> None:
        super().start(at=at)
        bp = self._bp
        if bp is not None \
                and bp.token != self.trace.compiled().arrays().token:
            # The trace was rebuilt (mutated) after the lane stack was
            # built: the static tables may silently disagree with the
            # new compiled arrays even at an unchanged length, so run
            # purely exact.
            self._bp = None
            if self.obs is not None:
                self.obs.count("batch.optout.stale-profile")

    def _schedule_step(self, time: int) -> None:
        self._pending_at = time
        self.events.schedule_step(time, self, self._generation)

    def _step_fast(self, now: int, generation: int) -> None:
        """The fast kernel loop with a bulk attempt before each exact op."""
        if generation != self._generation or self._finished:
            return
        assert self.controller is not None
        process_op = self.controller.process_op
        events = self.events
        ops = self._ops
        weights = self._instr_weights
        trace_len = self._trace_len
        stats = self.stats
        budget = _MAX_INLINE_BATCH
        bp = self._bp
        obs = self.obs
        if bp is not None and bp.length != trace_len:
            # The trace was mutated after the lane stack was built; the
            # static tables no longer line up, so run purely exact.
            bp = self._bp = None
            if obs is not None:
                obs.count("batch.optout.stale-profile")
        # No bulk attempt before this trace index: seeded with the
        # persistent per-reason cooldown floor, raised by the chain-exact
        # pins declined attempts return.
        cool = self._cool
        self._chain_horizon = None
        while True:
            if not self._warmup_done or self._next_bound < len(self._inner_bounds):
                self._pre_op()
            index = self._index
            if index >= trace_len:
                wake = self._handle_trace_end(now)
                if wake is None:
                    return
                head = events.next_time()
                budget -= 1
                limit = events.run_until
                if budget > 0 and (head is None or head > wake) \
                        and (limit is None or wake <= limit):
                    events.note_inline(wake)
                    now = wake
                    continue
                self._schedule_step(wake)
                return
            if bp is not None and budget >= _MIN_STRETCH and index >= cool:
                bulk = self._bulk_advance(bp, index, now, budget)
                if bulk.__class__ is tuple:
                    count, last, prev_last, head = bulk
                    budget -= count
                    limit = events.run_until
                    if budget > 0 and (head is None or head > last) \
                            and (limit is None or last <= limit):
                        events.note_inline_bulk(last, count)
                        now = last
                        continue
                    # The final op of the stretch hit the same boundary the
                    # exact loop would have (an epoch-extended stretch always
                    # ends here: its last finish reaches the real heap head,
                    # so pending events on other cores fire before this
                    # core's next step): account the first count-1 ops
                    # inline and schedule the next step, exactly as the
                    # per-op path does after processing the final op.
                    events.note_inline_bulk(prev_last, count - 1)
                    self._schedule_step(last)
                    return
                else:
                    # Declined: the returned index pins re-attempts both
                    # within this chain (exact reasoning -- the heap head
                    # and residency only change across chain boundaries)
                    # and across chains (the per-reason cooldown floor
                    # maintained by _decline).
                    cool = bulk
            finish = process_op(ops[index], now)
            if finish < now:
                raise SimulationError(
                    f"controller returned a finish time in the past on core {self.core_id}"
                )
            self._index = index + 1
            stats.instructions += weights[index]
            heap = events._heap
            if heap:
                head_event = heap[0]
                head = events.next_time() if head_event.cancelled \
                    else head_event.time
            else:
                head = None
            budget -= 1
            limit = events.run_until
            if budget > 0 and (head is None or head > finish) \
                    and (limit is None or finish <= limit):
                events.note_inline(finish)
                now = finish
                continue
            self._schedule_step(finish)
            return

    def _bulk_advance(self, bp: RowProfile, k: int, now: int, budget: int):
        """Try to retire a stretch starting at trace index ``k``.

        Returns ``(count, last_finish, prev_finish, head)`` after applying
        all side effects.  On decline it returns an *int*: the first trace
        index at which re-attempting is allowed -- the chain-exact pin
        (the first index at which success is possible within the current
        inline chain) raised to the per-reason cooldown floor (the caller
        processes ops through the exact kernel and skips bulk attempts
        until then).
        """
        obs = self.obs
        # Static caps: next atomic (or padded trace end), warmup boundary,
        # next phase boundary, the inline budget, and the attempt cap.
        end = int(bp.next_break[k])
        if not self._warmup_done and self.warmup_ops < end:
            end = self.warmup_ops
        next_bound = self._next_bound
        if next_bound < len(self._inner_bounds):
            bound = self._inner_bounds[next_bound]
            if bound < end:
                end = bound
        count = end - k
        if count < _MIN_STRETCH:
            return self._decline("short", end, k)
        if count > budget:
            count = budget
        if count > _MAX_STRETCH:
            count = _MAX_STRETCH

        b0 = bp.B0
        base = now - int(b0[k])

        # Stale store-buffer entries.  They are invisible to the stretch
        # unless some op *observes* the buffer: a drain waits for their
        # release (an extra stall ``delta`` that shifts every later op
        # uniformly, leaving the in-stretch stall algebra intact), and a
        # store must not insert before they have all released (purge
        # order, FIFO release monotonicity, occupancy).
        controller = self.controller
        sb = controller.sb
        delta = 0
        obs_rel = 0
        stale = sb._max_release
        if stale > now:
            if not bp.fifo:
                # Coalescing entries coalesce with same-block stores; wait
                # for the buffer to empty rather than model that.
                return self._decline("coalescing-sb", k + 1, k)
            next_obs = int(bp.next_obs[k])
            if next_obs < k + count:
                t_obs = int(b0[next_obs]) + base
                if t_obs < stale:
                    if bp.is_store[next_obs]:
                        count = next_obs - k
                        if count < _MIN_STRETCH:
                            return self._decline("stale-sb", k + 1, k)
                    else:
                        delta = stale - t_obs
                        obs_rel = next_obs - k

        events = self.events
        heap = events._heap
        if heap:
            head_event = heap[0]
            head = events.next_time() if head_event.cancelled \
                else head_event.time
        else:
            head = None
        limit = events.run_until

        # The truncating horizon: the next pending heap event, relaxed to
        # the coherence-epoch bound when that lies further out -- no other
        # core of the run can generate coherence traffic before it, so
        # ops *starting* before it commute with the pending steps (see
        # :mod:`.epochs`).  The caller still routes through the heap
        # whenever the stretch's last finish reaches the *real* head, so
        # cross-core event order past the epoch stays exact.
        horizon = head
        if head is not None and self._epochs is not None:
            epoch = self._chain_epoch()
            if epoch > head:
                horizon = epoch

        # Cheap pre-cap before any gather: ``B0 + base`` is a lower bound
        # on every finish time (stalls and ``delta`` only add), so a
        # searchsorted over the static prefix bounds the feasible count.
        if horizon is not None:
            cap = int(b0[k + 1:k + count + 1].searchsorted(
                horizon - base, side="left")) + 1
            if cap < count:
                count = cap
            if count < _MIN_STRETCH:
                # The head is fixed for the rest of this inline chain,
                # finish times only grow as the chain advances toward it,
                # and this core's own transactions can only shrink the
                # epoch bound (they never add residency to other cores).
                return self._decline("head-cap", bp.length, k)

        # Residency: every load hits, every store has write permission.
        # Only memory ops carry a requirement, so the gather runs over the
        # packed per-row memory-op index (window selection by binary
        # search over views, no boolean-mask copies).
        j = k + count
        mem_pos = bp.mem_pos
        lo = int(mem_pos.searchsorted(k))
        hi = int(mem_pos.searchsorted(j))
        if lo < hi:
            ok = bp.res[bp.mem_ids[lo:hi]] >= bp.mem_need[lo:hi]
            if not ok.all():
                bad = int(mem_pos[lo + int((~ok).argmax())])
                count = bad - k
                if count < _MIN_STRETCH:
                    # Residency only changes across chain boundaries (our
                    # own hits preserve state; misses break the chain).
                    return self._decline("residency", bad + 1, k)
                j = k + count
                hi = int(mem_pos.searchsorted(j))

        # Finish times: durations plus real drain stalls.  Stalls whose
        # referenced store precedes the stretch are bogus (the buffer is
        # empty, or covered by ``delta``, at entry) and are clipped away
        # against the S0 prefix at the first in-stretch store.  The finish
        # of op ``k+i`` is ``base + B0[k+1+i] + max(0, S0[k+1+i] -
        # stall_ref) (+ delta past the observing drain)``; it is needed in
        # full only when the next heap event or the run horizon actually
        # truncates the stretch -- otherwise two scalars suffice.
        s0 = bp.S0
        has_stalls = bp.has_stalls
        stall_ref = 0
        if has_stalls:
            first_store = int(bp.next_store[k])
            stall_ref = int(s0[min(first_store + 1, bp.length)])

        def _finish(i: int) -> int:
            value = base + int(b0[k + 1 + i])
            if has_stalls:
                stall = int(s0[k + 1 + i]) - stall_ref
                if stall > 0:
                    value += stall
            if delta and i >= obs_rel:
                value += delta
            return value

        last = _finish(count - 1)
        if (horizon is not None and last >= horizon) \
                or (limit is not None and last > limit):
            # Horizon / run-limit caps: ops before the last must finish
            # strictly before the truncating horizon (the heap head, or
            # the epoch bound past it) and within the run limit --
            # identical to the per-op continue condition when the horizon
            # is the heap head, and sound past it by the epoch argument.
            if has_stalls:
                finishes = s0[k + 1:j + 1] - stall_ref
                np.maximum(finishes, 0, out=finishes)
                finishes += b0[k + 1:j + 1]
                finishes += base
            else:
                finishes = b0[k + 1:j + 1] + base
            if delta:
                finishes[obs_rel:] += delta
            if horizon is not None and finishes[count - 1] >= horizon:
                count = int(finishes.searchsorted(horizon, side="left")) + 1
            if limit is not None and finishes[count - 1] > limit:
                cap = int(finishes.searchsorted(limit, side="right")) + 1
                if cap < count:
                    count = cap
            if count < _MIN_STRETCH:
                return self._decline("horizon", bp.length, k)
            j = k + count
            hi = int(mem_pos.searchsorted(j))
            last = int(finishes[count - 1])
            prev_last = int(finishes[count - 2])
        else:
            prev_last = _finish(count - 2)
        if delta and obs_rel >= count:
            # The observing drain fell off the truncated stretch: no op
            # left in it touches the stale entries.
            delta = 0

        # ---- commit the stretch -------------------------------------------
        # No in-stretch store can find the buffer full: store times rise
        # by at least a cycle per store, so live occupancy never exceeds
        # the hit latency, and eligibility requires capacity >= hl.
        stats = self.stats
        busy = int(bp.cum_busy[j] - bp.cum_busy[k])
        stats.busy += busy
        stats.instructions += busy
        other = int(bp.cum_other[j] - bp.cum_other[k])
        if other:
            stats.other += other
        stats.loads += int(bp.cum_loads[j] - bp.cum_loads[k])
        n_stores = int(bp.cum_stores[j] - bp.cum_stores[k])
        stats.stores += n_stores
        stats.fences += int(bp.cum_fences[j] - bp.cum_fences[k])
        if has_stalls:
            drained = int(s0[j]) - stall_ref
            if drained > 0:
                stats.sb_drain += drained
        if delta:
            stats.sb_drain += delta

        n_mem = hi - lo
        if n_mem:
            mem = self.mem
            mem.l1_hits[self.core_id] += n_mem
            cache = mem.l1(self.core_id)
            counter = cache._access_counter
            cache._access_counter = counter + n_mem
            refs = bp.refs
            addr_list = bp.addr_list
            lookup = cache.lookup
            counter += 1
            # Last touch per distinct block in one vectorized pass (the
            # LRU stamp only the final access to each block survives):
            # the first occurrence in the reversed window is the last in
            # the forward window, so one ``np.unique`` replaces the
            # per-op dict probe loop.
            rev_ids = bp.mem_ids[lo:hi][::-1]
            uniq_ids, rev_first = np.unique(rev_ids, return_index=True)
            tail = counter + n_mem - 1
            for dense, rev in zip(uniq_ids.tolist(), rev_first.tolist()):
                block = refs.get(dense)
                if block is None:
                    block = refs[dense] = lookup(addr_list[dense], touch=False)
                block.last_use = tail - rev
            if n_stores:
                store_pos = bp.store_pos
                lo_s = int(store_pos.searchsorted(k))
                hi_s = lo_s + n_stores
                for dense in np.unique(bp.store_ids[lo_s:hi_s]).tolist():
                    block = refs.get(dense)
                    if block is None:
                        block = refs[dense] = lookup(addr_list[dense],
                                                     touch=False)
                    block.state = CoherenceState.MODIFIED
                    block.dirty = True

        if n_stores and bp.fifo:
            # Rebuild the buffer's physical state: purge-on-insert leaves
            # exactly the trailing stores still in flight at the last
            # insertion (at most ``hl`` of them -- store times are
            # strictly increasing), with releases (monotone from an empty
            # start) equal to completion times.
            hl = bp.hl
            word_addr = bp.word_addr
            base_order = sb._insertions

            def _start(pos: int) -> int:
                value = base + int(b0[pos])
                if has_stalls:
                    stall = int(s0[pos]) - stall_ref
                    if stall > 0:
                        value += stall
                if delta and pos - k >= obs_rel:
                    value += delta
                return value

            last_t = _start(int(store_pos[hi_s - 1]))
            tail = []
            idx = hi_s - 1
            floor = last_t - hl
            while idx >= lo_s:
                pos = int(store_pos[idx])
                t = _start(pos) if idx != hi_s - 1 else last_t
                if t <= floor:
                    break
                tail.append((t, pos, idx))
                idx -= 1
            entries = []
            releases = []
            for t, pos, idx in reversed(tail):
                release = t + hl
                entries.append(StoreBufferEntry(
                    address=int(word_addr[pos]), completion_time=release,
                    release_time=release,
                    insertion_order=base_order + (idx - lo_s)))
                releases.append(release)
            sb._entries = entries
            sb._releases = releases
            sb._insertions = base_order + n_stores
            sb.total_inserted += n_stores
            sb._max_release = last_t + hl
            if sb.peak_occupancy < hl:
                # Early in a run the exact window peak still matters;
                # once the recorded peak reaches ``hl`` no in-stretch
                # store can raise it further.
                times = b0[store_pos[lo_s:hi_s]] + base
                if has_stalls:
                    stall = s0[store_pos[lo_s:hi_s]] - stall_ref
                    np.maximum(stall, 0, out=stall)
                    times = times + stall
                if delta:
                    times += delta
                live = np.arange(n_stores) - times.searchsorted(
                    times - hl, side="right")
                peak = int(live.max()) + 1
                if peak > sb.peak_occupancy:
                    sb.peak_occupancy = peak

        if self._backoff:
            # A retired stretch pays for its attempt: drop the per-reason
            # cooldowns so batching recovers right after a hostile phase.
            self._backoff.clear()
            self._cool = -1
        if obs is not None:
            obs.count("batch.retired", count)
            obs.observe("batch.stretch_len", count)
        self._index = j
        return count, last, prev_last, head

    def _decline(self, reason: str, chain_pin: int, k: int) -> int:
        """Account a declined bulk attempt; returns the re-attempt pin.

        ``chain_pin`` is the exact first trace index at which a
        re-attempt could succeed within the current inline chain.  On
        top of it, consecutive declines of the same ``reason`` back off
        exponentially (reset by any retired stretch); the cooldown floor
        persists across chains via ``self._cool``, so a hostile phase is
        probed a logarithmic number of times instead of once per chain.
        """
        if self.obs is not None:
            self.obs.count("batch.decline." + reason)
        backoff = self._backoff
        span = backoff.get(reason, 0)
        backoff[reason] = _COOLDOWN_BASE if span == 0 \
            else min(span * 2, _COOLDOWN_CAP)
        if span:
            until = k + span
            if until > self._cool:
                self._cool = until
            if until > chain_pin:
                return until
        return chain_pin

    def _chain_epoch(self) -> int:
        """The cross-core epoch horizon, memoized per inline chain.

        Other cores are at rest while this core's chain runs, so the
        horizon can only move when this core itself performs a coherence
        transaction between bulk attempts -- which bumps the tracker's
        generation and invalidates the memo.
        """
        memo = self._chain_horizon
        epochs = self._epochs
        generation = epochs.generation
        if memo is not None and memo[0] == generation:
            return memo[1]
        epoch = epochs.horizon(self)
        self._chain_horizon = (generation, epoch)
        return epoch

"""Lane execution: run a group of same-config runs through the batch tier.

:func:`simulate_batch` is the campaign executor's entry point: it builds
one shared :class:`LaneProfiles` stack for every (run, core) stream --
amortizing the vectorized static passes across the whole lane -- then
runs each system to completion.  Runs share only the immutable static
tables; each owns its event queue, memory system, and residency rows, so
results are independent of lane width and execution order (a width-1
lane, a width-8 lane, and ``engine="fast"`` all produce byte-identical
``RunResult`` JSON).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...config import SystemConfig
from ...trace.trace import MultiThreadedTrace
from .profile import build_lane_profiles


def simulate_batch(config: SystemConfig,
                   traces: Sequence[MultiThreadedTrace],
                   warmup_fraction: float = 0.0,
                   max_events: Optional[int] = None,
                   recorder=None) -> List["RunResult"]:
    """Simulate every trace under ``config`` with the batch engine.

    Returns results in trace order.  Ineligible configurations
    (speculative controllers) fall back to the exact fast kernel per run,
    which is what the bulk path degenerates to anyway.
    """
    from ..simulator import Simulator
    from ..system import build_system

    traces = list(traces)
    profiles = build_lane_profiles(config, traces)
    results = []
    for run, trace in enumerate(traces):
        system = build_system(
            config, trace, warmup_fraction=warmup_fraction, engine="batch",
            lane=(profiles, run) if profiles is not None else None,
            recorder=recorder)
        results.append(Simulator(system).run(max_events=max_events,
                                             seed=trace.seed))
    return results

"""Static lane profiles: the batch engine's precomputed quiescence tables.

A *lane* is a group of runs that share one :class:`SystemConfig`.  Every
(run, core) program-order stream becomes one row of a set of 2-D numpy
arrays, padded to the longest stream with :data:`OP_ATOMIC` -- atomics
are unconditional bulk breakers, so padding doubles as the trace-end
sentinel.  One vectorized pass over the stack derives, per row:

* ``dur0``/``busy0``: each op's retirement latency and busy charge when
  it is an L1 hit executed with an empty store buffer (COMPUTE bundles
  carry their own cycle count; busy equals the instruction weight);
* the *drain-stall theorem* table ``stall0``: under SC a load (under
  TSO/RMO a fence) drains the FIFO store buffer.  Within a stretch run
  back-to-back from an empty buffer, the stall of drain op *k* whose
  nearest preceding store is *s* with no drain in between is exactly
  ``max(0, B0[s] + hit_latency - B0[k])`` where ``B0`` is the exclusive
  cumulative sum of ``dur0`` -- stalls at earlier drains shift *s* and
  *k* equally, and an intervening drain already waited out *s*'s
  release.  Stalls whose referenced store precedes the stretch are
  *bogus* (the buffer was empty at stretch entry) and are subtracted via
  the ``S0`` prefix at runtime;
* exclusive prefix sums of every per-op statistic the stretch commits
  (busy, other, loads, stores, fences, memory-op count);
* dense block ids and per-op residency requirements (loads need any
  valid state, stores need MODIFIED/EXCLUSIVE), checked at runtime
  against the packed per-row residency byte table that coherence
  transactions keep fresh through the memory system's state watcher.

Rows never share mutable state with each other, so lane results are
independent of the order runs execute in.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ...config import SpeculationMode, StoreBufferKind, SystemConfig
from ...consistency.rules import rules_for
from ...memory.address import WORD_BYTES, block_mask
from ...trace.compiled import OP_ATOMIC, OP_COMPUTE, OP_FENCE, OP_LOAD, OP_STORE
from ...trace.trace import MultiThreadedTrace


class RowProfile:
    """One (run, core) stream's static tables (views into the lane stack)."""

    __slots__ = ("length", "token", "hl", "fifo", "has_stalls", "sb_capacity",
                 "ids", "need", "is_store", "is_mem", "word_addr",
                 "B0", "S0", "cum_busy", "cum_other", "cum_loads",
                 "cum_stores", "cum_fences", "cum_mem",
                 "next_break", "next_store", "next_obs",
                 "mem_pos", "mem_ids", "mem_need", "store_pos", "store_ids",
                 "res", "dense_to_addr", "addr_list", "refs")

    def __init__(self, lane: "LaneProfiles", row: int, length: int) -> None:
        self.length = length
        self.token = lane.tokens[row]
        self.hl = lane.hl
        self.fifo = lane.fifo
        self.has_stalls = lane.has_stalls
        self.sb_capacity = lane.sb_capacity
        self.ids = lane.ids[row]
        self.need = lane.need[row]
        self.is_store = lane.is_store[row]
        self.is_mem = lane.is_mem[row]
        self.word_addr = lane.word_addr[row]
        self.B0 = lane.B0[row]
        self.S0 = lane.S0[row]
        self.cum_busy = lane.cum_busy[row]
        self.cum_other = lane.cum_other[row]
        self.cum_loads = lane.cum_loads[row]
        self.cum_stores = lane.cum_stores[row]
        self.cum_fences = lane.cum_fences[row]
        self.cum_mem = lane.cum_mem[row]
        self.next_break = lane.next_break[row]
        self.next_store = lane.next_store[row]
        self.next_obs = lane.next_obs[row] if lane.next_obs is not None \
            else lane.next_break[row]
        self.mem_pos = lane.mem_pos[row]
        self.mem_ids = lane.mem_ids[row]
        self.mem_need = lane.mem_need[row]
        self.store_pos = lane.store_pos[row]
        self.store_ids = lane.store_ids[row]
        self.res = lane.residency[row]
        self.dense_to_addr = lane.dense_to_addr
        self.addr_list = lane.addr_list
        self.refs = lane.block_refs[row]


class LaneProfiles:
    """Precomputed batch tables for a group of runs under one config."""

    def __init__(self, config: SystemConfig,
                 traces: Sequence[MultiThreadedTrace]) -> None:
        self.config = config
        self.num_cores = config.num_cores
        self.hl = config.l1.hit_latency
        sb = config.store_buffer
        self.fifo = sb.kind is StoreBufferKind.FIFO_WORD
        self.sb_capacity = sb.entries
        rules = rules_for(config.consistency)
        self.has_stalls = self.fifo and (rules.load_requires_drain
                                         or rules.fence_requires_drain)
        self._lengths: List[int] = []
        #: per-row :attr:`TraceArrays.token` of the compiled arrays the
        #: tables were built from, so cores can detect a rebuilt (mutated)
        #: trace even when the new length matches the old.
        self.tokens: List[int] = []
        self._row_cache: Dict[int, RowProfile] = {}
        self._build(config, traces)

    # -- construction ------------------------------------------------------

    def _build(self, config: SystemConfig,
               traces: Sequence[MultiThreadedTrace]) -> None:
        hl = self.hl
        num_cores = self.num_cores
        arrays = []
        for trace in traces:
            for core_id in range(num_cores):
                ta = trace[core_id].compiled().arrays()
                arrays.append(ta)
                self.tokens.append(ta.token)
        rows = len(arrays)
        lmax = max((ta.length for ta in arrays), default=0)
        lmax = max(lmax, 1)

        kinds = np.full((rows, lmax), OP_ATOMIC, dtype=np.int8)
        addresses = np.zeros((rows, lmax), dtype=np.int64)
        cycles = np.ones((rows, lmax), dtype=np.int64)
        for row, ta in enumerate(arrays):
            n = ta.length
            self._lengths.append(n)
            kinds[row, :n] = ta.kinds
            addresses[row, :n] = ta.addresses
            cycles[row, :n] = ta.cycles

        is_load = kinds == OP_LOAD
        is_store = kinds == OP_STORE
        is_fence = kinds == OP_FENCE
        is_compute = kinds == OP_COMPUTE
        is_atomic = kinds == OP_ATOMIC
        self.is_store = is_store
        self.is_mem = is_load | is_store

        # Hit-path retirement latency and busy/other attribution per op.
        dur0 = np.ones((rows, lmax), dtype=np.int64)
        dur0[is_load] = hl
        dur0[is_compute] = cycles[is_compute]
        busy0 = np.ones((rows, lmax), dtype=np.int64)
        busy0[is_compute] = cycles[is_compute]
        other0 = np.zeros((rows, lmax), dtype=np.int64)
        other0[is_load] = hl - 1

        self.B0 = _exclusive_cumsum(dur0)
        self.cum_busy = _exclusive_cumsum(busy0)
        self.cum_other = _exclusive_cumsum(other0)
        self.cum_loads = _exclusive_cumsum(is_load.astype(np.int64))
        self.cum_stores = _exclusive_cumsum(is_store.astype(np.int64))
        self.cum_fences = _exclusive_cumsum(is_fence.astype(np.int64))
        self.cum_mem = _exclusive_cumsum(self.is_mem.astype(np.int64))

        # Drain-stall table (FIFO buffers only; coalescing buffers retire
        # in-stretch stores directly into the L1, so drains find nothing).
        rules = rules_for(config.consistency)
        if self.has_stalls:
            drain = np.zeros((rows, lmax), dtype=np.bool_)
            if rules.load_requires_drain:
                drain |= is_load
            if rules.fence_requires_drain:
                drain |= is_fence
            idx = np.arange(lmax, dtype=np.int64)
            prev_store = _previous_index(is_store, idx)
            prev_drain = _previous_index(drain, idx)
            valid = drain & (prev_store >= 0) & (prev_drain < prev_store)
            b0_at_store = np.take_along_axis(
                self.B0, np.maximum(prev_store, 0), axis=1)
            stall0 = np.where(
                valid, np.maximum(b0_at_store + hl - self.B0[:, :lmax], 0), 0)
            # A stretch may begin with stale (not yet released) entries in
            # the FIFO buffer: the first op that *observes* the buffer --
            # a drain or a store -- bounds how late those entries may
            # release (see ``_bulk_advance``).
            self.next_obs = _next_index(drain | is_store, lmax)
        else:
            stall0 = np.zeros((rows, lmax), dtype=np.int64)
            self.next_obs = None
        self.S0 = _exclusive_cumsum(stall0)

        self.next_break = _next_index(is_atomic, lmax)
        self.next_store = _next_index(is_store, lmax)

        # Dense block ids + per-op residency requirement.
        baddr = addresses & block_mask(config.block_bytes)
        mem_addrs = baddr[self.is_mem]
        uniq = np.unique(mem_addrs)
        self.dense_to_addr = uniq
        self.addr_to_dense: Dict[int, int] = {
            int(a): i for i, a in enumerate(uniq.tolist())}
        self.ids = np.zeros((rows, lmax), dtype=np.int64)
        if uniq.size:
            self.ids[self.is_mem] = np.searchsorted(uniq, mem_addrs)
        self.need = np.zeros((rows, lmax), dtype=np.uint8)
        self.need[is_load] = 1
        self.need[is_store] = 2
        self.word_addr = addresses & ~(WORD_BYTES - 1)
        self.residency = np.zeros((rows, max(1, uniq.size)), dtype=np.uint8)

        # Packed per-row memory-op indexes: the commit path touches only
        # memory ops (residency gather, LRU last-touch, store tail), so a
        # sorted position array turns window selection into two binary
        # searches over views instead of boolean-mask copies.
        self.mem_pos: List[np.ndarray] = []
        self.mem_ids: List[np.ndarray] = []
        self.mem_need: List[np.ndarray] = []
        self.store_pos: List[np.ndarray] = []
        self.store_ids: List[np.ndarray] = []
        for row in range(rows):
            mp = np.flatnonzero(self.is_mem[row])
            sp = np.flatnonzero(is_store[row])
            self.mem_pos.append(mp)
            self.mem_ids.append(self.ids[row, mp])
            self.mem_need.append(self.need[row, mp])
            self.store_pos.append(sp)
            self.store_ids.append(self.ids[row, sp])
        self.addr_list = uniq.tolist()
        #: per-row dense-id -> CacheBlock shortcuts; the state watcher
        #: drops an entry on any coherence transition, so a cached
        #: reference is always the live, valid block.
        self.block_refs: List[Dict[int, object]] = [{} for _ in range(rows)]

    # -- runtime views -----------------------------------------------------

    def row_profile(self, run: int, core_id: int) -> RowProfile:
        row = run * self.num_cores + core_id
        cached = self._row_cache.get(row)
        if cached is None:
            cached = self._row_cache[row] = RowProfile(
                self, row, self._lengths[row])
        return cached

    def make_watcher(self, run: int):
        """A per-run memory-system hook keeping residency rows fresh."""
        offset = run * self.num_cores
        residency = self.residency
        addr_to_dense = self.addr_to_dense
        block_refs = self.block_refs

        def watch(core_id: int, baddr: int, code: int) -> None:
            dense = addr_to_dense.get(baddr)
            if dense is not None:
                row = offset + core_id
                residency[row, dense] = code
                # Installs may bind a fresh CacheBlock object, so any
                # transition invalidates the cached reference.
                block_refs[row].pop(dense, None)

        return watch


def _exclusive_cumsum(values: np.ndarray) -> np.ndarray:
    """Per-row exclusive prefix sums: out[:, k] == sum(values[:, :k])."""
    rows, cols = values.shape
    out = np.zeros((rows, cols + 1), dtype=np.int64)
    np.cumsum(values, axis=1, out=out[:, 1:])
    return out


def _previous_index(mask: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Per position, the largest marked index strictly before it (-1: none)."""
    marked = np.where(mask, idx, -1)
    incl = np.maximum.accumulate(marked, axis=1)
    out = np.empty_like(incl)
    out[:, 0] = -1
    out[:, 1:] = incl[:, :-1]
    return out


def _next_index(mask: np.ndarray, sentinel: int) -> np.ndarray:
    """Per position, the smallest marked index at or after it."""
    idx = np.arange(mask.shape[1], dtype=np.int64)
    marked = np.where(mask, idx, sentinel)
    return np.minimum.accumulate(marked[:, ::-1], axis=1)[:, ::-1]


def batch_eligible(config: SystemConfig) -> bool:
    """Whether ``config`` supports bulk stretch retirement.

    Speculative controllers checkpoint, roll back, and speculate through
    the very events bulk retirement is built around, so under
    ``engine="batch"`` they simply run the exact fast kernel (which is
    what the bulk path falls back to anyway).  A zero-cycle L1 degenerates
    the drain-stall algebra and is likewise delegated.  A FIFO buffer
    smaller than the hit latency could fill mid-stretch (in-stretch store
    times rise by at least one cycle per store, so live occupancy is
    bounded by ``hit_latency``); such configurations fall back too rather
    than carry a capacity check on the hot path.
    """
    if config.speculation.mode is not SpeculationMode.NONE \
            or config.l1.hit_latency < 1:
        return False
    sb = config.store_buffer
    if sb.kind is StoreBufferKind.FIFO_WORD and sb.entries < config.l1.hit_latency:
        return False
    return True


def build_lane_profiles(
        config: SystemConfig,
        traces: Sequence[MultiThreadedTrace]) -> Optional[LaneProfiles]:
    """Build the lane stack, or None when ``config`` is not bulk-eligible."""
    if not batch_eligible(config) or not traces:
        return None
    return LaneProfiles(config, traces)

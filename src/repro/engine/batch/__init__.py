"""The batch execution tier (``engine="batch"``).

Advances many runs at once: a campaign cell's (workload, seed) axis is
stacked into 2-D numpy arrays (one row per (run, core) stream), per-row
static tables are precomputed in single vectorized passes, and each
core's step event retires entire *quiescent stretches* -- runs of ops
that are guaranteed L1 hits with an empty store buffer and no earlier
pending heap event -- as array operations, falling back to the exact
fast kernel at every interesting event.  Results are byte-identical to
``engine="fast"`` (see ``tests/test_differential.py``).
"""

from .core import BatchCore
from .lanes import simulate_batch
from .profile import LaneProfiles, build_lane_profiles

__all__ = [
    "BatchCore",
    "LaneProfiles",
    "build_lane_profiles",
    "simulate_batch",
]

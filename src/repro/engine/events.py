"""Discrete-event queue.

A minimal binary-heap event queue: events are ``(time, sequence, callback)``
tuples; ties in time are broken by insertion order so the simulation is
deterministic.  Events can be cancelled; cancelled events are skipped when
popped.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError

#: An event callback receives the event's firing time as its only argument.
EventCallback = Callable[[int], None]


@dataclass(order=True)
class Event:
    """One scheduled callback."""

    time: int
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = 0
        self._now = 0
        self.processed = 0

    @property
    def now(self) -> int:
        """Time of the most recently popped event."""
        return self._now

    def schedule(self, time: int, callback: EventCallback) -> Event:
        """Schedule ``callback`` to run at ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time}, current time is {self._now}"
            )
        event = Event(time=time, sequence=self._sequence, callback=callback)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def empty(self) -> bool:
        return not any(not e.cancelled for e in self._heap)

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.processed += 1
            return event
        return None

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue is empty (or a bound is reached).

        Returns the number of events processed by this call.
        """
        count = 0
        while True:
            if max_events is not None and count >= max_events:
                break
            while self._heap and self._heap[0].cancelled:
                heapq.heappop(self._heap)
            if not self._heap:
                break
            if until is not None and self._heap[0].time > until:
                break
            event = self.pop()
            if event is None:
                break
            event.callback(event.time)
            count += 1
        return count

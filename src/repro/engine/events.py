"""Discrete-event queue.

A minimal binary-heap event queue: events are typed, ``__slots__``-ed
records ordered by ``(time, sequence)``; ties in time are broken by
insertion order so the simulation is deterministic.  Two kinds exist:

* :class:`CallbackEvent` -- a generic scheduled callback (controller commit
  checks, deferred aborts, ...), created by :meth:`EventQueue.schedule`.
* :class:`StepEvent` -- a core processing step, created by
  :meth:`EventQueue.schedule_step`.  Making the hot per-op event a typed
  record instead of a fresh closure keeps the simulator's inner loop free
  of per-op lambda allocation.

Events can be cancelled; cancelled events stay in the heap (lazy deletion)
and are discarded when they reach the top.  When cancelled entries come to
dominate the heap -- which heavy speculative rollback can cause -- the heap
is compacted in place so its size stays bounded by the number of live
events.  A live-event counter keeps :meth:`EventQueue.empty` and
:func:`len` O(1) -- both sit on the simulator hot path.

The queue also supports the core's inline batching ("run-until-
interesting"): when the next heap entry is strictly later than an op's
finish time, the core processes the following op inline instead of
round-tripping through the heap, and calls :meth:`EventQueue.note_inline`
so that the clock and the processed-event count match the unbatched
execution exactly.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..errors import SimulationError

#: An event callback receives the event's firing time as its only argument.
EventCallback = Callable[[int], None]

#: Compaction threshold: rebuild the heap once cancelled entries outnumber
#: live ones (and the heap is big enough for the rebuild to matter).
_COMPACT_MIN_HEAP = 8


class Event:
    """One scheduled occurrence; subclasses define what firing does."""

    __slots__ = ("time", "sequence", "cancelled", "queue")

    kind = "event"

    def __init__(self, time: int, sequence: int) -> None:
        self.time = time
        self.sequence = sequence
        self.cancelled = False
        #: owning queue while the event is pending; cleared once popped so a
        #: late cancel() cannot corrupt the live-event counter.
        self.queue: Optional["EventQueue"] = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def fire(self, now: int) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._note_cancelled()
            self.queue = None


class CallbackEvent(Event):
    """A generic scheduled callback."""

    __slots__ = ("callback",)

    kind = "call"

    def __init__(self, time: int, sequence: int, callback: EventCallback) -> None:
        super().__init__(time, sequence)
        self.callback = callback

    def fire(self, now: int) -> None:
        self.callback(now)


class StepEvent(Event):
    """One core processing step (the hot per-op event)."""

    __slots__ = ("core", "generation")

    kind = "step"

    def __init__(self, time: int, sequence: int, core: Any, generation: int) -> None:
        super().__init__(time, sequence)
        self.core = core
        self.generation = generation

    def fire(self, now: int) -> None:
        self.core._step(now, self.generation)


class EventQueue:
    """Deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = 0
        self._now = 0
        self._live = 0
        self._cancelled = 0
        self.processed = 0
        self.compactions = 0
        #: time horizon of the active run(until=...) call, if any; cores
        #: must not inline-batch ops past it (they would fire in a later
        #: run() call on the unbatched path).
        self.run_until: Optional[int] = None

    @property
    def now(self) -> int:
        """Current simulation time (last popped event or inline advance)."""
        return self._now

    def _push(self, event: Event) -> Event:
        if event.time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {event.time}, "
                f"current time is {self._now}"
            )
        event.queue = self
        self._sequence += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule(self, time: int, callback: EventCallback) -> Event:
        """Schedule ``callback`` to run at ``time``."""
        return self._push(CallbackEvent(time, self._sequence, callback))

    def schedule_step(self, time: int, core: Any, generation: int) -> Event:
        """Schedule a core processing step at ``time`` (no closure allocated)."""
        return self._push(StepEvent(time, self._sequence, core, generation))

    def empty(self) -> bool:
        return self._live == 0

    def __len__(self) -> int:
        return self._live

    # -- cancellation and heap compaction -----------------------------------

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if self._cancelled * 2 > len(self._heap) >= _COMPACT_MIN_HEAP:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (bounded heap size).

        Event order is untouched: the ``(time, sequence)`` keys of the
        surviving events are unique, so the rebuilt heap pops in exactly
        the order the lazy-deletion heap would have.
        """
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    # -- inspection and popping ----------------------------------------------

    def _peek(self) -> Optional[Event]:
        """Next live event without removing it (discards cancelled tops)."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0] if heap else None

    def next_time(self) -> Optional[int]:
        """Firing time of the next live event, or ``None`` when empty."""
        event = self._peek()
        return event.time if event is not None else None

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        event = self._peek()
        if event is None:
            return None
        heapq.heappop(self._heap)
        event.queue = None
        self._live -= 1
        self._now = event.time
        self.processed += 1
        return event

    # -- inline batching hooks (see Core._step_fast) -------------------------

    def note_inline(self, time: int) -> None:
        """Account one op processed inline (batched) at ``time``.

        Advances the clock and counts one processed event, exactly as if
        the op's step event had been scheduled and popped.  This keeps
        ``now`` and ``processed`` -- and therefore ``events_processed`` in
        :class:`~repro.engine.results.RunResult` -- identical between the
        batched fast path and the one-event-per-op reference path.
        """
        if time > self._now:
            self._now = time
        self.processed += 1

    def note_inline_bulk(self, time: int, count: int) -> None:
        """Account ``count`` ops processed inline, the last at ``time``.

        The batch engine's bulk retirement of a quiescent stretch is
        ``count`` consecutive :meth:`note_inline` calls with monotonically
        increasing times; only the final time matters for the clock, so
        this collapses them into one clock advance and one counter add.
        """
        if time > self._now:
            self._now = time
        self.processed += count

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue is empty (or a bound is reached).

        Returns the number of events processed by this call (including ops
        a core processed inline during a batched step).
        """
        start = self.processed
        previous_until = self.run_until
        self.run_until = until
        try:
            while self._live:
                if max_events is not None and self.processed - start >= max_events:
                    break
                if until is not None:
                    head = self._peek()
                    if head is None or head.time > until:
                        break
                event = self.pop()
                if event is None:
                    break
                event.fire(event.time)
        finally:
            self.run_until = previous_until
        return self.processed - start

"""Discrete-event queue.

A minimal binary-heap event queue: events are ``(time, sequence, callback)``
tuples; ties in time are broken by insertion order so the simulation is
deterministic.  Events can be cancelled; cancelled events stay in the heap
(lazy deletion) and are discarded when they reach the top.  A live-event
counter keeps :meth:`EventQueue.empty` and :func:`len` O(1) -- both sit on
the simulator hot path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError

#: An event callback receives the event's firing time as its only argument.
EventCallback = Callable[[int], None]


@dataclass(order=True)
class Event:
    """One scheduled callback."""

    time: int
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: owning queue while the event is pending; cleared once popped so a
    #: late cancel() cannot corrupt the live-event counter.
    queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._live -= 1
            self.queue = None


class EventQueue:
    """Deterministic min-heap of events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = 0
        self._now = 0
        self._live = 0
        self.processed = 0

    @property
    def now(self) -> int:
        """Time of the most recently popped event."""
        return self._now

    def schedule(self, time: int, callback: EventCallback) -> Event:
        """Schedule ``callback`` to run at ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time}, current time is {self._now}"
            )
        event = Event(time=time, sequence=self._sequence, callback=callback,
                      queue=self)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def empty(self) -> bool:
        return self._live == 0

    def __len__(self) -> int:
        return self._live

    def _peek(self) -> Optional[Event]:
        """Next live event without removing it (discards cancelled tops)."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        event = self._peek()
        if event is None:
            return None
        heapq.heappop(self._heap)
        event.queue = None
        self._live -= 1
        self._now = event.time
        self.processed += 1
        return event

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue is empty (or a bound is reached).

        Returns the number of events processed by this call.
        """
        count = 0
        while self._live:
            if max_events is not None and count >= max_events:
                break
            if until is not None:
                head = self._peek()
                if head is None or head.time > until:
                    break
            event = self.pop()
            if event is None:
                break
            event.callback(event.time)
            count += 1
        return count

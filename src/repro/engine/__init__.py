"""Simulation engine: event queue, system builder, simulator, results."""

from .events import Event, EventQueue
from .results import RunResult, aggregate_breakdown
from .system import System, build_system
from .simulator import Simulator, simulate

__all__ = [
    "Event",
    "EventQueue",
    "RunResult",
    "aggregate_breakdown",
    "System",
    "build_system",
    "Simulator",
    "simulate",
]

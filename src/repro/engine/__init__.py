"""Simulation engine: event queue, system builder, simulator, results."""

from .events import CallbackEvent, Event, EventQueue, StepEvent
from .results import RunResult, aggregate_breakdown
from .system import ENGINE_KINDS, System, build_system
from .simulator import Simulator, simulate

__all__ = [
    "CallbackEvent",
    "ENGINE_KINDS",
    "Event",
    "EventQueue",
    "StepEvent",
    "RunResult",
    "aggregate_breakdown",
    "System",
    "build_system",
    "Simulator",
    "simulate",
]

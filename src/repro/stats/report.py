"""Plain-text tables for experiment output.

The benchmark harness has no plotting dependency, so every figure is
regenerated as a text table whose rows/columns mirror the figure's bars and
series.  These formatting helpers keep that output consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None, float_format: str = "{:.2f}") -> str:
    """Render a simple aligned text table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered_rows: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_breakdown_table(breakdowns: Mapping[str, Mapping[str, Mapping[str, float]]],
                           components: Sequence[str],
                           title: Optional[str] = None) -> str:
    """Render nested {workload: {config: {component: value}}} breakdowns."""
    headers = ["workload", "config"] + list(components) + ["total"]
    rows: List[List[object]] = []
    for workload, configs in breakdowns.items():
        for config_name, values in configs.items():
            row: List[object] = [workload, config_name]
            row.extend(float(values.get(c, 0.0)) for c in components)
            row.append(float(sum(values.get(c, 0.0) for c in components)))
            rows.append(row)
    return format_table(headers, rows, title=title)


def format_series_table(series: Mapping[str, Mapping[str, float]],
                        title: Optional[str] = None,
                        value_name: str = "value") -> str:
    """Render {workload: {config: scalar}} series (speedups, fractions)."""
    configs: List[str] = []
    for values in series.values():
        for name in values:
            if name not in configs:
                configs.append(name)
    headers = ["workload"] + configs
    rows: List[List[object]] = []
    for workload, values in series.items():
        rows.append([workload] + [float(values.get(c, float("nan"))) for c in configs])
    return format_table(headers, rows, title=title)

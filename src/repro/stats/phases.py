"""Per-phase stall attribution (scenario runs).

A phase-structured run carries ``RunResult.phase_stats``: for every phase
of the scenario, the counter deltas each core accumulated while executing
that phase's slice of its trace.  The helpers here turn those deltas into
the paper's stall taxonomy (busy / other / SB full / SB drain / violation)
reported *per phase*, so qualitatively different sharing patterns inside
one run can be compared directly instead of being averaged away.

Attribution policy: cycles belong to the phase whose operations charged
them.  End-of-trace work (store-buffer drain, final speculation commit) is
charged to the last phase.  A speculation that spans a phase boundary and
aborts is charged -- violation cycles and the replayed operations alike --
to the phase containing its checkpoint, i.e. where re-execution resumes
(the boundary snapshot is discarded on rollback and re-taken on the
re-crossing).  Phases that finish inside the measurement warmup window
report zero counters, except for warmup operations replayed after a
later speculation abort.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cpu.stats import BREAKDOWN_COMPONENTS, CoreStats
from ..engine.results import RunResult
from .report import format_table


def phase_labels(result: RunResult) -> List[str]:
    """Ordered, unique display labels (phase names may repeat)."""
    if not result.phase_names:
        return []
    return [f"{i + 1}:{name}" for i, name in enumerate(result.phase_names)]


def merged_phase_stats(result: RunResult) -> Dict[str, CoreStats]:
    """Per-phase stats merged over all cores, keyed by display label."""
    labels = phase_labels(result)
    merged: Dict[str, CoreStats] = {}
    for label, per_core in zip(labels, result.phase_stats or []):
        total = CoreStats()
        for stats in per_core:
            total.merge(stats)
        merged[label] = total
    return merged


def phase_breakdown(result: RunResult,
                    normalize: bool = True) -> Dict[str, Dict[str, float]]:
    """Stall-taxonomy breakdown per phase.

    With ``normalize`` (the default) each component is a percentage of
    that phase's own accounted cycles, so phases of different lengths are
    comparable; otherwise raw cycle counts are returned.
    """
    out: Dict[str, Dict[str, float]] = {}
    for label, stats in merged_phase_stats(result).items():
        values = {name: float(getattr(stats, name))
                  for name in BREAKDOWN_COMPONENTS}
        if normalize:
            total = sum(values.values())
            values = {name: (100.0 * v / total if total else 0.0)
                      for name, v in values.items()}
        out[label] = values
    return out


def format_phase_breakdown(result: RunResult,
                           title: Optional[str] = None) -> str:
    """Per-phase stall table for one run (the ``scenario run`` output)."""
    merged = merged_phase_stats(result)
    percentages = phase_breakdown(result, normalize=True)
    num_cores = max(1, len(result.core_stats))
    headers = ["phase", "cycles/core"] + [f"{c} %" for c in BREAKDOWN_COMPONENTS] \
        + ["aborts"]
    rows: List[List[object]] = []
    for label, stats in merged.items():
        row: List[object] = [label, f"{stats.total_accounted() / num_cores:.0f}"]
        row.extend(percentages[label][c] for c in BREAKDOWN_COMPONENTS)
        row.append(stats.aborts)
        rows.append(row)
    if title is None:
        title = (f"Per-phase stall breakdown: {result.workload} "
                 f"(% of each phase's accounted cycles)")
    return format_table(headers, rows, title=title)

"""Runtime breakdowns and speedups.

These helpers convert :class:`~repro.engine.results.RunResult` objects into
the two presentations the paper uses:

* speedup bars relative to a baseline run (Figure 8), and
* stacked runtime breakdowns normalised to a baseline run's total
  (Figures 9, 11, 12): each configuration's Busy / Other / SB full /
  SB drain / Violation components are expressed as a percentage of the
  baseline configuration's runtime, so a shorter bar means a faster
  configuration.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ..engine.results import RunResult

#: Plot order used by the paper's stacked bars (bottom to top).
BREAKDOWN_ORDER = ("busy", "other", "sb_full", "sb_drain", "violation")


def speedup(result: RunResult, baseline: RunResult) -> float:
    """Speedup of ``result`` over ``baseline`` (higher is better)."""
    return result.speedup_over(baseline)


def speedup_table(results: Mapping[str, RunResult], baseline_key: str) -> Dict[str, float]:
    """Speedups of every configuration in ``results`` over one baseline."""
    baseline = results[baseline_key]
    return {name: speedup(run, baseline) for name, run in results.items()}


def normalized_breakdown(result: RunResult, baseline: RunResult) -> Dict[str, float]:
    """Runtime components of ``result`` as a % of the baseline's runtime."""
    baseline_total = sum(baseline.breakdown().values())
    values = result.breakdown()
    if baseline_total <= 0:
        return {name: 0.0 for name in BREAKDOWN_ORDER}
    return {name: 100.0 * values[name] / baseline_total for name in BREAKDOWN_ORDER}


def normalized_total(result: RunResult, baseline: RunResult) -> float:
    """Total normalised runtime (the height of the stacked bar)."""
    return sum(normalized_breakdown(result, baseline).values())


def ordering_stall_breakdown(result: RunResult) -> Dict[str, float]:
    """SB-full / SB-drain components as a % of this run's own cycles.

    This is the Figure 1 presentation: ordering stalls in a conventional
    implementation as a percentage of its own execution time.
    """
    values = result.breakdown()
    total = sum(values.values())
    if total <= 0:
        return {"sb_full": 0.0, "sb_drain": 0.0}
    return {
        "sb_full": 100.0 * values["sb_full"] / total,
        "sb_drain": 100.0 * values["sb_drain"] / total,
    }


def average_over_workloads(per_workload: Mapping[str, float]) -> float:
    """Arithmetic mean over workloads (the paper's "on average" numbers)."""
    values: List[float] = list(per_workload.values())
    if not values:
        return 0.0
    return sum(values) / len(values)

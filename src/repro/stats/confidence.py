"""Confidence intervals over multi-seed runs.

The paper uses the SimFlex sampling methodology and reports 95 % confidence
intervals on its speedup results.  The analogue here is running each
(configuration, workload) pair with several generator seeds and reporting
the mean and a Student-t confidence interval over the per-seed results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class ConfidenceInterval:
    """Mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    samples: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} ± {self.half_width:.3f} ({self.confidence:.0%})"


def mean_confidence_interval(samples: Sequence[float],
                             confidence: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval of the mean of ``samples``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly between 0 and 1")
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("need at least one sample")
    mean = float(values.mean())
    if values.size == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0,
                                  confidence=confidence, samples=1)
    sem = float(values.std(ddof=1) / np.sqrt(values.size))
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=values.size - 1))
    return ConfidenceInterval(mean=mean, half_width=t_crit * sem,
                              confidence=confidence, samples=int(values.size))

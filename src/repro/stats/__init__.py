"""Statistics: breakdowns, confidence intervals, and text reports."""

from .breakdown import (
    BREAKDOWN_ORDER,
    average_over_workloads,
    normalized_breakdown,
    normalized_total,
    ordering_stall_breakdown,
    speedup,
    speedup_table,
)
from .confidence import ConfidenceInterval, mean_confidence_interval
from .phases import (
    format_phase_breakdown,
    merged_phase_stats,
    phase_breakdown,
    phase_labels,
)
from .report import format_breakdown_table, format_series_table, format_table

__all__ = [
    "BREAKDOWN_ORDER",
    "average_over_workloads",
    "normalized_breakdown",
    "normalized_total",
    "ordering_stall_breakdown",
    "speedup",
    "speedup_table",
    "ConfidenceInterval",
    "mean_confidence_interval",
    "format_phase_breakdown",
    "merged_phase_stats",
    "phase_breakdown",
    "phase_labels",
    "format_table",
    "format_breakdown_table",
    "format_series_table",
]

"""Declarative registry of named scenarios (mirrors the config registry).

Each short-name maps to a :class:`~repro.scenarios.spec.ScenarioSpec`.
Registered names are immediately usable wherever a workload preset name is
accepted: the campaign executor and result cache, the CLI's
``scenario run`` / ``sweep`` / ``simulate`` commands, and the scenario
figure driver.  New scenarios are one registration::

    from repro.scenarios import DEFAULT_SCENARIO_REGISTRY, PhaseSpec, ScenarioSpec

    DEFAULT_SCENARIO_REGISTRY.register(ScenarioSpec(
        name="my-scenario",
        description="what it models",
        phases=(
            PhaseSpec("warm", 800, workload=preset("apache")),
            PhaseSpec("storm", 800, pattern="false_sharing",
                      params={"hot_blocks": 2}),
            PhaseSpec("cool", 800, workload=preset("apache")),
        ),
    ))
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ScenarioError
from ..workloads.presets import WORKLOAD_PRESETS, preset
from .spec import PhaseSpec, ScenarioSpec


class ScenarioRegistry:
    """Mapping of scenario short-names to :class:`ScenarioSpec`.

    Iteration order is registration order, so sweeps over ``names()`` are
    deterministic.
    """

    def __init__(self, scenarios: Optional[Dict[str, ScenarioSpec]] = None) -> None:
        self._scenarios: Dict[str, ScenarioSpec] = dict(scenarios or {})

    # -- registration --------------------------------------------------------

    def register(self, spec: ScenarioSpec) -> ScenarioSpec:
        """Register ``spec`` under its own name."""
        if spec.name in self._scenarios:
            raise ScenarioError(f"scenario {spec.name!r} is already registered")
        if spec.name in WORKLOAD_PRESETS:
            # Name resolution checks presets first, so a preset-shadowing
            # scenario would be registered but silently unreachable.
            raise ScenarioError(
                f"scenario name {spec.name!r} collides with a workload preset"
            )
        self._scenarios[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Remove a registration (mainly for tests and ad-hoc sweeps)."""
        if name not in self._scenarios:
            raise ScenarioError(f"scenario {name!r} is not registered")
        del self._scenarios[name]

    # -- lookup --------------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        return tuple(self._scenarios)

    def __contains__(self, name: object) -> bool:
        return name in self._scenarios

    def __iter__(self) -> Iterator[str]:
        return iter(self._scenarios)

    def __len__(self) -> int:
        return len(self._scenarios)

    def get(self, name: str) -> ScenarioSpec:
        """Look up the scenario registered under ``name``."""
        try:
            return self._scenarios[name]
        except KeyError:
            raise ScenarioError(
                f"unknown scenario {name!r}; known: {', '.join(self.names())}"
            ) from None

    def describe_all(self) -> List[Dict[str, str]]:
        """Printable summaries in registration order (``scenario list``)."""
        return [self._scenarios[name].describe() for name in self._scenarios]


# ---------------------------------------------------------------------------
# Built-in scenarios.  Durations are defaults; experiment settings rescale
# them proportionally (ScenarioSpec.scaled), so what matters is the ratio.

def _builtin_scenarios() -> Tuple[ScenarioSpec, ...]:
    return (
        ScenarioSpec(
            name="handoff-pipeline",
            description="streaming pipeline: queue hand-off, rebalance "
                        "barrier, heavier hand-off",
            phases=(
                PhaseSpec("handoff", 1200, pattern="producer_consumer",
                          params={"slots": 32, "payload_blocks": 2}),
                PhaseSpec("rebalance", 600, pattern="barrier",
                          params={"interval": 30}),
                PhaseSpec("handoff-bulk", 1200, pattern="producer_consumer",
                          params={"slots": 16, "payload_blocks": 4}),
            ),
        ),
        ScenarioSpec(
            name="bsp-compute",
            description="bulk-synchronous scientific step: compute, "
                        "barrier, compute",
            phases=(
                PhaseSpec("compute-a", 1200, workload=preset("barnes")),
                PhaseSpec("barrier", 500, pattern="barrier",
                          params={"interval": 50, "spin_reads": 4}),
                PhaseSpec("compute-b", 1200, workload=preset("ocean")),
            ),
        ),
        ScenarioSpec(
            name="rw-cache-churn",
            description="shared cache: read-mostly lookups, write storm, "
                        "scan recovery",
            phases=(
                PhaseSpec("lookups", 1200, pattern="rw_lock",
                          params={"write_fraction": 0.05, "data_blocks": 16}),
                PhaseSpec("churn", 800, pattern="rw_lock",
                          params={"write_fraction": 0.6, "data_blocks": 16}),
                PhaseSpec("rescan", 1000, workload=preset("dss-db2")),
            ),
        ),
        ScenarioSpec(
            name="false-sharing-storm",
            description="web serving disturbed by a falsely-shared "
                        "counter array",
            phases=(
                PhaseSpec("serve", 1000, workload=preset("apache")),
                PhaseSpec("storm", 1000, pattern="false_sharing",
                          params={"hot_blocks": 2, "write_fraction": 0.8}),
                PhaseSpec("recover", 1000, workload=preset("apache")),
            ),
        ),
        ScenarioSpec(
            name="task-pool",
            description="work-stealing runtime: balanced start, barrier, "
                        "imbalanced tail with heavy stealing",
            phases=(
                PhaseSpec("balanced", 1200, pattern="work_stealing",
                          params={"steal_fraction": 0.05}),
                PhaseSpec("sync", 400, pattern="barrier",
                          params={"interval": 40}),
                PhaseSpec("drain", 1200, pattern="work_stealing",
                          params={"steal_fraction": 0.35}),
            ),
        ),
        ScenarioSpec(
            name="pattern-tour",
            description="every sharing-pattern primitive once, in sequence",
            phases=(
                PhaseSpec("producer-consumer", 800, pattern="producer_consumer"),
                PhaseSpec("barrier", 800, pattern="barrier"),
                PhaseSpec("false-sharing", 800, pattern="false_sharing"),
                PhaseSpec("rw-lock", 800, pattern="rw_lock"),
                PhaseSpec("work-stealing", 800, pattern="work_stealing"),
            ),
        ),
    )


#: The registry used by default throughout the campaign and CLI layers.
DEFAULT_SCENARIO_REGISTRY = ScenarioRegistry(
    {spec.name: spec for spec in _builtin_scenarios()})


def scenario_names() -> Tuple[str, ...]:
    """Registered scenario names, in registration order."""
    return DEFAULT_SCENARIO_REGISTRY.names()


def scenario_spec(name: str) -> ScenarioSpec:
    """Look up a scenario in the default registry."""
    return DEFAULT_SCENARIO_REGISTRY.get(name)

"""Scenario specifications: ordered phases over workloads and patterns.

A :class:`ScenarioSpec` is a declarative, ordered list of
:class:`PhaseSpec` entries.  Each phase pairs a duration (operations per
thread) with *either* a full :class:`~repro.workloads.spec.WorkloadSpec`
(the statistical background-mix generator) *or* a named sharing-pattern
primitive from :mod:`repro.scenarios.patterns` plus its parameters.  The
scenario engine splices the per-phase streams into one trace per thread;
the simulator then attributes stall cycles back to each phase.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import ScenarioError
from ..workloads.spec import WorkloadSpec
from .patterns import PATTERNS


@dataclass(frozen=True)
class PhaseSpec:
    """One phase: a duration plus what the threads do during it."""

    name: str
    ops_per_thread: int
    #: background-mix phase: a full workload specification.
    workload: Optional[WorkloadSpec] = None
    #: sharing-pattern phase: a primitive name from ``patterns.PATTERNS``.
    pattern: Optional[str] = None
    #: parameters forwarded to the pattern emitter.
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("phase name must be non-empty")
        if self.ops_per_thread <= 0:
            raise ScenarioError(
                f"phase {self.name!r} needs a positive ops_per_thread"
            )
        if (self.workload is None) == (self.pattern is None):
            raise ScenarioError(
                f"phase {self.name!r} must set exactly one of workload/pattern"
            )
        if self.pattern is not None and self.pattern not in PATTERNS:
            raise ScenarioError(
                f"phase {self.name!r} names unknown pattern {self.pattern!r}; "
                f"available: {', '.join(PATTERNS)}"
            )
        if self.params and self.pattern is None:
            raise ScenarioError(
                f"phase {self.name!r} has pattern params but no pattern"
            )

    def scaled(self, ops_per_thread: int) -> "PhaseSpec":
        return dataclasses.replace(self, ops_per_thread=ops_per_thread)


@dataclass(frozen=True)
class ScenarioSpec:
    """An ordered list of phases forming one workload scenario."""

    name: str
    description: str = ""
    phases: Tuple[PhaseSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if not self.phases:
            raise ScenarioError(f"scenario {self.name!r} needs at least one phase")
        object.__setattr__(self, "phases", tuple(self.phases))

    @property
    def total_ops_per_thread(self) -> int:
        return sum(p.ops_per_thread for p in self.phases)

    def scaled(self, ops_per_thread: int) -> "ScenarioSpec":
        """Rescale to a total trace length, preserving phase proportions.

        Every phase keeps at least one operation and the scaled lengths sum
        exactly to ``ops_per_thread`` (remainders are distributed to the
        earliest phases), so experiment settings can trade fidelity for
        runtime exactly as they do for plain workloads.
        """
        if ops_per_thread < len(self.phases):
            raise ScenarioError(
                f"cannot scale scenario {self.name!r} to {ops_per_thread} ops: "
                f"it has {len(self.phases)} phases"
            )
        total = self.total_ops_per_thread
        shares = [max(1, (p.ops_per_thread * ops_per_thread) // total)
                  for p in self.phases]
        index = 0
        while sum(shares) < ops_per_thread:
            shares[index % len(shares)] += 1
            index += 1
        while sum(shares) > ops_per_thread:
            largest = max(range(len(shares)), key=lambda i: (shares[i], -i))
            if shares[largest] <= 1:  # pragma: no cover - guarded above
                raise ScenarioError("scenario scaling underflow")
            shares[largest] -= 1
        phases = tuple(p.scaled(n) for p, n in zip(self.phases, shares))
        return dataclasses.replace(self, phases=phases)

    def phase_marks(self) -> List[Tuple[str, int]]:
        """The (name, ops) pairs recorded on generated traces."""
        return [(p.name, p.ops_per_thread) for p in self.phases]

    def describe(self) -> Dict[str, str]:
        """Printable summary (used by ``scenario list``)."""
        return {
            "name": self.name,
            "description": self.description,
            "phases": " -> ".join(p.name for p in self.phases),
            "ops/thread": str(self.total_ops_per_thread),
        }

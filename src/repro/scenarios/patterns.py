"""Sharing-pattern primitives: dedicated trace emitters per coherence idiom.

Each primitive emits one thread's slice of a collective access pattern
whose *coherence behaviour* -- not just its instruction mix -- matches a
well-known parallel idiom.  The single-spec workload generator blends
sharing styles statistically; these emitters instead construct the exact
block-level choreography (who writes, who reads, in what order) that
produces the idiom's characteristic traffic:

* ``producer_consumer`` -- ring hand-off through per-queue slot blocks:
  blocks written by thread *t* are read by thread *t+1*, the classic
  migratory transfer (remote dirty read, owner downgrade).
* ``barrier`` -- compute intervals separated by an atomic fetch-add on one
  shared counter block plus spin loads on a sense block: bursty all-thread
  atomic contention and a store-buffer drain at every episode.
* ``false_sharing`` -- every thread writes its *own word* of a small set
  of hot blocks: no data race exists at word granularity, yet block-level
  coherence ping-pongs ownership and invalidates all other writers.
* ``rw_lock`` -- a readers-writer lock: read-mostly sections touch widely
  read-shared data blocks that a periodic writer invalidates wholesale.
* ``work_stealing`` -- per-thread deques accessed locally through plain
  ops, with occasional steals that CAS a victim's top-index block and read
  its task blocks: mostly-private traffic with sporadic remote atomics.

Emitters draw randomness only from the RNG handed to them (a
per-(seed, thread, phase) stream -- see
:func:`repro.workloads.generator.phase_rng`), walk collective structures
by deterministic iteration index, and may emit slightly more operations
than asked; the scenario engine truncates to the exact phase length.

Address-map layout: pattern regions live between the workload generator's
migratory region and its shared heap (blocks 200k-299k), so phases of
either kind never collide on blocks by accident.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

import numpy as np

from ..errors import ScenarioError
from ..memory.address import WORD_BYTES
from ..trace.ops import MemOp, atomic, compute, fence, load, store
from ..workloads.generator import BLOCK_BYTES

#: Words per cache block (the unit false sharing is built from).
WORDS_PER_BLOCK = BLOCK_BYTES // WORD_BYTES

# Region bases (in blocks); disjoint from the workload generator's regions.
_QUEUE_BASE = 200_000
_BARRIER_BASE = 220_000
_FALSE_BASE = 240_000
_RWLOCK_BASE = 260_000
_DEQUE_BASE = 280_000

#: Emitter signature: (rng, thread_id, num_threads, count, params) -> ops.
PatternEmitter = Callable[
    [np.random.Generator, int, int, int, Mapping[str, object]], List[MemOp]]


def _word_addr(block: int, word: int) -> int:
    return block * BLOCK_BYTES + (word % WORDS_PER_BLOCK) * WORD_BYTES


def _param(params: Mapping[str, object], key: str, default: int) -> int:
    value = int(params.get(key, default))  # type: ignore[arg-type]
    if value <= 0:
        raise ScenarioError(f"pattern parameter {key!r} must be positive, got {value}")
    return value


def _fraction(params: Mapping[str, object], key: str, default: float) -> float:
    value = float(params.get(key, default))  # type: ignore[arg-type]
    if not 0.0 <= value <= 1.0:
        raise ScenarioError(f"pattern parameter {key!r} must lie in [0, 1], got {value}")
    return value


# ---------------------------------------------------------------------------
# producer-consumer queue hand-off

def emit_producer_consumer(rng: np.random.Generator, thread_id: int,
                           num_threads: int, count: int,
                           params: Mapping[str, object]) -> List[MemOp]:
    """Ring hand-off: thread *t* fills queue *t*, drains queue *t-1*.

    Producer and consumer walk the same slot sequence by iteration index,
    so every payload block is written by exactly one thread and then read
    by exactly one other -- a pure migratory pattern.  Params: ``slots``
    (ring capacity), ``payload_blocks`` (blocks per item), ``compute``
    (mean pacing cycles between items).
    """
    slots = _param(params, "slots", 32)
    payload = _param(params, "payload_blocks", 2)
    pacing = _param(params, "compute", 4)
    stride = 1 + slots * payload  # control block + payload slots
    own_base = _QUEUE_BASE + thread_id * stride
    prev_base = _QUEUE_BASE + ((thread_id - 1) % num_threads) * stride

    ops: List[MemOp] = []
    item = 0
    while len(ops) < count:
        slot = item % slots
        # Produce into the own queue: fill the slot, then publish the head.
        for j in range(payload):
            block = own_base + 1 + slot * payload + j
            ops.append(store(_word_addr(block, j), label="queue_fill"))
        ops.append(store(_word_addr(own_base, 0), label="queue_publish"))
        # Consume from the neighbour's queue: poll the head, read the slot,
        # retire the tail.
        ops.append(load(_word_addr(prev_base, 0), label="queue_poll"))
        for j in range(payload):
            block = prev_base + 1 + slot * payload + j
            ops.append(load(_word_addr(block, j), label="queue_take"))
        ops.append(store(_word_addr(prev_base, 1), label="queue_retire"))
        ops.append(compute(max(1, int(rng.geometric(1.0 / pacing)))))
        item += 1
    return ops


# ---------------------------------------------------------------------------
# barrier-synchronised compute phases

def emit_barrier(rng: np.random.Generator, thread_id: int, num_threads: int,
                 count: int, params: Mapping[str, object]) -> List[MemOp]:
    """Local compute intervals separated by sense-reversing barriers.

    Every episode is an atomic fetch-add on the shared arrival counter, a
    full fence, and a few spin loads on the sense block -- all threads on
    the same two blocks.  Params: ``interval`` (mean local ops between
    barriers), ``spin_reads``, ``local_blocks`` (per-thread scratch).
    """
    interval = _param(params, "interval", 40)
    spin_reads = _param(params, "spin_reads", 3)
    local_blocks = _param(params, "local_blocks", 64)
    counter = _BARRIER_BASE
    sense = _BARRIER_BASE + 1
    scratch = _BARRIER_BASE + 8 + thread_id * local_blocks

    ops: List[MemOp] = []
    while len(ops) < count:
        for _ in range(max(1, int(rng.geometric(1.0 / interval)))):
            draw = rng.random()
            block = scratch + int(rng.integers(0, local_blocks))
            if draw < 0.5:
                ops.append(compute(max(1, int(rng.geometric(1.0 / 3.0)))))
            elif draw < 0.8:
                ops.append(load(_word_addr(block, int(rng.integers(0, WORDS_PER_BLOCK))),
                                label="barrier_local"))
            else:
                ops.append(store(_word_addr(block, int(rng.integers(0, WORDS_PER_BLOCK))),
                                 label="barrier_local"))
        ops.append(atomic(_word_addr(counter, 0), label="barrier_arrive"))
        ops.append(fence(label="barrier_fence"))
        for _ in range(spin_reads):
            ops.append(load(_word_addr(sense, 0), label="barrier_spin"))
    return ops


# ---------------------------------------------------------------------------
# false sharing

def emit_false_sharing(rng: np.random.Generator, thread_id: int,
                       num_threads: int, count: int,
                       params: Mapping[str, object]) -> List[MemOp]:
    """Per-thread counters packed into shared blocks: distinct words, same
    block.

    Thread *t* only ever touches word ``t % 8`` of its group's hot blocks,
    so there is no word-level race -- yet every store invalidates the other
    threads' copies of the block.  Threads beyond one block's worth of
    words spill into a separate block group (a bigger "counter array").
    Params: ``hot_blocks`` (blocks per group), ``write_fraction``,
    ``compute`` (mean pacing cycles).
    """
    hot_blocks = _param(params, "hot_blocks", 4)
    write_fraction = _fraction(params, "write_fraction", 0.7)
    pacing = _param(params, "compute", 2)
    group = thread_id // WORDS_PER_BLOCK
    word = thread_id % WORDS_PER_BLOCK
    base = _FALSE_BASE + group * hot_blocks

    ops: List[MemOp] = []
    i = 0
    while len(ops) < count:
        block = base + i % hot_blocks
        addr = _word_addr(block, word)
        if rng.random() < write_fraction:
            ops.append(store(addr, label="false_sharing"))
        else:
            ops.append(load(addr, label="false_sharing"))
        ops.append(compute(max(1, int(rng.geometric(1.0 / pacing)))))
        i += 1
    return ops


# ---------------------------------------------------------------------------
# readers-writer lock

def emit_rw_lock(rng: np.random.Generator, thread_id: int, num_threads: int,
                 count: int, params: Mapping[str, object]) -> List[MemOp]:
    """Read-mostly critical sections under a readers-writer lock.

    Readers bump the shared reader count (atomic + acquire fence), scan the
    protected data blocks, and decrement; occasionally a section is a write
    section instead: CAS on the writer word, stores over the same data
    blocks, releasing store.  The data blocks are therefore read-shared by
    every thread and periodically invalidated wholesale.  Params:
    ``data_blocks``, ``section_len``, ``write_fraction``.
    """
    data_blocks = _param(params, "data_blocks", 8)
    section_len = _param(params, "section_len", 4)
    write_fraction = _fraction(params, "write_fraction", 0.1)
    reader_word = _word_addr(_RWLOCK_BASE, 0)
    writer_word = _word_addr(_RWLOCK_BASE + 1, 0)
    data_base = _RWLOCK_BASE + 2

    ops: List[MemOp] = []
    while len(ops) < count:
        is_write = rng.random() < write_fraction
        length = max(1, int(rng.geometric(1.0 / section_len)))
        if is_write:
            ops.append(atomic(writer_word, label="rw_writer_acquire"))
            ops.append(fence(label="rw_acquire_fence"))
            for _ in range(length):
                block = data_base + int(rng.integers(0, data_blocks))
                ops.append(store(_word_addr(block, int(rng.integers(0, WORDS_PER_BLOCK))),
                                 label="rw_write"))
            ops.append(store(writer_word, label="rw_writer_release"))
        else:
            ops.append(atomic(reader_word, label="rw_reader_acquire"))
            ops.append(fence(label="rw_acquire_fence"))
            for _ in range(length):
                block = data_base + int(rng.integers(0, data_blocks))
                ops.append(load(_word_addr(block, int(rng.integers(0, WORDS_PER_BLOCK))),
                                label="rw_read"))
            ops.append(atomic(reader_word, label="rw_reader_release"))
        ops.append(compute(max(1, int(rng.geometric(1.0 / 3.0)))))
    return ops


# ---------------------------------------------------------------------------
# work-stealing deque

def emit_work_stealing(rng: np.random.Generator, thread_id: int,
                       num_threads: int, count: int,
                       params: Mapping[str, object]) -> List[MemOp]:
    """Chase-Lev-style deques: local push/pop, occasional remote steal.

    The owner works its own deque with plain loads/stores (bottom index +
    task blocks); with probability ``steal_fraction`` an iteration instead
    CASes a victim's top-index block and reads the stolen task's blocks.
    Params: ``deque_blocks``, ``task_len``, ``steal_fraction``, ``compute``.
    """
    deque_blocks = _param(params, "deque_blocks", 16)
    task_len = _param(params, "task_len", 3)
    steal_fraction = _fraction(params, "steal_fraction", 0.1)
    pacing = _param(params, "compute", 4)
    stride = 1 + deque_blocks  # top-index control block + task blocks

    def ctrl(owner: int) -> int:
        return _DEQUE_BASE + owner * stride

    ops: List[MemOp] = []
    item = 0
    while len(ops) < count:
        if num_threads > 1 and rng.random() < steal_fraction:
            victim = int(rng.integers(0, num_threads - 1))
            if victim >= thread_id:
                victim += 1
            ops.append(atomic(_word_addr(ctrl(victim), 0), label="steal_cas"))
            slot = int(rng.integers(0, deque_blocks))
            for j in range(task_len):
                block = ctrl(victim) + 1 + (slot + j) % deque_blocks
                ops.append(load(_word_addr(block, j), label="steal_task"))
        else:
            slot = item % deque_blocks
            for j in range(task_len):
                block = ctrl(thread_id) + 1 + (slot + j) % deque_blocks
                ops.append(store(_word_addr(block, j), label="deque_push"))
            ops.append(store(_word_addr(ctrl(thread_id), 1), label="deque_bottom"))
            for j in range(task_len):
                block = ctrl(thread_id) + 1 + (slot + j) % deque_blocks
                ops.append(load(_word_addr(block, j), label="deque_pop"))
            item += 1
        ops.append(compute(max(1, int(rng.geometric(1.0 / pacing)))))
    return ops


# ---------------------------------------------------------------------------
# registry of primitives

@dataclass(frozen=True)
class SharingPattern:
    """One named sharing-pattern primitive."""

    name: str
    description: str
    emit: PatternEmitter


PATTERNS: Dict[str, SharingPattern] = {
    p.name: p for p in (
        SharingPattern("producer_consumer",
                       "ring queue hand-off; migratory block transfers",
                       emit_producer_consumer),
        SharingPattern("barrier",
                       "compute intervals split by contended barrier episodes",
                       emit_barrier),
        SharingPattern("false_sharing",
                       "distinct words of shared blocks; invalidation ping-pong",
                       emit_false_sharing),
        SharingPattern("rw_lock",
                       "read-mostly sections; periodic wholesale invalidation",
                       emit_rw_lock),
        SharingPattern("work_stealing",
                       "local deque traffic with sporadic remote steal CASes",
                       emit_work_stealing),
    )
}


def pattern_names() -> Tuple[str, ...]:
    return tuple(PATTERNS)


def pattern(name: str) -> SharingPattern:
    """Look up a primitive by name."""
    try:
        return PATTERNS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown sharing pattern {name!r}; available: "
            f"{', '.join(pattern_names())}"
        ) from None

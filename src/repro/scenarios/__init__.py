"""Phase-structured scenario engine.

The single-spec workload generator produces one stationary mix per run;
real evaluations (and the paper's) hinge on how memory-ordering
speculation behaves across *qualitatively different* sharing patterns.
This package adds that axis:

* :mod:`~repro.scenarios.patterns` -- five sharing-pattern primitives
  (producer-consumer hand-off, barrier episodes, false sharing,
  readers-writer lock, work-stealing deques), each a dedicated trace
  emitter with the idiom's characteristic coherence behaviour;
* :mod:`~repro.scenarios.spec` -- :class:`PhaseSpec`/:class:`ScenarioSpec`,
  a declarative ordered list of phases mixing primitives with full
  :class:`~repro.workloads.spec.WorkloadSpec` background mixes;
* :mod:`~repro.scenarios.engine` -- phase splicing with deterministic
  per-(seed, thread, phase) RNG streams;
* :mod:`~repro.scenarios.registry` -- a runtime-extensible registry of
  built-in scenarios, plugged into the campaign job model and the CLI.

Simulation results for phase-structured traces carry per-phase stall
attribution (see :mod:`repro.stats.phases`), so each phase reports its own
busy / other / SB-full / SB-drain / violation breakdown.
"""

from .engine import emit_phase_ops, generate_scenario
from .patterns import PATTERNS, SharingPattern, pattern, pattern_names
from .registry import (
    DEFAULT_SCENARIO_REGISTRY,
    ScenarioRegistry,
    scenario_names,
    scenario_spec,
)
from .spec import PhaseSpec, ScenarioSpec

__all__ = [
    "DEFAULT_SCENARIO_REGISTRY",
    "PATTERNS",
    "PhaseSpec",
    "ScenarioRegistry",
    "ScenarioSpec",
    "SharingPattern",
    "emit_phase_ops",
    "generate_scenario",
    "pattern",
    "pattern_names",
    "scenario_names",
    "scenario_spec",
]

"""Phase splicing: turn a :class:`ScenarioSpec` into a multithreaded trace.

Each thread's stream is the concatenation of its per-phase streams.  Every
(seed, thread, phase) triple gets an independent RNG
(:func:`repro.workloads.generator.phase_rng`), so:

* the same (spec, seed) always yields bitwise-identical traces,
* threads differ from each other within a phase, and
* editing one phase of a scenario leaves every other phase's operations
  unchanged.

Workload phases run the existing background-mix generator over the phase's
:class:`~repro.workloads.spec.WorkloadSpec`; pattern phases call the named
sharing-pattern emitter.  Both emit at least the phase length and are
truncated to it exactly, so phase boundaries land on the same operation
index in every thread -- which is what lets the core model attribute stall
cycles per phase by position alone.
"""

from __future__ import annotations

from typing import List

from ..trace.ops import MemOp
from ..trace.trace import MultiThreadedTrace, Trace
from ..workloads.generator import SyntheticWorkloadGenerator, phase_rng
from .patterns import PATTERNS
from .spec import PhaseSpec, ScenarioSpec


def emit_phase_ops(phase: PhaseSpec, phase_index: int, thread_id: int,
                   num_threads: int, seed: int) -> List[MemOp]:
    """Emit exactly ``phase.ops_per_thread`` operations for one thread."""
    rng = phase_rng(seed, thread_id, phase_index)
    count = phase.ops_per_thread
    if phase.workload is not None:
        generator = SyntheticWorkloadGenerator(phase.workload, num_threads, seed)
        ops = generator.emit_ops(thread_id, rng, count)
    else:
        assert phase.pattern is not None
        ops = PATTERNS[phase.pattern].emit(rng, thread_id, num_threads,
                                           count, phase.params)
    del ops[count:]
    return ops


def generate_scenario(spec: ScenarioSpec, num_threads: int,
                      seed: int = 0) -> MultiThreadedTrace:
    """Generate the phase-spliced trace for ``spec``."""
    traces: List[Trace] = []
    for thread_id in range(num_threads):
        ops: List[MemOp] = []
        for phase_index, phase in enumerate(spec.phases):
            ops.extend(emit_phase_ops(phase, phase_index, thread_id,
                                      num_threads, seed))
        traces.append(Trace(ops, thread_id=thread_id))
    return MultiThreadedTrace(traces, name=spec.name, seed=seed,
                              phases=spec.phase_marks())

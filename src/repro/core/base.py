"""Shared speculation machinery for InvisiFence and ASO controllers.

:class:`SpeculativeController` implements the mechanisms of Section 3 of
the paper, independent of the policy that decides *when* to speculate:

* **Speculation initiation** -- take a register checkpoint
  (:meth:`begin_speculation`).
* **Commit** -- once the store buffer is empty, flash-clear the
  speculatively-read/written bits, making the whole speculative sequence
  visible atomically (:meth:`commit_all`); constant time, no arbitration.
* **Abort** -- flash-invalidate speculatively written blocks, drop
  speculative store-buffer entries, restore the checkpoint, and charge the
  discarded work to violation cycles (:meth:`abort_to`).
* **Violation detection** -- the memory system calls
  :meth:`on_external_conflict` when an external request hits a
  speculatively accessed block; depending on the configured policy the
  controller aborts immediately or defers the request while it tries to
  commit (commit-on-violate, Section 3.2).
* **Forced commit** -- a fill that would evict a speculatively accessed
  block first commits the speculation (:meth:`forced_commit`).

Subclasses provide the speculation policy by implementing
:meth:`process_op` and may hook :meth:`_after_commit` / :meth:`_after_abort`.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..coherence.messages import ConflictResolution
from ..consistency.base import ConsistencyController
from ..config import ViolationPolicy
from ..errors import SpeculationError
from .checkpoint import Checkpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cpu.core import Core


class SpeculativeController(ConsistencyController):
    """Checkpoint/rollback speculation on top of the base controller."""

    def __init__(self, core: "Core") -> None:
        super().__init__(core)
        self.spec_config = self.config.speculation
        self._checkpoints: List[Checkpoint] = []
        self._ckpt_counter = 0
        #: bumped whenever a speculation episode ends; stale deferred events
        #: (aborts, commit checks) carry the epoch they were scheduled in
        #: and are ignored if it no longer matches.
        self._spec_epoch = 0
        #: latest commit-check time already scheduled (avoids duplicates).
        self._next_commit_check: Optional[int] = None
        #: forward-progress guard used by continuous speculation: after an
        #: abort, further conflicting requests are deferred (commit-on-violate
        #: style) until this core manages to commit once.  Without this, two
        #: continuously speculating cores that keep writing each other's
        #: speculative blocks can abort each other forever, because neither
        #: can ever execute the contended access non-speculatively.
        self._defer_conflicts_until_commit = False
        #: set by subclasses that need the guard (continuous speculation).
        self._use_forward_progress_deferral = False
        #: start time of the current speculation episode (observability
        #: only; written when the first checkpoint of an episode is taken
        #: and read when the episode's closing span is recorded).
        self._obs_episode_start = 0

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------

    @property
    def speculating(self) -> bool:
        return bool(self._checkpoints)

    def active_checkpoint(self) -> Optional[Checkpoint]:
        return self._checkpoints[-1] if self._checkpoints else None

    def active_checkpoint_id(self) -> Optional[int]:
        ckpt = self.active_checkpoint()
        return ckpt.checkpoint_id if ckpt is not None else None

    def oldest_checkpoint(self) -> Optional[Checkpoint]:
        return self._checkpoints[0] if self._checkpoints else None

    @property
    def checkpoints_in_use(self) -> int:
        return len(self._checkpoints)

    def _l1(self):
        return self.mem.l1(self.core_id)

    # ------------------------------------------------------------------
    # Speculation lifecycle
    # ------------------------------------------------------------------

    def begin_speculation(self, now: int) -> Checkpoint:
        """Take a register checkpoint and enter (or deepen) speculation."""
        self._ckpt_counter += 1
        checkpoint = Checkpoint(
            checkpoint_id=(self.core_id << 24) | self._ckpt_counter,
            trace_index=self.core.trace_index,
            time=now,
            stats_snapshot=self.stats.snapshot(),
        )
        self._checkpoints.append(checkpoint)
        if len(self._checkpoints) == 1:
            self.stats.speculations += 1
            if self._obs is not None:
                self._obs_episode_start = now
        return checkpoint

    def commit_all(self, now: int, cov: bool = False) -> None:
        """Commit every in-flight speculation (constant-time flash clear)."""
        if not self._checkpoints:
            return
        first = self._checkpoints[0]
        self._l1().flash_clear_spec_bits()
        self.sb.mark_all_non_speculative(now)
        self.stats.commits += 1
        if cov:
            self.stats.cov_commits += 1
        self._credit_spec_cycles_on_commit(now, first)
        if self._obs is not None:
            self._obs.sim_span(
                self.core_id, "spec.episode", self._obs_episode_start, now,
                {"outcome": "cov-commit" if cov else "commit",
                 "checkpoints": len(self._checkpoints)})
        self._checkpoints.clear()
        self._defer_conflicts_until_commit = False
        self._end_episode()
        self._after_commit(now)

    def commit_checkpoint(self, checkpoint: Checkpoint, now: int) -> None:
        """Commit a single (oldest) checkpoint, keeping younger ones alive."""
        if not self._checkpoints or self._checkpoints[0] is not checkpoint:
            raise SpeculationError("only the oldest checkpoint can commit")
        self._l1().flash_clear_spec_bits(checkpoint.checkpoint_id)
        self.sb.mark_all_non_speculative(now, checkpoint.checkpoint_id)
        self.stats.commits += 1
        self._credit_spec_cycles_on_commit(now, checkpoint)
        self._defer_conflicts_until_commit = False
        self._checkpoints.pop(0)
        if not self._checkpoints:
            if self._obs is not None:
                self._obs.sim_span(
                    self.core_id, "spec.episode",
                    self._obs_episode_start, now, {"outcome": "commit"})
            self._end_episode()
        self._after_commit(now)

    def abort_to(self, checkpoint: Checkpoint, now: int, cov: bool = False,
                 cause: str = "conflict") -> None:
        """Abort ``checkpoint`` and every younger one, rolling the core back.

        ``cause`` labels the rollback for telemetry only (it never affects
        simulated behaviour): ``"external-write"`` / ``"external-read"``
        for conflict-triggered aborts, ``"cov-timeout"`` when a
        commit-on-violate deferral missed its deadline.
        """
        if checkpoint not in self._checkpoints:
            raise SpeculationError("cannot abort to an inactive checkpoint")
        index = self._checkpoints.index(checkpoint)
        discarded = self._checkpoints[index:]
        kept = self._checkpoints[:index]

        elapsed = max(0, now - checkpoint.time)
        self.stats.rollback_to(checkpoint.stats_snapshot, elapsed)
        self.stats.aborts += 1
        if cov:
            self.stats.cov_aborts += 1
        self.stats.spec_cycles += elapsed

        l1 = self._l1()
        if kept:
            for dead in discarded:
                l1.flash_invalidate_spec_written(dead.checkpoint_id)
                self.sb.flash_invalidate_speculative(now, dead.checkpoint_id)
        else:
            l1.flash_invalidate_spec_written()
            self.sb.flash_invalidate_speculative(now)

        if self._obs is not None:
            rolled_back = max(0, self.core.trace_index - checkpoint.trace_index)
            self._obs.count(f"spec.abort.{cause}")
            if kept:
                self._obs.sim_instant(
                    self.core_id, "spec.partial-abort", now,
                    {"cause": cause, "rolled_back": rolled_back})
            else:
                self._obs.sim_span(
                    self.core_id, "spec.episode",
                    self._obs_episode_start, now,
                    {"outcome": "abort", "cause": cause,
                     "rolled_back": rolled_back, "cov": cov})
        self._checkpoints = kept
        if not kept:
            self._end_episode()
        if self._use_forward_progress_deferral:
            self._defer_conflicts_until_commit = True
        self.core.rollback(checkpoint.trace_index, now)
        self._after_abort(now)

    def _end_episode(self) -> None:
        self._spec_epoch += 1
        self._next_commit_check = None

    def _credit_spec_cycles_on_commit(self, now: int, checkpoint: Checkpoint) -> None:
        """Account time spent speculating when a checkpoint commits."""
        end = checkpoint.close_time if checkpoint.close_time is not None else now
        self.stats.spec_cycles += max(0, end - checkpoint.time)

    # -- subclass hooks ---------------------------------------------------

    def _after_commit(self, now: int) -> None:
        """Hook invoked after a commit (continuous mode reopens chunks)."""

    def _after_abort(self, now: int) -> None:
        """Hook invoked after an abort."""

    def _commit_allowed(self, now: int) -> bool:
        """May an opportunistic commit happen right now?"""
        return True

    # ------------------------------------------------------------------
    # Opportunistic commit checks
    # ------------------------------------------------------------------

    def _schedule_commit_check(self, time: int) -> None:
        if self._next_commit_check is not None and self._next_commit_check >= time:
            return
        self._next_commit_check = time
        epoch = self._spec_epoch
        self.core.schedule_call(time, lambda now, e=epoch: self._commit_check(now, e))

    def _commit_check(self, now: int, epoch: int) -> None:
        if epoch != self._spec_epoch or not self.speculating:
            return
        self._try_commit(now)

    def _try_commit(self, now: int) -> None:
        """Commit if the store buffer is empty, else re-arm the check."""
        if self.sb.is_empty(now) and self._commit_allowed(now):
            self.commit_all(now)
            return
        drain = self.sb.drain_time(now)
        if drain > now:
            self._schedule_commit_check(drain)

    def _commit_or_schedule(self, now: int) -> None:
        """Called after each speculative op: arm the opportunistic commit.

        The commit itself always happens through a scheduled event at the
        store buffer's drain time, never inline: ``now`` here is the
        *finish* time of the op being processed, which generally lies in
        the future relative to the global event clock.  Committing inline
        would clear the speculative bits before conflicting requests from
        other cores (which arrive earlier in simulated time) had a chance
        to observe them, silently shrinking the vulnerability window.
        """
        if not self.speculating:
            return
        self._schedule_commit_check(max(now, self.sb.drain_time(now)))

    # ------------------------------------------------------------------
    # Memory-system listener interface
    # ------------------------------------------------------------------

    def on_external_conflict(self, block_addr: int, is_write: bool,
                             arrival_time: int) -> ConflictResolution:
        """Resolve an external request that conflicts with our speculation."""
        if not self.speculating:
            return ConflictResolution(extra_delay=0)
        target = self._conflict_checkpoint(block_addr)
        if target is None:
            return ConflictResolution(extra_delay=0)

        if (self.spec_config.violation_policy is ViolationPolicy.COMMIT_ON_VIOLATE
                or self._defer_conflicts_until_commit):
            return self._resolve_commit_on_violate(target, arrival_time)

        epoch = self._spec_epoch
        ckpt_id = target.checkpoint_id
        cause = "external-write" if is_write else "external-read"
        self.core.schedule_call(
            arrival_time,
            lambda now, e=epoch, c=ckpt_id, x=cause:
                self._deferred_abort(now, e, c, cov=False, cause=x),
        )
        return ConflictResolution(extra_delay=0, aborted=True)

    def _resolve_commit_on_violate(self, target: Checkpoint,
                                   arrival_time: int) -> ConflictResolution:
        """Defer the request while we try to commit (CoV, Section 3.2)."""
        ready = max(arrival_time, self.sb.drain_time(arrival_time))
        deadline = arrival_time + self.spec_config.cov_timeout
        epoch = self._spec_epoch
        if ready <= deadline:
            self.core.schedule_call(
                ready,
                lambda now, e=epoch, d=deadline: self._cov_commit(now, e, d),
            )
            return ConflictResolution(extra_delay=ready - arrival_time, deferred=True)
        ckpt_id = target.checkpoint_id
        self.core.schedule_call(
            deadline,
            lambda now, e=epoch, c=ckpt_id:
                self._deferred_abort(now, e, c, cov=True, cause="cov-timeout"),
        )
        return ConflictResolution(extra_delay=deadline - arrival_time, deferred=True)

    def _conflict_checkpoint(self, block_addr: int) -> Optional[Checkpoint]:
        """Pick the checkpoint that must roll back for a conflict on a block.

        The speculative bits record which checkpoint first touched the
        block; rollback must restore the state *before* that access, so the
        oldest matching checkpoint is chosen.  If the bits are no longer
        available (the block was already invalidated) the oldest in-flight
        checkpoint is chosen conservatively.
        """
        if not self._checkpoints:
            return None
        block = self._l1().lookup(block_addr, touch=False)
        ids = block.speculation_ids() if block is not None else set()
        if ids:
            for checkpoint in self._checkpoints:
                if checkpoint.checkpoint_id in ids:
                    return checkpoint
        return self._checkpoints[0]

    def _deferred_abort(self, now: int, epoch: int, checkpoint_id: int,
                        cov: bool, cause: str = "conflict") -> None:
        if epoch != self._spec_epoch or not self.speculating:
            return
        target = next((c for c in self._checkpoints
                       if c.checkpoint_id == checkpoint_id), None)
        if target is None:
            target = self._checkpoints[0]
        self.abort_to(target, now, cov=cov, cause=cause)

    def _cov_commit(self, now: int, epoch: int, deadline: int) -> None:
        """Try to complete a commit-on-violate deferral."""
        if epoch != self._spec_epoch or not self.speculating:
            return
        if self.sb.is_empty(now):
            self.commit_all(now, cov=True)
            return
        drain = self.sb.drain_time(now)
        if drain <= deadline:
            self.core.schedule_call(
                drain, lambda t, e=epoch, d=deadline: self._cov_commit(t, e, d)
            )
        else:
            oldest = self._checkpoints[0].checkpoint_id
            self.core.schedule_call(
                deadline,
                lambda t, e=epoch, c=oldest:
                    self._deferred_abort(t, e, c, cov=True, cause="cov-timeout"),
            )

    def on_measurement_reset(self) -> None:
        """Refresh live checkpoint snapshots after the warmup counters reset.

        Without this, a rollback to a checkpoint taken during warmup would
        restore pre-reset (already discarded) counter values.
        """
        for checkpoint in self._checkpoints:
            checkpoint.stats_snapshot = self.stats.snapshot()

    def forced_commit(self, now: int) -> int:
        """Commit so a speculatively accessed block may be evicted."""
        if not self.speculating:
            return now
        done = max(now, self.sb.drain_time(now))
        self.stats.forced_commits += 1
        if self._obs is not None:
            self._obs.count("spec.forced_commits")
        self.commit_all(done)
        return done

    # ------------------------------------------------------------------
    # Trace end
    # ------------------------------------------------------------------

    def at_trace_end(self, now: int):
        drain = self.sb.drain_time(now)
        if drain > now:
            self.stats.add_cycles("sb_drain", drain - now)
            return ("wait", drain)
        if self.speculating:
            self.commit_all(now)
        # Defensive cleanup: an operation in flight during a forced commit may
        # have tagged its block with the just-committed checkpoint id; those
        # bits belong to committed work and are cleared here.
        self._l1().flash_clear_spec_bits()
        return ("done", now)

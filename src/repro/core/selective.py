"""INVISIFENCE-SELECTIVE (Section 4.1).

Speculation is initiated only when an instruction would otherwise stall at
retirement because of the target consistency model's ordering rules:

* **SC**: any load or store that is ready to retire while the store buffer
  is not empty (the coalescing buffer is unordered, so both load and store
  retirement constitute a reordering), plus atomics that would stall.
* **TSO**: stores and atomics retiring past a non-empty store buffer, and
  full fences.
* **RMO**: full fences retiring past a non-empty store buffer, and atomic
  operations whose block misses in the L1.

Speculation commits opportunistically, in constant time, as soon as the
store buffer is empty.  With ``num_checkpoints == 2`` a second checkpoint
is taken a fixed number of operations into a speculation, so that a
violation against a block first touched after the second checkpoint only
rolls back to that point (Section 6.4's two-checkpoint experiment).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import ConsistencyModel
from ..errors import ConfigurationError
from ..trace.ops import MemOp, OpKind
from .base import SpeculativeController

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cpu.core import Core


class InvisiFenceSelective(SpeculativeController):
    """Speculate only on would-be ordering stalls."""

    def __init__(self, core: "Core") -> None:
        super().__init__(core)
        #: forward-progress guarantee: after an abort the next operation is
        #: executed non-speculatively (Section 3.2).
        self._force_nonspeculative_op = False

    # ------------------------------------------------------------------
    # Speculation trigger policy
    # ------------------------------------------------------------------

    def _should_speculate(self, op: MemOp, now: int) -> bool:
        model = self.config.consistency
        sb_busy = not self.sb.is_empty(now)
        if op.kind is OpKind.ATOMIC:
            # An atomic stalls retirement if earlier stores are outstanding
            # (SC/TSO drain requirement) or if its own block misses.
            if model is ConsistencyModel.RMO:
                return not self.mem.is_write_hit(self.core_id, op.address)
            return sb_busy or not self.mem.is_write_hit(self.core_id, op.address)
        if op.kind is OpKind.FENCE:
            # Fences are meaningful under TSO and RMO; SC needs none.
            return model is not ConsistencyModel.SC and sb_busy
        if op.kind is OpKind.LOAD:
            return model is ConsistencyModel.SC and sb_busy
        if op.kind is OpKind.STORE:
            return model in (ConsistencyModel.SC, ConsistencyModel.TSO) and sb_busy
        return False

    # ------------------------------------------------------------------
    # Op processing
    # ------------------------------------------------------------------

    def process_op(self, op: MemOp, now: int) -> int:
        if op.kind is OpKind.COMPUTE:
            finish = self._do_compute(op, now)
            self._note_ops(op.cycles)
            return finish

        if not self.speculating:
            if not self._force_nonspeculative_op and self._should_speculate(op, now):
                self.begin_speculation(now)
            else:
                self._force_nonspeculative_op = False
                return self._process_conventional(op, now)

        finish = self._process_speculative(op, now)
        self._note_ops(1)
        self._maybe_take_second_checkpoint(finish)
        self._commit_or_schedule(finish)
        return finish

    # -- conventional path (no ordering stall possible by construction) ----

    def _process_conventional(self, op: MemOp, now: int) -> int:
        if op.kind is OpKind.LOAD:
            if self.rules.load_requires_drain and not self.sb.is_empty(now):
                now = self._drain_store_buffer(now)
            return self._do_load(op, now)
        if op.kind is OpKind.STORE:
            return self._do_store(op, now)
        if op.kind is OpKind.ATOMIC:
            return self._do_atomic_blocking(op, now)
        if op.kind is OpKind.FENCE:
            if self.rules.fence_requires_drain and not self.sb.is_empty(now):
                now = self._drain_store_buffer(now)
            return self._do_fence_free(op, now)
        raise ConfigurationError(f"unhandled operation kind {op.kind}")  # pragma: no cover

    # -- speculative path ----------------------------------------------------

    def _process_speculative(self, op: MemOp, now: int) -> int:
        checkpoint_id = self.active_checkpoint_id()
        assert checkpoint_id is not None
        if op.kind is OpKind.LOAD:
            return self._do_load(op, now, spec_checkpoint=checkpoint_id)
        if op.kind is OpKind.STORE:
            return self._do_store(op, now, spec_checkpoint=checkpoint_id)
        if op.kind is OpKind.ATOMIC:
            return self._do_atomic_speculative(op, now, checkpoint_id)
        if op.kind is OpKind.FENCE:
            return self._do_fence_free(op, now)
        raise ConfigurationError(f"unhandled operation kind {op.kind}")  # pragma: no cover

    # -- bookkeeping ------------------------------------------------------------

    def _note_ops(self, count: int) -> None:
        checkpoint = self.active_checkpoint()
        if checkpoint is not None:
            checkpoint.note_ops(count)

    def _maybe_take_second_checkpoint(self, now: int) -> None:
        if self.spec_config.num_checkpoints < 2:
            return
        if len(self._checkpoints) >= self.spec_config.num_checkpoints:
            return
        active = self.active_checkpoint()
        if active is not None and active.ops >= self.spec_config.second_checkpoint_threshold:
            self.begin_speculation(now)

    def _after_abort(self, now: int) -> None:
        self._force_nonspeculative_op = True

"""INVISIFENCE-CONTINUOUS (Section 4.2).

Every operation executes inside a speculative chunk, which subsumes the
in-window mechanisms for detecting consistency violations (loads mark the
speculatively-read bits as soon as they access the cache, and every load is
part of some chunk).  To avoid overly frequent checkpointing a chunk must
reach a minimum size before it may close; once closed it commits as soon as
all of its stores have completed.  Two checkpoints are supported so that a
closed chunk's commit (waiting on store misses) overlaps with execution of
the next chunk.

A violation against a block touched by the *older* (closed) chunk rolls
both chunks back; a violation against a block touched only by the active
chunk rolls back just the active chunk.  Under the commit-on-violate
policy the conflicting request is instead deferred while the processor
tries to drain its store buffer and commit everything.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..errors import ConfigurationError
from ..trace.ops import MemOp, OpKind
from .base import SpeculativeController
from .checkpoint import Checkpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cpu.core import Core


class InvisiFenceContinuous(SpeculativeController):
    """Speculate continuously in chunks of a minimum size."""

    def __init__(self, core: "Core") -> None:
        super().__init__(core)
        if self.spec_config.num_checkpoints < 2:
            raise ConfigurationError(
                "InvisiFence-Continuous requires two checkpoints to pipeline "
                "chunk commit with execution"
            )
        # Continuous speculation can never fall back to non-speculative
        # execution, so forward progress after an abort is guaranteed by
        # deferring further conflicting requests until one commit succeeds.
        self._use_forward_progress_deferral = True

    # ------------------------------------------------------------------
    # Chunk helpers
    # ------------------------------------------------------------------

    def _pending_chunk(self) -> Optional[Checkpoint]:
        """The closed chunk waiting for its stores to complete, if any."""
        if self._checkpoints and self._checkpoints[0].closed:
            return self._checkpoints[0]
        return None

    def _active_chunk(self, now: int) -> Checkpoint:
        """The chunk accepting new operations (opened lazily)."""
        if self._checkpoints and not self._checkpoints[-1].closed:
            return self._checkpoints[-1]
        return self.begin_speculation(now)

    def _maybe_close_chunk(self, now: int) -> None:
        """Close the active chunk once it reaches the minimum size.

        Closing requires a free checkpoint: with only two checkpoints the
        active chunk keeps growing while an older chunk is still waiting to
        commit.
        """
        active = self._checkpoints[-1] if self._checkpoints else None
        if active is None or active.closed:
            return
        if active.ops < self.spec_config.min_chunk_size:
            return
        if self._pending_chunk() is not None:
            return
        active.close_time = now
        ready = max(now, self.sb.drain_time_for_checkpoint(active.checkpoint_id, now))
        epoch = self._spec_epoch
        chunk_id = active.checkpoint_id
        self.core.schedule_call(
            ready, lambda t, e=epoch, c=chunk_id: self._chunk_commit_check(t, e, c)
        )

    def _chunk_commit_check(self, now: int, epoch: int, chunk_id: int) -> None:
        if epoch != self._spec_epoch:
            return
        pending = self._pending_chunk()
        if pending is None or pending.checkpoint_id != chunk_id:
            return
        ready = self.sb.drain_time_for_checkpoint(chunk_id, now)
        if ready > now:
            self.core.schedule_call(
                ready, lambda t, e=epoch, c=chunk_id: self._chunk_commit_check(t, e, c)
            )
            return
        self.commit_checkpoint(pending, now)
        # The active chunk may itself have been waiting for a free checkpoint.
        self._maybe_close_chunk(now)

    def _commit_allowed(self, now: int) -> bool:
        """Whole-speculation commits only happen for CoV or at trace end."""
        return False

    # ------------------------------------------------------------------
    # Op processing
    # ------------------------------------------------------------------

    def process_op(self, op: MemOp, now: int) -> int:
        chunk = self._active_chunk(now)
        checkpoint_id = chunk.checkpoint_id

        if op.kind is OpKind.COMPUTE:
            finish = self._do_compute(op, now)
            chunk.note_ops(op.cycles)
        elif op.kind is OpKind.LOAD:
            finish = self._do_load(op, now, spec_checkpoint=checkpoint_id)
            chunk.note_ops(1)
        elif op.kind is OpKind.STORE:
            finish = self._do_store(op, now, spec_checkpoint=checkpoint_id)
            chunk.note_ops(1)
        elif op.kind is OpKind.ATOMIC:
            finish = self._do_atomic_speculative(op, now, checkpoint_id)
            chunk.note_ops(1)
        elif op.kind is OpKind.FENCE:
            finish = self._do_fence_free(op, now)
            chunk.note_ops(1)
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unhandled operation kind {op.kind}")

        self._maybe_close_chunk(finish)
        return finish

    # ------------------------------------------------------------------
    # Trace end
    # ------------------------------------------------------------------

    def at_trace_end(self, now: int):
        drain = self.sb.drain_time(now)
        if drain > now:
            self.stats.add_cycles("sb_drain", drain - now)
            return ("wait", drain)
        if self.speculating:
            # All stores have completed; commit everything.
            for checkpoint in list(self._checkpoints):
                if checkpoint.close_time is None:
                    checkpoint.close_time = now
            self.commit_all(now)
        # See SpeculativeController.at_trace_end: clear any bits tagged with
        # already-committed checkpoint ids.
        self._l1().flash_clear_spec_bits()
        return ("done", now)

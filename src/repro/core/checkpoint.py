"""Register checkpoints.

A checkpoint captures everything needed to roll a core back to the point
where speculation began: the trace index of the first speculative
operation, the time the checkpoint was taken, and a snapshot of the
breakdown counters so that discarded work can be re-classified as
violation cycles.  The hardware analogue is a shadow copy of the register
file and program counter (Section 3.1); in a trace-driven model the trace
index plays the role of the program counter and no register values exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class Checkpoint:
    """State needed to restart execution at a speculation boundary."""

    checkpoint_id: int
    trace_index: int
    time: int
    stats_snapshot: Dict[str, int]
    #: operations (weighted by compute-bundle size) retired under this
    #: checkpoint; used for chunk sizing and second-checkpoint thresholds.
    ops: int = 0
    #: for continuous speculation: the time the chunk stopped accepting new
    #: operations (None while the chunk is still open).
    close_time: Optional[int] = None

    @property
    def closed(self) -> bool:
        return self.close_time is not None

    def note_ops(self, count: int) -> None:
        self.ops += count

"""InvisiFence: post-retirement speculation for memory-ordering transparency.

This package is the paper's primary contribution (Sections 3 and 4):

* :mod:`repro.core.checkpoint` -- register checkpoints.
* :mod:`repro.core.base` -- the speculation mechanisms shared by every
  InvisiFence variant: speculative access bits in the L1, flash commit and
  flash abort, violation detection against external coherence requests,
  forced commit before evicting speculative blocks, and the
  commit-on-violate (CoV) deferral policy.
* :mod:`repro.core.selective` -- INVISIFENCE-SELECTIVE: speculate only when
  the target consistency model would otherwise stall retirement.
* :mod:`repro.core.continuous` -- INVISIFENCE-CONTINUOUS: execute the whole
  program as a sequence of speculative chunks, subsuming in-window
  consistency enforcement.
"""

from .checkpoint import Checkpoint
from .base import SpeculativeController
from .selective import InvisiFenceSelective
from .continuous import InvisiFenceContinuous

__all__ = [
    "Checkpoint",
    "SpeculativeController",
    "InvisiFenceSelective",
    "InvisiFenceContinuous",
]

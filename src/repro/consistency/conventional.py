"""Conventional (non-speculative) consistency implementations.

These are the baselines of Section 2.1 / Figure 2:

* **SC**: word-granularity FIFO store buffer; every load and every atomic
  stalls retirement until the store buffer drains; fences are unnecessary
  and retire for free.
* **TSO**: word-granularity FIFO store buffer; loads retire past
  outstanding stores, but atomics and full fences drain the store buffer.
* **RMO**: block-granularity coalescing store buffer; store hits retire
  directly into the L1; fences drain the store buffer; atomics stall only
  until they obtain write permission for their own block.

Capacity ("SB full") stalls arise naturally from the buffer sizes: the
FIFO buffers of SC/TSO fill during store bursts, while RMO's coalescing
buffer rarely fills because only outstanding misses occupy entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import ConsistencyModel
from ..errors import ConfigurationError
from ..trace.ops import MemOp, OpKind
from .base import ConsistencyController
from .rules import AtomicRequirement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cpu.core import Core


class ConventionalController(ConsistencyController):
    """Shared op dispatch for the three conventional implementations."""

    def process_op(self, op: MemOp, now: int) -> int:
        # Dispatch ordered by dynamic frequency (loads/stores dominate).
        kind = op.kind
        if kind is OpKind.LOAD:
            if self.rules.load_requires_drain and not self.sb.is_empty(now):
                now = self._drain_store_buffer(now)
            return self._do_load(op, now)
        if kind is OpKind.STORE:
            return self._do_store(op, now)
        if kind is OpKind.COMPUTE:
            return self._do_compute(op, now)
        if kind is OpKind.ATOMIC:
            return self._process_atomic(op, now)
        if kind is OpKind.FENCE:
            return self._process_fence(op, now)
        raise ConfigurationError(f"unhandled operation kind {op.kind}")  # pragma: no cover

    def _process_atomic(self, op: MemOp, now: int) -> int:
        if self.rules.atomic is AtomicRequirement.DRAIN_STORE_BUFFER \
                and not self.sb.is_empty(now):
            now = self._drain_store_buffer(now)
        # Under every conventional model the read-modify-write must obtain
        # write permission before it can retire (atomicity).
        return self._do_atomic_blocking(op, now)

    def _process_fence(self, op: MemOp, now: int) -> int:
        if self.rules.fence_requires_drain and not self.sb.is_empty(now):
            now = self._drain_store_buffer(now)
        return self._do_fence_free(op, now)


class ConventionalSC(ConventionalController):
    """Sequential consistency with a word-granularity FIFO store buffer."""


class ConventionalTSO(ConventionalController):
    """Total store order (SPARC TSO / x86-like) baseline."""


class ConventionalRMO(ConventionalController):
    """Relaxed memory order (SPARC RMO / Power / ARM-like) baseline."""


_CONTROLLERS = {
    ConsistencyModel.SC: ConventionalSC,
    ConsistencyModel.TSO: ConventionalTSO,
    ConsistencyModel.RMO: ConventionalRMO,
}


def conventional_controller(core: "Core") -> ConventionalController:
    """Instantiate the conventional controller for the core's model."""
    cls = _CONTROLLERS[core.config.consistency]
    return cls(core)

"""Base class for all consistency controllers.

A consistency controller is the piece of a core that decides how each
retiring operation interacts with the store buffer, the memory system, and
(for speculative implementations) the checkpoint/rollback machinery.  The
:class:`ConsistencyController` base class provides the op-processing
helpers shared by every implementation:

* classified cycle accounting (busy / other / sb_full / sb_drain),
* store-buffer capacity stalls,
* the load / store / atomic / fence / compute access paths,
* default (no-op) implementations of the memory-system listener hooks so
  that non-speculative controllers can be registered directly.

Concrete subclasses:

* :class:`repro.consistency.conventional.ConventionalController` (SC, TSO,
  RMO baselines),
* :class:`repro.core.selective.InvisiFenceSelective`,
* :class:`repro.core.continuous.InvisiFenceContinuous`,
* :class:`repro.aso.controller.ASOController`.
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from ..coherence.messages import AccessOutcome, ConflictResolution
from ..config import SystemConfig
from ..cpu.store_buffer import CoalescingStoreBuffer, StoreBufferBase, make_store_buffer
from ..errors import SimulationError
from ..trace.ops import MemOp
from .rules import OrderingRules, rules_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cpu.core import Core

#: Cycles charged as "busy" for retiring one operation.
RETIRE_CYCLES = 1


class ConsistencyController:
    """Common machinery for conventional and speculative controllers."""

    def __init__(self, core: "Core") -> None:
        self.core = core
        self.core_id = core.core_id
        self.config: SystemConfig = core.config
        self.mem = core.mem
        self.stats = core.stats
        assert self.config.store_buffer is not None
        self.sb: StoreBufferBase = make_store_buffer(self.config.store_buffer)
        self.rules: OrderingRules = rules_for(self.config.consistency)
        #: cached ``isinstance`` check for the per-store dispatch; subclasses
        #: that replace ``self.sb`` (ASO) must refresh it.
        self._sb_coalescing = isinstance(self.sb, CoalescingStoreBuffer)
        #: cached fast-path flag of the memory system (immutable per run).
        self._mem_fast = self.mem.fast
        #: observability slot (``None`` when telemetry is off); captured
        #: from the core, where ``build_system`` places it before attach.
        self._obs = core.obs

    # ------------------------------------------------------------------
    # Interface used by the Core
    # ------------------------------------------------------------------

    def process_op(self, op: MemOp, now: int) -> int:
        """Process one retiring operation; return its finish time."""
        raise NotImplementedError

    def at_trace_end(self, now: int) -> Tuple[str, int]:
        """Called when the trace is exhausted.

        Returns ``("done", finish_time)`` when the core may retire, or
        ``("wait", wake_time)`` when outstanding work (store buffer drain,
        speculation commit) must complete first.  The default behaviour
        waits for the store buffer to drain, charging the wait to
        ``sb_drain``.
        """
        drain = self.sb.drain_time(now)
        if drain > now:
            self.stats.add_cycles("sb_drain", drain - now)
            if self._obs is not None:
                self._obs.sim_span(self.core_id, "sb.drain", now, drain,
                                   {"at": "trace-end"})
            return ("wait", drain)
        return ("done", now)

    # ------------------------------------------------------------------
    # Memory-system listener hooks (overridden by speculative controllers)
    # ------------------------------------------------------------------

    def on_external_conflict(self, block_addr: int, is_write: bool,
                             arrival_time: int) -> ConflictResolution:
        """Non-speculative controllers never have speculative conflicts."""
        return ConflictResolution(extra_delay=0)

    def forced_commit(self, now: int) -> int:
        """Non-speculative controllers never pin blocks speculatively."""
        return now

    def on_measurement_reset(self) -> None:
        """Called when the core's warmup period ends and counters are zeroed."""

    # ------------------------------------------------------------------
    # Speculation status (queried by experiments; trivially false here)
    # ------------------------------------------------------------------

    @property
    def speculating(self) -> bool:
        return False

    def active_checkpoint_id(self) -> Optional[int]:
        return None

    # ------------------------------------------------------------------
    # Shared op-processing helpers
    # ------------------------------------------------------------------

    def _account(self, category: str, cycles: int) -> None:
        if cycles > 0:
            self.stats.add_cycles(category, cycles)

    def _do_compute(self, op: MemOp, now: int) -> int:
        self.stats.busy += op.cycles  # MemOp validates cycles >= 1
        return now + op.cycles

    def _wait_for_sb_slot(self, now: int) -> int:
        """Stall until the store buffer has a free entry (``SB full``)."""
        if not self.sb.is_full(now):
            return now
        free_at = self.sb.next_free_slot_time(now)
        if free_at <= now:
            raise SimulationError("store buffer reported full but no release time")
        self._account("sb_full", free_at - now)
        if self._obs is not None:
            self._obs.sim_span(self.core_id, "sb.full", now, free_at)
        return free_at

    def _drain_store_buffer(self, now: int, category: str = "sb_drain") -> int:
        """Stall until the store buffer is empty."""
        drain = self.sb.drain_time(now)
        if drain > now:
            self._account(category, drain - now)
            if self._obs is not None:
                self._obs.sim_span(self.core_id, "sb.drain", now, drain,
                                   {"at": category})
        return max(drain, now)

    def _do_load(self, op: MemOp, now: int,
                 spec_checkpoint: Optional[int] = None) -> int:
        """Perform a load; classify the miss latency as ``other``."""
        self.stats.loads += 1
        completion = self.mem.load_hit_time(self.core_id, op.address, now,
                                            spec_checkpoint)
        if completion is not None:
            # Hit fast path: no outcome object, no forced-commit delay.
            finish = max(completion, now + RETIRE_CYCLES)
            total = finish - now
            busy = min(total, RETIRE_CYCLES)
            stats = self.stats
            stats.busy += busy
            stats.other += total - busy
            return finish
        outcome = self.mem.access(self.core_id, op.address, is_write=False,
                                  now=now, spec_checkpoint=spec_checkpoint)
        return self._finish_access(outcome, now)

    def _finish_access(self, outcome: AccessOutcome, now: int) -> int:
        """Classify an access that stalls retirement until completion."""
        finish = max(outcome.completion_time, now + RETIRE_CYCLES)
        total = finish - now
        busy = min(total, RETIRE_CYCLES)
        forced = min(outcome.forced_commit_delay, total - busy)
        other = total - busy - forced
        self._account("busy", busy)
        self._account("sb_drain", forced)
        self._account("other", other)
        return finish

    def _do_store(self, op: MemOp, now: int,
                  spec_checkpoint: Optional[int] = None) -> int:
        """Perform a store through the store buffer.

        Stores never stall retirement except for store-buffer capacity.
        With a coalescing buffer, stores that already have write permission
        retire directly into the L1 (the paper's RMO/InvisiFence behaviour);
        with a FIFO buffer every store occupies an entry to preserve order.
        """
        self.stats.stores += 1

        if self._sb_coalescing:
            if self._mem_fast:
                if not self.sb.has_block(op.address, now):
                    completion = self.mem.store_hit_time(
                        self.core_id, op.address, now, spec_checkpoint)
                    if completion is not None:
                        return self._retire_store_hit(op, now, completion,
                                                      spec_checkpoint)
            elif self.mem.is_write_hit(self.core_id, op.address) \
                    and not self.sb.has_block(op.address, now):
                outcome = self.mem.access(self.core_id, op.address, is_write=True,
                                          now=now, spec_checkpoint=spec_checkpoint)
                return self._retire_store_hit(op, now, outcome.completion_time,
                                              spec_checkpoint)

        now = self._wait_for_sb_slot(now)
        outcome = self.mem.access(self.core_id, op.address, is_write=True,
                                  now=now, spec_checkpoint=spec_checkpoint)
        forced = outcome.forced_commit_delay
        if forced:
            self._account("sb_drain", forced)
            now += forced
        self.sb.add_store(op.address, now, outcome.completion_time,
                          speculative=spec_checkpoint is not None,
                          checkpoint_id=spec_checkpoint)
        self._account("busy", RETIRE_CYCLES)
        return now + RETIRE_CYCLES

    def _retire_store_hit(self, op: MemOp, now: int, completion: int,
                          spec_checkpoint: Optional[int]) -> int:
        """Retire a store whose block already had write permission."""
        if completion <= now + self.config.l1.hit_latency:
            self.stats.busy += RETIRE_CYCLES
            return now + RETIRE_CYCLES
        # A speculative store to a dirty block waits for the cleaning
        # writeback inside the store buffer.
        now = self._wait_for_sb_slot(now)
        self.sb.add_store(op.address, now, completion,
                          speculative=spec_checkpoint is not None,
                          checkpoint_id=spec_checkpoint)
        self.stats.busy += RETIRE_CYCLES
        return now + RETIRE_CYCLES

    def _do_atomic_blocking(self, op: MemOp, now: int,
                            category: str = "sb_drain") -> int:
        """Perform an atomic that stalls retirement until it completes.

        Used by all conventional implementations: the read-modify-write
        needs write permission before it may retire, and the wait is an
        ordering/atomicity stall.
        """
        self.stats.atomics += 1
        completion = self.mem.store_hit_time(self.core_id, op.address, now)
        if completion is None:
            completion = self.mem.access(self.core_id, op.address,
                                         is_write=True, now=now).completion_time
        finish = max(completion, now + 2 * RETIRE_CYCLES)
        total = finish - now
        busy = min(total, 2 * RETIRE_CYCLES)
        self._account("busy", busy)
        self._account(category, total - busy)
        return finish

    def _do_atomic_speculative(self, op: MemOp, now: int,
                               spec_checkpoint: int) -> int:
        """Perform an atomic inside a speculation: no retirement stall.

        Both halves of the read-modify-write stay within the same
        speculation, so atomicity is guaranteed by the all-or-nothing commit
        (Section 3.2).  A miss simply leaves a speculative entry in the
        store buffer.
        """
        self.stats.atomics += 1
        if self._mem_fast:
            if not self.sb.has_block(op.address, now):
                completion = self.mem.store_hit_time(
                    self.core_id, op.address, now, spec_checkpoint)
                if completion is not None:
                    return self._retire_atomic_hit(op, now, completion,
                                                   spec_checkpoint)
        elif self.mem.is_write_hit(self.core_id, op.address) \
                and not self.sb.has_block(op.address, now):
            outcome = self.mem.access(self.core_id, op.address, is_write=True,
                                      now=now, spec_checkpoint=spec_checkpoint)
            return self._retire_atomic_hit(op, now, outcome.completion_time,
                                           spec_checkpoint)
        now = self._wait_for_sb_slot(now)
        outcome = self.mem.access(self.core_id, op.address, is_write=True,
                                  now=now, spec_checkpoint=spec_checkpoint)
        forced = outcome.forced_commit_delay
        if forced:
            self._account("sb_drain", forced)
            now += forced
        self.sb.add_store(op.address, now, outcome.completion_time,
                          speculative=True, checkpoint_id=spec_checkpoint)
        self._account("busy", 2 * RETIRE_CYCLES)
        return now + 2 * RETIRE_CYCLES

    def _retire_atomic_hit(self, op: MemOp, now: int, completion: int,
                           spec_checkpoint: int) -> int:
        """Retire a speculative atomic whose block had write permission."""
        if completion <= now + self.config.l1.hit_latency:
            self._account("busy", 2 * RETIRE_CYCLES)
            return now + 2 * RETIRE_CYCLES
        now = self._wait_for_sb_slot(now)
        self.sb.add_store(op.address, now, completion,
                          speculative=True, checkpoint_id=spec_checkpoint)
        self._account("busy", 2 * RETIRE_CYCLES)
        return now + 2 * RETIRE_CYCLES

    def _do_fence_free(self, op: MemOp, now: int) -> int:
        """Retire a fence without any ordering stall."""
        self.stats.fences += 1
        self.stats.busy += RETIRE_CYCLES
        return now + RETIRE_CYCLES

"""Ordering-requirement tables (Figure 2 of the paper).

Each consistency model is described by what a load, store, atomic
operation, or full fence must wait for before it may retire:

=========  =============  ==========  ===================  ============
Model      Store buffer   Load        Atomic               Full fence
=========  =============  ==========  ===================  ============
SC         FIFO, word     drain SB    drain SB             (not needed)
TSO        FIFO, word     --          drain SB             drain SB
RMO        coalescing     --          complete own store   drain SB
=========  =============  ==========  ===================  ============

These rules drive both the conventional controllers and the speculation
*triggers* of InvisiFence-Selective (speculate exactly when a conventional
implementation would stall).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..config import ConsistencyModel


class AtomicRequirement(Enum):
    """What an atomic read-modify-write must wait for before retiring."""

    DRAIN_STORE_BUFFER = "drain_sb"
    COMPLETE_OWN_STORE = "complete_store"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OrderingRules:
    """Retirement requirements of one consistency model."""

    model: ConsistencyModel
    #: loads must wait for the store buffer to drain (SC only).
    load_requires_drain: bool
    #: stores must not be reordered with respect to earlier stores.  Both
    #: FIFO organisations preserve this implicitly; it matters only for
    #: speculative implementations that use an unordered coalescing buffer.
    store_order_required: bool
    atomic: AtomicRequirement
    #: full fences drain the store buffer ("not needed" under SC, where the
    #: hardware already enforces all orderings -- fences retire for free).
    fence_requires_drain: bool

    @property
    def description(self) -> str:
        relaxations = {
            ConsistencyModel.SC: "None",
            ConsistencyModel.TSO: "Store-to-load",
            ConsistencyModel.RMO: "All",
        }
        return relaxations[self.model]


_RULES = {
    ConsistencyModel.SC: OrderingRules(
        model=ConsistencyModel.SC,
        load_requires_drain=True,
        store_order_required=True,
        atomic=AtomicRequirement.DRAIN_STORE_BUFFER,
        fence_requires_drain=False,
    ),
    ConsistencyModel.TSO: OrderingRules(
        model=ConsistencyModel.TSO,
        load_requires_drain=False,
        store_order_required=True,
        atomic=AtomicRequirement.DRAIN_STORE_BUFFER,
        fence_requires_drain=True,
    ),
    ConsistencyModel.RMO: OrderingRules(
        model=ConsistencyModel.RMO,
        load_requires_drain=False,
        store_order_required=False,
        atomic=AtomicRequirement.COMPLETE_OWN_STORE,
        fence_requires_drain=True,
    ),
}


def rules_for(model: ConsistencyModel) -> OrderingRules:
    """Return the Figure 2 ordering rules for ``model``."""
    return _RULES[model]

"""Memory consistency models and their conventional implementations.

Figure 2 of the paper summarises how canonical implementations of SC, TSO,
and RMO differ: store buffer organisation, and which instruction classes
must wait for the store buffer to drain (or for their own store to
complete) before retiring.  :mod:`repro.consistency.rules` encodes that
table; :mod:`repro.consistency.conventional` implements the corresponding
non-speculative controllers used as baselines throughout the evaluation.
"""

from .base import ConsistencyController, RETIRE_CYCLES
from .rules import AtomicRequirement, OrderingRules, rules_for
from .conventional import (
    ConventionalController,
    ConventionalSC,
    ConventionalTSO,
    ConventionalRMO,
    conventional_controller,
)

__all__ = [
    "ConsistencyController",
    "RETIRE_CYCLES",
    "OrderingRules",
    "AtomicRequirement",
    "rules_for",
    "ConventionalController",
    "ConventionalSC",
    "ConventionalTSO",
    "ConventionalRMO",
    "conventional_controller",
]

"""Exception hierarchy for the InvisiFence reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class TraceError(ReproError):
    """A trace or trace operation is malformed."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class CoherenceError(SimulationError):
    """The coherence protocol observed an illegal state transition."""


class StoreBufferError(SimulationError):
    """A store buffer was used in a way that violates its invariants."""


class SpeculationError(SimulationError):
    """The speculation machinery (checkpoints, spec bits) was misused."""


class WorkloadError(ReproError):
    """A workload specification or generator is invalid."""


class StudyError(ReproError):
    """A study declaration, registration, or plan is invalid."""


class ScenarioError(WorkloadError):
    """A scenario specification, phase, or sharing pattern is invalid."""

"""Compile many studies into one deduplicated campaign job plan.

Several studies share cells -- the conventional-SC baseline appears in
figures 1, 8, 9, and 12 -- so running drivers back to back re-requests
the same simulations.  :func:`compile_plan` unions every study's grid
into a single plan whose ``unique_cells`` are simulated exactly once
(one prefetch), with the duplication measured so scripts and tests can
assert the dedup actually bites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from ..campaign.cache import ResultCache
from ..campaign.executor import CampaignReport
from ..campaign.registry import ConfigFactory, ConfigRegistry, DEFAULT_REGISTRY
from ..errors import StudyError
from .runner import StudyRunner, overlay_registry
from .spec import StudyCell, StudySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..experiments.common import ExperimentSettings


@dataclass
class StudyPlan:
    """The compiled union of several studies' grids at one scale."""

    settings: "ExperimentSettings"
    specs: Tuple[StudySpec, ...]
    #: every study's own expansion, in spec order.
    cells_by_study: Dict[str, List[StudyCell]]
    #: the deduplicated union, in first-appearance order.
    unique_cells: List[StudyCell]
    #: merged study-private configuration factories.
    extra_configs: Dict[str, ConfigFactory]

    @property
    def total_cells(self) -> int:
        """Sum of the per-study cell counts (before dedup)."""
        return sum(len(cells) for cells in self.cells_by_study.values())

    @property
    def deduplicated(self) -> int:
        return self.total_cells - len(self.unique_cells)

    def registry(self) -> ConfigRegistry:
        """The default registry (live) overlaid with every study's extras."""
        return overlay_registry(DEFAULT_REGISTRY, self.extra_configs)

    def runner(self, jobs: int = 1,
               cache: Optional[ResultCache] = None,
               engine: str = "fast", recorder=None) -> StudyRunner:
        """A study runner wired to this plan's merged registry."""
        return StudyRunner(self.settings, jobs=jobs, cache=cache,
                           registry=self.registry(), engine=engine,
                           recorder=recorder)

    def execute(self, study_runner: StudyRunner) -> CampaignReport:
        """Run the union once -- the single prefetch for every study."""
        study_runner.require_configs(self.extra_configs)
        return study_runner.run_cells(self.unique_cells)

    def describe(self) -> str:
        return (f"{self.total_cells} cells across {len(self.specs)} studies "
                f"-> {len(self.unique_cells)} unique jobs")


def compile_plan(specs: Iterable[StudySpec],
                 settings: "ExperimentSettings") -> StudyPlan:
    """Expand and union every study's grid against ``settings``."""
    specs = tuple(specs)
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise StudyError(f"duplicate study names in plan: {names}")

    extras: Dict[str, ConfigFactory] = {}
    for spec in specs:
        for name, factory in spec.extra_configs.items():
            if extras.setdefault(name, factory) is not factory:
                raise StudyError(
                    f"studies disagree on configuration {name!r}")

    cells_by_study: Dict[str, List[StudyCell]] = {
        spec.name: spec.cells(settings) for spec in specs}
    seen: Dict[StudyCell, None] = {}
    for cells in cells_by_study.values():
        for cell in cells:
            seen.setdefault(cell, None)
    return StudyPlan(settings=settings, specs=specs,
                     cells_by_study=cells_by_study,
                     unique_cells=list(seen), extra_configs=extras)

"""Study execution: multi-geometry campaign front-end and build context.

A :class:`StudyRunner` owns one
:class:`~repro.experiments.common.ExperimentRunner` per swept machine
size, all sharing the same worker-pool width, result cache, and
configuration registry (an overlay when studies bring private config
variants).  :func:`run_study` is the single entry point: expand the grid,
run every cell through the campaign executor, hand a
:class:`StudyContext` to the spec's ``build`` hook, and optionally write
JSON/CSV artifacts.

Imports from :mod:`repro.experiments` are deferred to call time: the
experiments layer imports this package (its drivers are facades over
registered specs), so a module-scope import here would be circular.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING, Union

from ..campaign.cache import ResultCache
from ..campaign.executor import CampaignReport
from ..campaign.registry import ConfigFactory, ConfigRegistry, DEFAULT_REGISTRY
from ..engine.results import RunResult
from ..errors import StudyError
from .artifacts import write_artifacts
from .metrics import METRICS, normalized_breakdown, speedup
from .spec import StudyCell, StudySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from pathlib import Path

    from ..experiments.common import ExperimentRunner, ExperimentSettings


def overlay_registry(base: ConfigRegistry,
                     extras: Mapping[str, ConfigFactory]) -> ConfigRegistry:
    """``base`` extended with ``extras``; re-adding the same factory is a no-op.

    A name already present with a *different* factory is a real conflict
    (the study would silently run someone else's machine), so it raises.
    """
    missing: Dict[str, ConfigFactory] = {}
    for name, factory in extras.items():
        if name in base:
            if base.factory(name) is not factory:
                raise StudyError(
                    f"study configuration {name!r} conflicts with an "
                    f"existing registration of the same name")
        else:
            missing[name] = factory
    if not missing:
        return base
    return ConfigRegistry(missing, parent=base)


class StudyRunner:
    """Shared campaign front-end across every machine size a plan sweeps."""

    def __init__(self, settings: "ExperimentSettings", jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 registry: Optional[ConfigRegistry] = None,
                 base_runner: Optional["ExperimentRunner"] = None,
                 engine: str = "fast", recorder=None) -> None:
        self.settings = settings
        self.jobs = jobs
        self.cache = cache
        self.engine = engine
        self.recorder = recorder
        self._runners: Dict[int, "ExperimentRunner"] = {}
        if base_runner is not None:
            # Adopt the caller's runner (and its memoized results) for the
            # settings' own machine size -- the facades pass the shared
            # runner the old drivers did, so simulations keep being reused
            # across figures.
            self._runners[settings.num_cores] = base_runner
            self.cache = base_runner.executor.cache if cache is None else cache
            registry = base_runner.executor.registry if registry is None \
                else registry
        self.registry = registry if registry is not None else DEFAULT_REGISTRY

    def require_configs(self, extras: Mapping[str, ConfigFactory]) -> None:
        """Make a study's private configuration variants resolvable."""
        if not extras:
            return
        self.registry = overlay_registry(self.registry, extras)
        for runner in self._runners.values():
            runner.executor.registry = self.registry

    def runner_for(self, num_cores: Optional[int] = None) -> "ExperimentRunner":
        """The (lazily created) runner for one machine size."""
        from ..experiments.common import ExperimentRunner

        if num_cores is None:
            num_cores = self.settings.num_cores
        if num_cores not in self._runners:
            scaled = self.settings if num_cores == self.settings.num_cores \
                else dataclasses.replace(self.settings, num_cores=num_cores)
            self._runners[num_cores] = ExperimentRunner(
                scaled, jobs=self.jobs, cache=self.cache,
                registry=self.registry, engine=self.engine,
                recorder=self.recorder)
        return self._runners[num_cores]

    def run_cells(self, cells: Sequence[StudyCell]) -> CampaignReport:
        """Run every cell, grouped per machine size (one campaign each).

        This is the prefetch: each group fans its missing cells out over
        the executor's worker pool; the build hooks afterwards only read
        memoized results.  Returns the summed campaign tallies.
        """
        groups: Dict[int, List[StudyCell]] = {}
        for cell in cells:
            groups.setdefault(cell.num_cores, []).append(cell)
        total = CampaignReport()
        for num_cores, group in groups.items():
            runner = self.runner_for(num_cores)
            runner.run_jobs([cell.job() for cell in group])
            total.merge(runner.last_report)
        return total


class StudyContext:
    """What a study's ``build`` hook sees: settings, runs, and metrics."""

    def __init__(self, spec: StudySpec, settings: "ExperimentSettings",
                 runner: StudyRunner, report: CampaignReport) -> None:
        self.spec = spec
        self.settings = settings
        self.study_runner = runner
        #: what the campaign actually did for this study's cells.
        self.report = report

    # -- raw results ---------------------------------------------------------

    def runner(self, cores: Optional[int] = None) -> "ExperimentRunner":
        return self.study_runner.runner_for(cores)

    def run(self, config: str, workload: str, seed: int,
            cores: Optional[int] = None) -> RunResult:
        return self.runner(cores).run(config, workload, seed)

    def runs(self, config: str, workload: str,
             cores: Optional[int] = None) -> List[RunResult]:
        """One result per seed (the runner's settings' seeds)."""
        return self.runner(cores).run_all_seeds(config, workload)

    # -- metric pipeline -----------------------------------------------------

    def mean_metric(self, metric: str, config: str, workload: str,
                    cores: Optional[int] = None) -> float:
        """Seed-mean of a named metric (see :data:`repro.studies.METRICS`)."""
        try:
            aggregate = METRICS[metric]
        except KeyError:
            raise StudyError(
                f"unknown metric {metric!r}; known: "
                f"{', '.join(sorted(METRICS))}") from None
        return aggregate(self.runs(config, workload, cores=cores))

    def speedup(self, config: str, workload: str, baseline: str) -> float:
        return speedup(self.runs(config, workload),
                       self.runs(baseline, workload))

    def normalized_breakdown(self, config: str, workload: str,
                             baseline: str) -> Dict[str, float]:
        """Breakdown of ``config`` as % of the baseline's runtime."""
        return normalized_breakdown(self.runs(config, workload),
                                    self.runs(baseline, workload))

    def speculation_fraction(self, config: str, workload: str) -> float:
        return METRICS["speculation_fraction"](self.runs(config, workload))


def run_study(study: Union[str, StudySpec],
              settings: Optional["ExperimentSettings"] = None,
              runner: Optional["ExperimentRunner"] = None,
              study_runner: Optional[StudyRunner] = None,
              jobs: int = 1,
              cache: Optional[ResultCache] = None,
              out_dir: Optional[Union[str, "Path"]] = None,
              engine: str = "fast", recorder=None):
    """Execute one study end to end; returns its result object.

    ``study`` is a :class:`StudySpec` or a name registered in
    :data:`~repro.studies.registry.DEFAULT_STUDY_REGISTRY`.  Pass
    ``runner`` (an :class:`ExperimentRunner`) to share memoized results
    with other drivers at the settings' machine size, or ``study_runner``
    to reuse a whole multi-geometry plan execution (e.g. after
    :meth:`StudyPlan.execute`).  With ``out_dir`` set, the study's JSON +
    CSV artifacts are written there.
    """
    from ..experiments.common import ExperimentSettings
    from .registry import DEFAULT_STUDY_REGISTRY

    spec = study if isinstance(study, StudySpec) \
        else DEFAULT_STUDY_REGISTRY.get(study)
    if settings is None:
        settings = ExperimentSettings()
    if study_runner is None:
        study_runner = StudyRunner(settings, jobs=jobs, cache=cache,
                                   base_runner=runner, engine=engine,
                                   recorder=recorder)
    study_runner.require_configs(spec.extra_configs)
    report = study_runner.run_cells(spec.cells(settings))
    result = spec.build(StudyContext(spec, settings, study_runner, report))
    if out_dir is not None:
        write_artifacts(spec, settings, spec.tabulate(result), out_dir)
    return result

"""Declarative study framework: one grid/metric/artifact pipeline.

The paper's evaluation is a matrix -- {SC, TSO, RMO} x {conventional,
InvisiFence-Selective, InvisiFence-Continuous, ASO} x workloads x seeds
(x machine sizes for the scaling study).  Instead of one bespoke driver
per figure, each study is a :class:`~repro.studies.spec.StudySpec`:

* a **grid** of configuration short-names x workloads/scenarios x seeds
  x core counts (axes default to the experiment settings, so one spec
  serves every scale);
* **named metric extractors** over :class:`~repro.engine.results.RunResult`
  and aggregators (speedup-vs-baseline, mean-CI, normalized breakdowns) in
  :mod:`~repro.studies.metrics`;
* a ``build`` hook that turns the executed grid into the figure's result
  object, and a ``tabulate`` hook that flattens it into structured tables.

Specs compile to a deduplicated campaign job plan
(:func:`~repro.studies.plan.compile_plan`) executed through the existing
:class:`~repro.campaign.executor.CampaignExecutor`/
:class:`~repro.campaign.cache.ResultCache`, and emit JSON + CSV artifacts
under ``results/`` (:mod:`~repro.studies.artifacts`) alongside the
original text tables.  The figure drivers in :mod:`repro.experiments` are
thin facades over registered specs; ``repro study list|run`` is the CLI
surface.  See ``EXPERIMENTS.md`` for the user-facing guide.

Import order note: :mod:`~repro.studies.metrics` and the other submodules
here must not import :mod:`repro.experiments` at module scope (the
experiments layer imports this package); runtime lookups are deferred.
"""

from .artifacts import ARTIFACT_SCHEMA_VERSION, StudyTable, write_artifacts
from .metrics import (
    METRICS,
    Metric,
    mean_breakdown,
    mean_breakdown_pct,
    mean_cycles,
    mean_speculation_fraction,
    mean_throughput,
    normalized_breakdown,
    speedup,
    speedup_interval,
)
from .plan import StudyPlan, compile_plan
from .registry import DEFAULT_STUDY_REGISTRY, StudyRegistry, register_study
from .runner import StudyContext, StudyRunner, run_study
from .spec import StudyCell, StudySpec

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "DEFAULT_STUDY_REGISTRY",
    "METRICS",
    "Metric",
    "StudyCell",
    "StudyContext",
    "StudyPlan",
    "StudyRegistry",
    "StudyRunner",
    "StudySpec",
    "StudyTable",
    "compile_plan",
    "mean_breakdown",
    "mean_breakdown_pct",
    "mean_cycles",
    "mean_speculation_fraction",
    "mean_throughput",
    "normalized_breakdown",
    "register_study",
    "run_study",
    "speedup",
    "speedup_interval",
    "write_artifacts",
]

"""Structured study artifacts: one JSON + one CSV per study under ``results/``.

Every study emits machine-readable artifacts alongside its text table:

* ``results/<study>.json`` -- schema-versioned document with the study
  name/title, the exact :class:`ExperimentSettings` the grid ran at, and
  every table as ``{"name", "columns", "rows"}``;
* ``results/<study>.csv`` -- the same rows flattened, with a leading
  ``table`` column so multi-table studies (e.g. scaling's throughput
  curves plus stall attribution) stay one file.

Artifacts are regenerated output (gitignored); ``EXPERIMENTS.md``
documents how to rebuild them.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..experiments.common import ExperimentSettings
    from .spec import StudySpec

#: bump on any change to the JSON artifact layout.
ARTIFACT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class StudyTable:
    """One flat table of a study's results."""

    name: str
    columns: Tuple[str, ...]
    rows: List[List[Any]]

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"table {self.name!r}: row of width {len(row)} does not "
                    f"match {len(self.columns)} columns")


def study_payload(spec: "StudySpec", settings: "ExperimentSettings",
                  tables: Sequence[StudyTable]) -> Dict[str, Any]:
    """The JSON artifact document for one executed study."""
    return {
        "schema": ARTIFACT_SCHEMA_VERSION,
        "study": spec.name,
        "title": spec.title,
        "settings": dataclasses.asdict(settings),
        "grid": {
            "configs": list(spec.configs),
            "workloads": list(spec.resolve_workloads(settings)),
            "seeds": list(spec.resolve_seeds(settings)),
            "core_counts": list(spec.resolve_core_counts(settings)),
        },
        "tables": [{"name": table.name, "columns": list(table.columns),
                    "rows": table.rows} for table in tables],
    }


def write_artifacts(spec: "StudySpec", settings: "ExperimentSettings",
                    tables: Sequence[StudyTable],
                    out_dir: Union[str, Path] = Path("results"),
                    ) -> Tuple[Path, Path]:
    """Write ``<out_dir>/<study>.json`` and ``.csv``; returns both paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    json_path = out / f"{spec.name}.json"
    csv_path = out / f"{spec.name}.csv"

    payload = study_payload(spec, settings, tables)
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                         encoding="utf-8")

    with open(csv_path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        columns = ["table"]
        for table in tables:
            for column in table.columns:
                if column not in columns:
                    columns.append(column)
        writer.writerow(columns)
        for table in tables:
            index = {column: i for i, column in enumerate(table.columns)}
            for row in table.rows:
                writer.writerow([table.name] + [
                    row[index[column]] if column in index else ""
                    for column in columns[1:]])
    return json_path, csv_path

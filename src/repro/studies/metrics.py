"""Named metric extractors and seed-aggregators over :class:`RunResult`.

This is the single metric pipeline every study builds on.  The aggregator
implementations were lifted verbatim from the pre-framework drivers
(``ExperimentRunner``'s convenience aggregations and the scaling study's
helpers), so ported drivers reproduce the bespoke drivers' tables
byte-for-byte -- the golden tests in ``tests/test_golden_tables.py`` pin
that.  ``ExperimentRunner`` now delegates here, so there is exactly one
definition of each aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence

from ..engine.results import RunResult
from ..stats.confidence import ConfidenceInterval, mean_confidence_interval

# ---------------------------------------------------------------------------
# Seed aggregators: Sequence[RunResult] (one per seed) -> scalar or mapping.


def mean_cycles(runs: Sequence[RunResult]) -> float:
    """Mean cycles-per-core over seed repetitions."""
    return sum(r.cycles_per_core() for r in runs) / len(runs)


def mean_speculation_fraction(runs: Sequence[RunResult]) -> float:
    """Mean fraction of cycles spent speculating over seed repetitions."""
    return sum(r.speculation_fraction() for r in runs) / len(runs)


def mean_throughput(runs: Sequence[RunResult]) -> float:
    """Mean aggregate instructions per kilocycle over seed repetitions."""
    values = []
    for run in runs:
        if run.runtime > 0:
            values.append(1000.0 * run.aggregate().instructions / run.runtime)
    return sum(values) / len(values) if values else 0.0


def mean_breakdown(runs: Sequence[RunResult]) -> Dict[str, float]:
    """Mean per-component cycle breakdown over seed repetitions."""
    combined: Dict[str, float] = {}
    for run in runs:
        for component, value in run.breakdown().items():
            combined[component] = combined.get(component, 0.0) + value / len(runs)
    return combined


def mean_breakdown_pct(runs: Sequence[RunResult],
                       components: Sequence[str]) -> Dict[str, float]:
    """Mean normalized stall breakdown (percent of accounted cycles)."""
    combined = {name: 0.0 for name in components}
    for run in runs:
        for name, value in run.breakdown(normalize=True).items():
            combined[name] += 100.0 * value / len(runs)
    return combined


def speedup(runs: Sequence[RunResult],
            baseline_runs: Sequence[RunResult]) -> float:
    """Mean-cycles speedup of ``runs`` over ``baseline_runs``."""
    base = mean_cycles(baseline_runs)
    mine = mean_cycles(runs)
    return base / mine if mine else 0.0


def speedup_interval(runs: Sequence[RunResult],
                     baseline_by_seed: Mapping[int, float]) -> ConfidenceInterval:
    """Per-seed speedup over a baseline, with a Student-t mean CI.

    ``baseline_by_seed`` maps each seed to the baseline's cycles-per-core
    for that seed, so the speedup is paired per seed (the paper's SimFlex
    confidence methodology analogue).
    """
    per_seed = [baseline_by_seed[run.seed] / run.cycles_per_core()
                for run in runs if run.cycles_per_core() > 0]
    return mean_confidence_interval(per_seed)


def normalized_breakdown(runs: Sequence[RunResult],
                         baseline_runs: Sequence[RunResult]) -> Dict[str, float]:
    """Mean breakdown of ``runs`` as a percentage of the baseline's runtime."""
    base_total = sum(mean_breakdown(baseline_runs).values())
    values = mean_breakdown(runs)
    if base_total <= 0:
        return {k: 0.0 for k in values}
    return {k: 100.0 * v / base_total for k, v in values.items()}


# ---------------------------------------------------------------------------
# Named scalar metrics, addressable from study declarations and the CLI.


@dataclass(frozen=True)
class Metric:
    """A named scalar metric: per-run extraction plus seed aggregation."""

    name: str
    description: str
    #: aggregate a seed-repetition list into one scalar.
    aggregate: Callable[[Sequence[RunResult]], float]

    def __call__(self, runs: Sequence[RunResult]) -> float:
        return self.aggregate(runs)


#: The metric catalogue; studies refer to these by name (see
#: ``StudyContext.mean_metric``).
METRICS: Dict[str, Metric] = {
    metric.name: metric for metric in (
        Metric("cycles_per_core",
               "mean cycles per core (lower is faster)", mean_cycles),
        Metric("throughput_ikc",
               "aggregate instructions per kilocycle", mean_throughput),
        Metric("speculation_fraction",
               "fraction of cycles spent in speculation",
               mean_speculation_fraction),
    )
}

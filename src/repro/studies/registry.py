"""Registry of named studies.

The experiment modules register their :class:`StudySpec` declarations
here at import time (importing :mod:`repro.experiments` populates the
catalogue); ``repro study list|run`` and ``results/run_all_figures.py``
operate on the registry.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..errors import StudyError
from .spec import StudySpec


class StudyRegistry:
    """Mapping of study names to specs, in registration order."""

    def __init__(self) -> None:
        self._studies: Dict[str, StudySpec] = {}

    def register(self, spec: StudySpec) -> StudySpec:
        if not spec.name:
            raise StudyError("study name must be non-empty")
        if spec.name in self._studies:
            raise StudyError(f"study {spec.name!r} is already registered")
        self._studies[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Remove a registration (mainly for tests)."""
        if name not in self._studies:
            raise StudyError(f"study {name!r} is not registered")
        del self._studies[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._studies)

    def specs(self) -> Tuple[StudySpec, ...]:
        return tuple(self._studies.values())

    def get(self, name: str) -> StudySpec:
        try:
            return self._studies[name]
        except KeyError:
            raise StudyError(
                f"unknown study {name!r}; known: {', '.join(self.names())}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._studies

    def __iter__(self) -> Iterator[str]:
        return iter(self._studies)

    def __len__(self) -> int:
        return len(self._studies)


#: The catalogue used by the CLI and ``run_all_figures.py``; populated by
#: the :mod:`repro.experiments` modules at import time.
DEFAULT_STUDY_REGISTRY = StudyRegistry()


def register_study(spec: StudySpec) -> StudySpec:
    """Register ``spec`` in :data:`DEFAULT_STUDY_REGISTRY` (and return it)."""
    return DEFAULT_STUDY_REGISTRY.register(spec)

"""The declarative study model: grids, cells, and result hooks.

A :class:`StudySpec` names one study of the evaluation matrix.  Its axes
(configurations x workloads x seeds x core counts) expand to
:class:`StudyCell`\\ s against a given
:class:`~repro.experiments.common.ExperimentSettings`; unspecified axes
default to the settings, so one spec serves every scale from CI smoke
runs to the full 16-core reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
    Union,
)

from ..campaign.jobs import Job
from ..campaign.registry import ConfigFactory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..experiments.common import ExperimentSettings
    from .artifacts import StudyTable
    from .runner import StudyContext

#: A grid axis: an explicit tuple, ``None`` for the settings' value, or a
#: callable of the settings resolved at expansion time (e.g. the live
#: scenario catalogue, or "the settings' first seed only").
WorkloadAxis = Union[None, Tuple[str, ...],
                     Callable[["ExperimentSettings"], Sequence[str]]]
SeedAxis = Union[None, Tuple[int, ...],
                 Callable[["ExperimentSettings"], Sequence[int]]]


@dataclass(frozen=True, order=True)
class StudyCell:
    """One grid point: a campaign job at a specific machine size."""

    num_cores: int
    config_name: str
    workload: str
    seed: int

    def job(self) -> Job:
        return Job(self.config_name, self.workload, self.seed)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.config_name}/{self.workload}@{self.seed}/{self.num_cores}c"


@dataclass(frozen=True)
class StudySpec:
    """A declarative study: a cell grid plus result/artifact hooks.

    ``build`` turns the executed grid (via a
    :class:`~repro.studies.runner.StudyContext`) into the study's result
    object -- any object with a ``format()`` method; the figure facades
    return these unchanged.  ``tabulate`` flattens a result into
    :class:`~repro.studies.artifacts.StudyTable` rows for the JSON/CSV
    artifact writer.
    """

    name: str
    title: str
    configs: Tuple[str, ...]
    build: Callable[["StudyContext"], Any]
    tabulate: Callable[[Any], List["StudyTable"]]
    #: grid axes; ``None`` means "use the experiment settings' value".
    workloads: WorkloadAxis = None
    seeds: SeedAxis = None
    core_counts: Optional[Tuple[int, ...]] = None
    #: study-private configuration factories overlaid on the default
    #: registry while this study runs (ablation sweep variants).
    extra_configs: Mapping[str, ConfigFactory] = field(default_factory=dict)

    def resolve_workloads(self, settings: "ExperimentSettings") -> Tuple[str, ...]:
        if self.workloads is None:
            return tuple(settings.workloads)
        if callable(self.workloads):
            return tuple(self.workloads(settings))
        return tuple(self.workloads)

    def resolve_seeds(self, settings: "ExperimentSettings") -> Tuple[int, ...]:
        if self.seeds is None:
            return tuple(settings.seeds)
        if callable(self.seeds):
            return tuple(self.seeds(settings))
        return tuple(self.seeds)

    def resolve_core_counts(self, settings: "ExperimentSettings") -> Tuple[int, ...]:
        if self.core_counts is not None:
            return tuple(self.core_counts)
        return (settings.num_cores,)

    def cells(self, settings: "ExperimentSettings") -> List[StudyCell]:
        """Expand the grid against ``settings`` (core-count major, then
        configuration, workload, seed -- the order the drivers iterate in)."""
        workloads = self.resolve_workloads(settings)
        seeds = self.resolve_seeds(settings)
        return [StudyCell(cores, config, workload, seed)
                for cores in self.resolve_core_counts(settings)
                for config in self.configs
                for workload in workloads
                for seed in seeds]

    def describe_grid(self, settings: "ExperimentSettings") -> str:
        """Human one-liner of the grid shape at ``settings`` scale."""
        workloads = self.resolve_workloads(settings)
        seeds = self.resolve_seeds(settings)
        counts = self.resolve_core_counts(settings)
        parts = [f"{len(self.configs)} configs", f"{len(workloads)} workloads",
                 f"{len(seeds)} seeds"]
        if len(counts) > 1:
            parts.append(f"{len(counts)} core counts")
        return " x ".join(parts) + f" = {len(self.cells(settings))} cells"

"""InvisiFence reproduction: performance-transparent memory ordering.

This package reproduces *InvisiFence: Performance-Transparent Memory
Ordering in Conventional Multiprocessors* (Blundell, Martin, Wenisch,
ISCA 2009) as a trace-driven multiprocessor timing simulator plus the
workloads, baselines, and experiment drivers needed to regenerate every
figure of the paper's evaluation.

Quickstart::

    from repro import simulate

    baseline = simulate("sc", "apache", cores=4, ops=4000)
    invisi = simulate("invisi_sc", "apache", cores=4, ops=4000)
    print("speedup:", invisi.speedup_over(baseline))

The stable programmatic surface is :mod:`repro.api` (re-exported here):
:func:`simulate`, :func:`run_study`, :func:`execute_plan`, and
:func:`open_cache`.  Engine-level calls with a prebuilt trace keep
working -- ``simulate(config, trace)`` is a transparent passthrough::

    from repro import ConsistencyModel, build_trace, simulate, small_config

    trace = build_trace("apache", num_threads=4, ops_per_thread=4000, seed=1)
    baseline = simulate(small_config(ConsistencyModel.SC), trace)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every figure.
"""

from .api import (
    PlanExecution,
    compile_study_plan,
    execute_plan,
    open_cache,
    run_study,
    simulate,
)
from .campaign import (
    CampaignExecutor,
    ConfigRegistry,
    DEFAULT_REGISTRY,
    Job,
    ResultCache,
    expand_jobs,
)
from .config import (
    CacheConfig,
    ConsistencyModel,
    InterconnectConfig,
    SpeculationConfig,
    SpeculationMode,
    StoreBufferConfig,
    StoreBufferKind,
    SystemConfig,
    ViolationPolicy,
    paper_config,
    small_config,
)
from .engine import RunResult, Simulator, build_system
from .errors import (
    CoherenceError,
    ConfigurationError,
    ReproError,
    SimulationError,
    SpeculationError,
    ScenarioError,
    StoreBufferError,
    TraceError,
    WorkloadError,
)
from .scenarios import (
    DEFAULT_SCENARIO_REGISTRY,
    PhaseSpec,
    ScenarioRegistry,
    ScenarioSpec,
    generate_scenario,
    scenario_names,
    scenario_spec,
)
from .trace import MemOp, MultiThreadedTrace, OpKind, Trace, atomic, compute, fence, load, store
from .workloads import WORKLOAD_PRESETS, WorkloadSpec, build_trace, preset, workload_names

__version__ = "1.0.0"

__all__ = [
    # configuration
    "SystemConfig",
    "CacheConfig",
    "StoreBufferConfig",
    "StoreBufferKind",
    "InterconnectConfig",
    "SpeculationConfig",
    "SpeculationMode",
    "ViolationPolicy",
    "ConsistencyModel",
    "paper_config",
    "small_config",
    # campaign
    "CampaignExecutor",
    "ConfigRegistry",
    "DEFAULT_REGISTRY",
    "Job",
    "ResultCache",
    "expand_jobs",
    # engine
    "RunResult",
    "Simulator",
    "build_system",
    # public api facade (repro.api)
    "PlanExecution",
    "compile_study_plan",
    "execute_plan",
    "open_cache",
    "run_study",
    "simulate",
    # traces
    "MemOp",
    "OpKind",
    "Trace",
    "MultiThreadedTrace",
    "load",
    "store",
    "atomic",
    "fence",
    "compute",
    # workloads
    "WorkloadSpec",
    "WORKLOAD_PRESETS",
    "build_trace",
    "preset",
    "workload_names",
    # scenarios
    "DEFAULT_SCENARIO_REGISTRY",
    "PhaseSpec",
    "ScenarioRegistry",
    "ScenarioSpec",
    "generate_scenario",
    "scenario_names",
    "scenario_spec",
    # errors
    "ReproError",
    "ConfigurationError",
    "TraceError",
    "SimulationError",
    "CoherenceError",
    "StoreBufferError",
    "SpeculationError",
    "WorkloadError",
    "ScenarioError",
    "__version__",
]

"""The paper's descriptive tables (Figures 2, 4, 5, 6, 7).

These figures are tables rather than measurements; they are regenerated
from the corresponding code artefacts (the ordering-rule definitions, the
speculation-policy properties, the default system configuration, and the
workload presets) so that documentation cannot drift from the
implementation.
"""

from __future__ import annotations

from typing import Optional

from ..config import ConsistencyModel, SystemConfig, paper_config
from ..consistency.rules import AtomicRequirement, rules_for
from ..stats.report import format_table
from ..workloads.presets import WORKLOAD_PRESETS, workload_names
from .common import ExperimentSettings
from .figure10 import Figure10Result


def figure2_table() -> str:
    """Figure 2: consistency models and their conventional implementations."""
    rows = []
    sb_org = {
        ConsistencyModel.SC: "FIFO, 8-byte word",
        ConsistencyModel.TSO: "FIFO, 8-byte word",
        ConsistencyModel.RMO: "Coalescing, 64-byte block",
    }
    atomic_text = {
        AtomicRequirement.DRAIN_STORE_BUFFER: "Drain SB",
        AtomicRequirement.COMPLETE_OWN_STORE: "Complete store",
    }
    for model in (ConsistencyModel.SC, ConsistencyModel.TSO, ConsistencyModel.RMO):
        rules = rules_for(model)
        rows.append([
            model.value.upper(),
            rules.description,
            sb_org[model],
            "Drain SB" if rules.load_requires_drain else "-",
            "-",
            atomic_text[rules.atomic],
            "Drain SB" if rules.fence_requires_drain else "N/A",
        ])
    return format_table(
        ["Model", "Relaxations", "Store buffer", "Load", "Store", "Atomic", "Full fence"],
        rows, title="Figure 2: consistency models, definitions and conventional "
                    "implementations")


def figure4_table(figure10: Optional[Figure10Result] = None) -> str:
    """Figure 4: properties of the InvisiFence variants.

    If a Figure 10 result is supplied, the measured "% time speculating"
    column replaces the paper's quoted ranges.
    """
    measured = {}
    if figure10 is not None:
        measured = {
            "invisi_sc": f"{figure10.average('invisi_sc'):.0f}%",
            "invisi_tso": f"{figure10.average('invisi_tso'):.0f}%",
            "invisi_rmo": f"{figure10.average('invisi_rmo'):.0f}%",
        }
    rows = [
        ["INVISIFENCE-SELECTIVE(rmo)", "Fences, atomics",
         measured.get("invisi_rmo", "0-10%"), "None", "Yes"],
        ["INVISIFENCE-SELECTIVE(tso)", "Store/atomic reorderings, fences",
         measured.get("invisi_tso", "10-40%"), "None", "Yes"],
        ["INVISIFENCE-SELECTIVE(sc)", "All memory reorderings",
         measured.get("invisi_sc", "10-50%"), "None", "Yes"],
        ["INVISIFENCE-CONTINUOUS", "Continuous chunks", "~100%",
         "~100 instructions", "No"],
    ]
    return format_table(
        ["Variant", "Speculates on", "% time speculating", "Min chunk", "Snoops load Q"],
        rows, title="Figure 4: properties of InvisiFence variants")


def figure5_table() -> str:
    """Figure 5: qualitative comparison with BulkSC and ASO."""
    rows = [
        ["Speculative execution", "Continuous", "Continuous", "Selective", "Selective"],
        ["Violation detection", "Lazy", "Eager", "Eager", "Eager"],
        ["Preserving memory state", "Write back dirty blocks",
         "Write back dirty blocks", "Write back dirty blocks", "Stores write-thru to L2"],
        ["Commit mechanism", "Global arbitration", "Flash-clear bits",
         "Flash-clear bits", "Drain stores from SSB to L2"],
        ["Commit latency", "Grows with # processors", "Constant-time",
         "Constant-time", "Grows with chunk size"],
        ["Multiple checkpoints?", "Yes", "Yes", "No", "Yes"],
        ["Fwd from unfilled blocks", "Coalescing store buffer",
         "Coalescing store buffer", "Coalescing store buffer", "L1 cache"],
        ["Memory-system impact", "Global signature transfer",
         "Read/written bits in L1", "Read/written bits in L1",
         "Read/written + sub-block bits"],
        ["Avoids load-queue snooping?", "Yes", "Yes", "No", "No"],
    ]
    return format_table(
        ["Dimension", "BulkSC", "INVISIFENCE-CONT.", "INVISIFENCE-SEL.", "ASO"],
        rows, title="Figure 5: comparison of speculative consistency implementations")


def figure6_table(config: Optional[SystemConfig] = None) -> str:
    """Figure 6: simulated system parameters."""
    config = config if config is not None else paper_config()
    rows = [[key, value] for key, value in config.describe().items()]
    return format_table(["Parameter", "Value"], rows,
                        title="Figure 6: simulator parameters")


def figure7_table(settings: Optional[ExperimentSettings] = None) -> str:
    """Figure 7: workload descriptions (synthetic analogues)."""
    rows = []
    for name in workload_names():
        spec = WORKLOAD_PRESETS[name]
        info = spec.describe()
        rows.append([name, info["description"], info["sync interval"],
                     info["store fraction"], info["shared fraction"], info["footprint"]])
    return format_table(
        ["Workload", "Description", "Sync interval", "Store frac", "Shared frac",
         "Footprint"],
        rows, title="Figure 7: synthetic workload analogues")

"""Scenario figure: per-phase stall breakdowns across configurations.

The paper's per-workload figures average each workload's behaviour over
its whole sample; phase-structured scenarios make the *within-run*
variation visible instead.  For every scenario and machine configuration
this study reports the Figure-9-style stall taxonomy separately for each
phase (as a percentage of that phase's own accounted cycles), so e.g. a
barrier phase's SB-drain spike or a false-sharing phase's violation
cycles are not averaged away by the surrounding phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..cpu.stats import BREAKDOWN_COMPONENTS
from ..stats.phases import phase_breakdown
from ..stats.report import format_breakdown_table
from ..studies.registry import register_study
from ..studies.runner import StudyContext, run_study
from ..studies.spec import StudySpec, WorkloadAxis
from .common import ExperimentRunner, ExperimentSettings
from .figure9 import breakdown_tables

#: Configurations compared per phase: the three conventional baselines'
#: worst offender, plus the speculative variants the paper centres on.
SCENARIO_CONFIGS = ("sc", "tso", "invisi_sc", "invisi_rmo")


@dataclass
class ScenarioFigureResult:
    """Per-(scenario, phase, config) stall breakdowns."""

    settings: ExperimentSettings
    configs: Tuple[str, ...] = SCENARIO_CONFIGS
    #: {"scenario/phase": {config: {component: % of phase cycles}}}
    breakdowns: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def format(self) -> str:
        return format_breakdown_table(
            self.breakdowns, BREAKDOWN_COMPONENTS,
            title="Scenario phases: stall breakdown, % of each phase's "
                  "accounted cycles")


def _live_scenarios(settings: ExperimentSettings) -> Tuple[str, ...]:
    """The registered scenario catalogue (resolved at expansion time)."""
    from ..scenarios.registry import scenario_names

    return tuple(scenario_names())


def scenario_study(configs: Sequence[str] = SCENARIO_CONFIGS,
                   scenarios: WorkloadAxis = _live_scenarios) -> StudySpec:
    """Declare the per-phase scenario figure as a study.

    ``scenarios`` is the workload axis: defaults to the live scenario
    registry; ``None`` means the experiment settings' workload list (the
    facade uses that for its historical default).
    """
    configs = tuple(configs)

    def _build(ctx: StudyContext) -> ScenarioFigureResult:
        scenarios_resolved = ctx.spec.resolve_workloads(ctx.settings)
        result = ScenarioFigureResult(settings=ctx.settings, configs=configs)
        for scenario in scenarios_resolved:
            per_phase: Dict[str, Dict[str, Dict[str, float]]] = {}
            for config in configs:
                runs = ctx.runs(config, scenario)
                for run in runs:
                    for label, values in phase_breakdown(run).items():
                        key = f"{scenario}/{label}"
                        bucket = per_phase.setdefault(key, {}).setdefault(
                            config, {name: 0.0 for name in BREAKDOWN_COMPONENTS})
                        for name in BREAKDOWN_COMPONENTS:
                            bucket[name] += values[name] / len(runs)
            result.breakdowns.update(per_phase)
        return result

    return StudySpec(
        name="scenarios",
        title="Per-phase stall breakdowns across scenarios and configs",
        configs=configs,
        workloads=scenarios,
        build=_build,
        tabulate=lambda result: breakdown_tables(result.breakdowns,
                                                 "phase_breakdown"),
    )


SCENARIOS_STUDY = register_study(scenario_study())


def run_scenarios(settings: Optional[ExperimentSettings] = None,
                  runner: Optional[ExperimentRunner] = None,
                  scenarios: Optional[Sequence[str]] = None,
                  configs: Sequence[str] = SCENARIO_CONFIGS) -> ScenarioFigureResult:
    """Run every (scenario, config, seed) cell and tabulate per-phase stalls.

    ``scenarios`` defaults to the settings' workload list (the CLI points
    that at the scenario registry); multi-seed settings average the
    per-phase percentages over seeds.
    """
    from ..scenarios.registry import scenario_names

    settings = settings or ExperimentSettings(workloads=tuple(scenario_names()))
    axis = tuple(scenarios) if scenarios is not None else None
    return run_study(scenario_study(configs, scenarios=axis),
                     settings, runner=runner)

"""Experiment drivers: one module per figure of the paper's evaluation.

Each ``run_figureN`` function builds the workload traces, runs the required
machine configurations through the simulator, and returns a result object
whose ``format()`` method prints the same rows/series the paper's figure
plots.  ``ExperimentSettings`` controls the scale (cores, trace length,
seeds); the defaults reproduce the full 16-core setup, while
``ExperimentSettings.quick()`` is used by the test-suite and the benchmark
harness.
"""

# Import order fixes the study registry's presentation order: figures,
# ablations, then the scaling and scenario studies.
from .common import CONFIG_NAMES, ExperimentSettings, ExperimentRunner, make_config
from .figure1 import Figure1Result, run_figure1
from .figure8 import Figure8Result, run_figure8
from .figure9 import Figure9Result, run_figure9
from .figure10 import Figure10Result, run_figure10
from .figure11 import Figure11Result, run_figure11
from .figure12 import Figure12Result, run_figure12
from .ablation import (
    CovTimeoutAblationResult,
    StoreBufferAblationResult,
    cov_timeout_study,
    run_cov_timeout_ablation,
    run_store_buffer_ablation,
    store_buffer_study,
)
from .scaling import (
    SCALING_CONFIGS,
    SCALING_CORE_COUNTS,
    SCALING_SCENARIOS,
    ScalingResult,
    run_scaling,
    scaling_study,
)
from .scenarios import (
    SCENARIO_CONFIGS,
    ScenarioFigureResult,
    run_scenarios,
    scenario_study,
)
from .tables import (
    figure2_table,
    figure4_table,
    figure5_table,
    figure6_table,
    figure7_table,
)

__all__ = [
    "ExperimentSettings",
    "ExperimentRunner",
    "CONFIG_NAMES",
    "make_config",
    "StoreBufferAblationResult",
    "run_store_buffer_ablation",
    "CovTimeoutAblationResult",
    "run_cov_timeout_ablation",
    "Figure1Result",
    "run_figure1",
    "Figure8Result",
    "run_figure8",
    "Figure9Result",
    "run_figure9",
    "Figure10Result",
    "run_figure10",
    "Figure11Result",
    "run_figure11",
    "Figure12Result",
    "run_figure12",
    "SCENARIO_CONFIGS",
    "ScenarioFigureResult",
    "run_scenarios",
    "SCALING_CONFIGS",
    "SCALING_CORE_COUNTS",
    "SCALING_SCENARIOS",
    "ScalingResult",
    "run_scaling",
    "scaling_study",
    "scenario_study",
    "store_buffer_study",
    "cov_timeout_study",
    "figure2_table",
    "figure4_table",
    "figure5_table",
    "figure6_table",
    "figure7_table",
]

"""The machine-scaling study: throughput and stalls across core counts.

The paper evaluates a fixed 4x4-torus 16-core machine, but its central
claim -- that speculation keeps ordering enforcement performance-neutral
where store-buffer designs degrade -- is a *scaling* claim.  This study
sweeps machine geometry as a first-class grid axis: every (core count,
machine configuration, scenario) cell runs through the campaign executor
(so cells are cached, deduplicated, and parallelisable like any other
campaign), and the result is summarised as

* **normalized-throughput scaling curves** -- aggregate instructions per
  kilocycle at each core count, normalized to the same configuration's
  throughput at the smallest swept count (perfect per-core scaling holds
  the curve at 1.0; contention and ordering stalls drag it down), and
* a **per-config stall-attribution table** -- the Figure-9 stall taxonomy
  as a percentage of accounted cycles at every swept geometry, which shows
  *why* a configuration stops scaling (``sb_drain`` for conventional SC,
  ``violation`` for the speculative variants).

Core counts map to tori via :func:`repro.config.torus_geometry`
(4 -> 2x2 ... 64 -> 8x8); the interconnect stays contention-free by
default so cells remain comparable with every other figure's, and the
opt-in queued model (``InterconnectConfig.contention="queued"``) can be
layered on through a registered configuration variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign.cache import ResultCache
from ..campaign.executor import CampaignReport
from ..cpu.stats import BREAKDOWN_COMPONENTS
from ..stats.report import format_breakdown_table, format_table
from ..studies.artifacts import StudyTable
from ..studies.metrics import mean_breakdown_pct
from ..studies.registry import register_study
from ..studies.runner import StudyContext, run_study
from ..studies.spec import StudySpec
from .common import ExperimentSettings
from .figure9 import breakdown_tables

#: Core counts swept by the full study (2x2 ... 8x8 tori).
SCALING_CORE_COUNTS = (4, 8, 16, 32, 64)

#: One configuration per controller kind: conventional, InvisiFence-
#: Selective, and InvisiFence-Continuous.
SCALING_CONFIGS = ("sc", "invisi_sc", "invisi_cont")

#: Scenarios exercised at every geometry: contended sharing (block
#: ping-pong) and mostly-private work with sporadic remote atomics.
SCALING_SCENARIOS = ("false-sharing-storm", "task-pool")


@dataclass
class ScalingResult:
    """Throughput curves and stall attribution for the scaling sweep."""

    settings: ExperimentSettings
    core_counts: Tuple[int, ...] = SCALING_CORE_COUNTS
    configs: Tuple[str, ...] = SCALING_CONFIGS
    scenarios: Tuple[str, ...] = SCALING_SCENARIOS
    #: {scenario: {config: {cores: instructions per kilocycle}}}
    throughput: Dict[str, Dict[str, Dict[int, float]]] = field(default_factory=dict)
    #: {"scenario @ NxM (C cores)": {config: {component: % of cycles}}}
    breakdowns: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    #: what the underlying campaigns did, summed over all core counts.
    report: CampaignReport = field(default_factory=CampaignReport)

    def normalized(self, scenario: str, config: str) -> Dict[int, float]:
        """Throughput at each core count relative to the smallest count."""
        curve = self.throughput[scenario][config]
        base = curve[min(curve)]
        if base <= 0:
            return {cores: 0.0 for cores in curve}
        return {cores: value / base for cores, value in curve.items()}

    def format(self) -> str:
        sections: List[str] = []
        for scenario in self.scenarios:
            headers = ["cores"] + [f"{config} (norm)" for config in self.configs]
            rows: List[List[str]] = []
            for cores in self.core_counts:
                row = [str(cores)]
                for config in self.configs:
                    absolute = self.throughput[scenario][config][cores]
                    relative = self.normalized(scenario, config)[cores]
                    row.append(f"{relative:.2f} ({absolute:.1f} i/kc)")
                rows.append(row)
            sections.append(format_table(
                headers, rows,
                title=f"Scaling: {scenario} -- throughput normalized to "
                      f"{min(self.core_counts)} cores (insns/kilocycle)"))
        sections.append(format_breakdown_table(
            self.breakdowns, BREAKDOWN_COMPONENTS,
            title="Scaling: stall attribution, % of accounted cycles per "
                  "geometry"))
        return "\n\n".join(sections)


def scaling_study(core_counts: Sequence[int] = SCALING_CORE_COUNTS,
                  configs: Sequence[str] = SCALING_CONFIGS,
                  scenarios: Sequence[str] = SCALING_SCENARIOS) -> StudySpec:
    """Declare the machine-scaling sweep as a study."""
    core_counts = tuple(sorted(core_counts))
    configs = tuple(configs)
    scenarios = tuple(scenarios)

    def _build(ctx: StudyContext) -> ScalingResult:
        result = ScalingResult(settings=ctx.settings, core_counts=core_counts,
                               configs=configs, scenarios=scenarios)
        for scenario in scenarios:
            result.throughput[scenario] = {config: {} for config in configs}
        for cores in core_counts:
            geometry = None
            for config in configs:
                for scenario in scenarios:
                    cell_runs = ctx.runs(config, scenario, cores=cores)
                    if geometry is None:
                        net = cell_runs[0].config.interconnect
                        geometry = f"{net.mesh_width}x{net.mesh_height}"
                    result.throughput[scenario][config][cores] = \
                        ctx.mean_metric("throughput_ikc", config, scenario,
                                        cores=cores)
                    label = f"{scenario} @ {geometry} ({cores}c)"
                    result.breakdowns.setdefault(label, {})[config] = \
                        mean_breakdown_pct(cell_runs, BREAKDOWN_COMPONENTS)
        result.report = ctx.report
        return result

    def _tabulate(result: ScalingResult) -> List[StudyTable]:
        curve_rows = []
        for scenario in result.scenarios:
            for config in result.configs:
                normalized = result.normalized(scenario, config)
                for cores in result.core_counts:
                    curve_rows.append(
                        [scenario, config, cores,
                         result.throughput[scenario][config][cores],
                         normalized[cores]])
        curves = StudyTable(
            "throughput_scaling",
            ("scenario", "config", "cores", "throughput_ikc", "normalized"),
            curve_rows)
        return [curves] + breakdown_tables(result.breakdowns,
                                           "stall_attribution",
                                           key_column="geometry")

    return StudySpec(
        name="scaling",
        title="Machine scaling: normalized throughput and stalls, 4-64 cores",
        configs=configs,
        workloads=scenarios,
        core_counts=core_counts,
        build=_build,
        tabulate=_tabulate,
    )


SCALING_STUDY = register_study(scaling_study())


def run_scaling(settings: Optional[ExperimentSettings] = None,
                core_counts: Sequence[int] = SCALING_CORE_COUNTS,
                configs: Sequence[str] = SCALING_CONFIGS,
                scenarios: Sequence[str] = SCALING_SCENARIOS,
                jobs: int = 1,
                cache: Optional[ResultCache] = None,
                engine: str = "fast", recorder=None) -> ScalingResult:
    """Run the scaling sweep: (core count x config x scenario x seed).

    ``settings`` supplies trace length, seeds, and the warmup fraction;
    its ``num_cores`` is overridden per swept count.  Each core count runs
    as one campaign (``jobs`` worker processes fan out its missing cells)
    against the shared result cache, so serial and parallel sweeps produce
    byte-identical tables and cache entries.
    """
    return run_study(scaling_study(core_counts, configs, scenarios),
                     settings, jobs=jobs, cache=cache, engine=engine,
                     recorder=recorder)

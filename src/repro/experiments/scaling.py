"""The machine-scaling study: throughput and stalls across core counts.

The paper evaluates a fixed 4x4-torus 16-core machine, but its central
claim -- that speculation keeps ordering enforcement performance-neutral
where store-buffer designs degrade -- is a *scaling* claim.  This driver
sweeps machine geometry as a first-class axis: every (core count, machine
configuration, scenario) cell runs through the campaign executor (so cells
are cached, deduplicated, and parallelisable like any other campaign), and
the result is summarised as

* **normalized-throughput scaling curves** -- aggregate instructions per
  kilocycle at each core count, normalized to the same configuration's
  throughput at the smallest swept count (perfect per-core scaling holds
  the curve at 1.0; contention and ordering stalls drag it down), and
* a **per-config stall-attribution table** -- the Figure-9 stall taxonomy
  as a percentage of accounted cycles at every swept geometry, which shows
  *why* a configuration stops scaling (``sb_drain`` for conventional SC,
  ``violation`` for the speculative variants).

Core counts map to tori via :func:`repro.config.torus_geometry`
(4 -> 2x2 ... 64 -> 8x8); the interconnect stays contention-free by
default so cells remain comparable with every other figure's, and the
opt-in queued model (``InterconnectConfig.contention="queued"``) can be
layered on through a registered configuration variant.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign.cache import ResultCache
from ..campaign.executor import CampaignExecutor, CampaignReport
from ..campaign.jobs import expand_jobs
from ..cpu.stats import BREAKDOWN_COMPONENTS
from ..engine.results import RunResult
from ..stats.report import format_breakdown_table, format_table
from .common import ExperimentSettings

#: Core counts swept by the full study (2x2 ... 8x8 tori).
SCALING_CORE_COUNTS = (4, 8, 16, 32, 64)

#: One configuration per controller kind: conventional, InvisiFence-
#: Selective, and InvisiFence-Continuous.
SCALING_CONFIGS = ("sc", "invisi_sc", "invisi_cont")

#: Scenarios exercised at every geometry: contended sharing (block
#: ping-pong) and mostly-private work with sporadic remote atomics.
SCALING_SCENARIOS = ("false-sharing-storm", "task-pool")


@dataclass
class ScalingResult:
    """Throughput curves and stall attribution for the scaling sweep."""

    settings: ExperimentSettings
    core_counts: Tuple[int, ...] = SCALING_CORE_COUNTS
    configs: Tuple[str, ...] = SCALING_CONFIGS
    scenarios: Tuple[str, ...] = SCALING_SCENARIOS
    #: {scenario: {config: {cores: instructions per kilocycle}}}
    throughput: Dict[str, Dict[str, Dict[int, float]]] = field(default_factory=dict)
    #: {"scenario @ NxM (C cores)": {config: {component: % of cycles}}}
    breakdowns: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    #: what the underlying campaigns did, summed over all core counts.
    report: CampaignReport = field(default_factory=CampaignReport)

    def normalized(self, scenario: str, config: str) -> Dict[int, float]:
        """Throughput at each core count relative to the smallest count."""
        curve = self.throughput[scenario][config]
        base = curve[min(curve)]
        if base <= 0:
            return {cores: 0.0 for cores in curve}
        return {cores: value / base for cores, value in curve.items()}

    def format(self) -> str:
        sections: List[str] = []
        for scenario in self.scenarios:
            headers = ["cores"] + [f"{config} (norm)" for config in self.configs]
            rows: List[List[str]] = []
            for cores in self.core_counts:
                row = [str(cores)]
                for config in self.configs:
                    absolute = self.throughput[scenario][config][cores]
                    relative = self.normalized(scenario, config)[cores]
                    row.append(f"{relative:.2f} ({absolute:.1f} i/kc)")
                rows.append(row)
            sections.append(format_table(
                headers, rows,
                title=f"Scaling: {scenario} -- throughput normalized to "
                      f"{min(self.core_counts)} cores (insns/kilocycle)"))
        sections.append(format_breakdown_table(
            self.breakdowns, BREAKDOWN_COMPONENTS,
            title="Scaling: stall attribution, % of accounted cycles per "
                  "geometry"))
        return "\n\n".join(sections)


def _throughput(runs: Sequence[RunResult]) -> float:
    """Mean aggregate instructions per kilocycle over seed repetitions."""
    values = []
    for run in runs:
        if run.runtime > 0:
            values.append(1000.0 * run.aggregate().instructions / run.runtime)
    return sum(values) / len(values) if values else 0.0


def _mean_breakdown(runs: Sequence[RunResult]) -> Dict[str, float]:
    """Mean normalized stall breakdown (percent) over seed repetitions."""
    combined = {name: 0.0 for name in BREAKDOWN_COMPONENTS}
    for run in runs:
        for name, value in run.breakdown(normalize=True).items():
            combined[name] += 100.0 * value / len(runs)
    return combined


def run_scaling(settings: Optional[ExperimentSettings] = None,
                core_counts: Sequence[int] = SCALING_CORE_COUNTS,
                configs: Sequence[str] = SCALING_CONFIGS,
                scenarios: Sequence[str] = SCALING_SCENARIOS,
                jobs: int = 1,
                cache: Optional[ResultCache] = None) -> ScalingResult:
    """Run the scaling sweep: (core count x config x scenario x seed).

    ``settings`` supplies trace length, seeds, and the warmup fraction;
    its ``num_cores`` is overridden per swept count.  Each core count runs
    as one campaign (``jobs`` worker processes fan out its missing cells)
    against the shared result cache, so serial and parallel sweeps produce
    byte-identical tables and cache entries.
    """
    settings = settings or ExperimentSettings()
    core_counts = tuple(sorted(core_counts))
    result = ScalingResult(settings=settings, core_counts=core_counts,
                           configs=tuple(configs), scenarios=tuple(scenarios))
    for scenario in result.scenarios:
        result.throughput[scenario] = {config: {} for config in result.configs}

    for cores in core_counts:
        scaled = dataclasses.replace(settings, num_cores=cores)
        executor = CampaignExecutor(scaled, jobs=jobs, cache=cache)
        cells = expand_jobs(result.configs, result.scenarios, settings.seeds)
        runs = executor.run(cells)
        by_cell: Dict[Tuple[str, str], List[RunResult]] = {}
        for job, run in zip(cells, runs):
            by_cell.setdefault((job.config_name, job.workload), []).append(run)

        geometry = None
        for config in result.configs:
            for scenario in result.scenarios:
                cell_runs = by_cell[(config, scenario)]
                if geometry is None:
                    net = cell_runs[0].config.interconnect
                    geometry = f"{net.mesh_width}x{net.mesh_height}"
                result.throughput[scenario][config][cores] = _throughput(cell_runs)
                label = f"{scenario} @ {geometry} ({cores}c)"
                result.breakdowns.setdefault(label, {})[config] = \
                    _mean_breakdown(cell_runs)

        tally = executor.last_report
        result.report.total += tally.total
        result.report.simulated += tally.simulated
        result.report.cache_hits += tally.cache_hits
        result.report.deduplicated += tally.deduplicated
    return result

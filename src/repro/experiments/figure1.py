"""Figure 1: ordering stalls in conventional SC, TSO, and RMO.

The paper's Figure 1 plots, for each workload and each conventional
consistency implementation, the cycles stalled on store-buffer drains
("SB drain", caused by atomics and fences -- or by every load under SC)
and on store-buffer capacity ("SB full"), expressed as a percentage of the
SC configuration's execution time.

Expected shape: SC stalls are the largest, TSO's are substantially smaller
but still significant, RMO's are smaller again and essentially vanish for
the scientific workloads (Barnes, Ocean) while remaining visible for the
synchronisation-heavy commercial workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..stats.report import format_table
from ..studies.artifacts import StudyTable
from ..studies.registry import register_study
from ..studies.runner import StudyContext, run_study
from ..studies.spec import StudySpec
from .common import ExperimentRunner, ExperimentSettings

FIGURE1_CONFIGS = ("sc", "tso", "rmo")
_CONFIGS = FIGURE1_CONFIGS


@dataclass
class Figure1Result:
    """Per-workload, per-model ordering-stall percentages."""

    settings: ExperimentSettings
    #: {workload: {config: {"sb_drain": %, "sb_full": %}}} -- percentages of
    #: the SC configuration's runtime, as in the paper's y axis.
    stalls: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def total(self, workload: str, config: str) -> float:
        values = self.stalls[workload][config]
        return values["sb_drain"] + values["sb_full"]

    def average_total(self, config: str) -> float:
        totals = [self.total(w, config) for w in self.stalls]
        return sum(totals) / len(totals) if totals else 0.0

    def format(self) -> str:
        rows = []
        for workload, configs in self.stalls.items():
            for config in _CONFIGS:
                values = configs[config]
                rows.append([workload, config, values["sb_drain"], values["sb_full"],
                             values["sb_drain"] + values["sb_full"]])
        return format_table(
            ["workload", "model", "SB drain %", "SB full %", "total %"], rows,
            title="Figure 1: ordering stalls in conventional implementations "
                  "(% of SC execution time)")


def _build(ctx: StudyContext) -> Figure1Result:
    result = Figure1Result(settings=ctx.settings)
    for workload in ctx.settings.workloads:
        result.stalls[workload] = {}
        for config in _CONFIGS:
            normalized = ctx.normalized_breakdown(config, workload, baseline="sc")
            result.stalls[workload][config] = {
                "sb_drain": normalized.get("sb_drain", 0.0),
                "sb_full": normalized.get("sb_full", 0.0),
            }
    return result


def _tabulate(result: Figure1Result) -> List[StudyTable]:
    rows = [[workload, config,
             result.stalls[workload][config]["sb_drain"],
             result.stalls[workload][config]["sb_full"],
             result.total(workload, config)]
            for workload in result.stalls for config in _CONFIGS]
    return [StudyTable("ordering_stalls",
                       ("workload", "config", "sb_drain_pct", "sb_full_pct",
                        "total_pct"), rows)]


FIGURE1_STUDY = register_study(StudySpec(
    name="figure1",
    title="Ordering stalls in conventional SC/TSO/RMO (% of SC runtime)",
    configs=FIGURE1_CONFIGS,
    build=_build,
    tabulate=_tabulate,
))


def run_figure1(settings: Optional[ExperimentSettings] = None,
                runner: Optional[ExperimentRunner] = None) -> Figure1Result:
    """Regenerate Figure 1."""
    return run_study(FIGURE1_STUDY, settings, runner=runner)

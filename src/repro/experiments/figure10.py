"""Figure 10: fraction of cycles InvisiFence-Selective spends speculating.

Expected shape (paper Figure 10 / Figure 4): enforcing weaker models needs
less speculation -- Invisi_rmo speculates for under ~10 % of cycles,
Invisi_tso noticeably more, and Invisi_sc the most (up to ~50 % on the
synchronisation-heavy workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..stats.report import format_series_table
from ..studies.artifacts import StudyTable
from ..studies.registry import register_study
from ..studies.runner import StudyContext, run_study
from ..studies.spec import StudySpec
from .common import ExperimentRunner, ExperimentSettings

FIGURE10_CONFIGS = ("invisi_sc", "invisi_tso", "invisi_rmo")


@dataclass
class Figure10Result:
    """Percent of cycles spent in speculation, per workload and variant."""

    settings: ExperimentSettings
    #: {workload: {config: % of cycles}}
    speculation_pct: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def average(self, config: str) -> float:
        values = [w[config] for w in self.speculation_pct.values()]
        return sum(values) / len(values) if values else 0.0

    def format(self) -> str:
        table = dict(self.speculation_pct)
        table["(average)"] = {c: self.average(c) for c in FIGURE10_CONFIGS}
        return format_series_table(
            table,
            title="Figure 10: percent of cycles spent in speculation")


def _build(ctx: StudyContext) -> Figure10Result:
    result = Figure10Result(settings=ctx.settings)
    for workload in ctx.settings.workloads:
        result.speculation_pct[workload] = {}
        for config in FIGURE10_CONFIGS:
            fraction = ctx.mean_metric("speculation_fraction", config, workload)
            result.speculation_pct[workload][config] = 100.0 * fraction
    return result


def _tabulate(result: Figure10Result) -> List[StudyTable]:
    rows = [[workload, config, result.speculation_pct[workload][config]]
            for workload in result.speculation_pct
            for config in FIGURE10_CONFIGS]
    return [StudyTable("speculation_pct",
                       ("workload", "config", "speculation_pct"), rows)]


FIGURE10_STUDY = register_study(StudySpec(
    name="figure10",
    title="Percent of cycles InvisiFence-Selective spends speculating",
    configs=FIGURE10_CONFIGS,
    build=_build,
    tabulate=_tabulate,
))


def run_figure10(settings: Optional[ExperimentSettings] = None,
                 runner: Optional[ExperimentRunner] = None) -> Figure10Result:
    """Regenerate Figure 10."""
    return run_study(FIGURE10_STUDY, settings, runner=runner)

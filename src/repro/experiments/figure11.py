"""Figure 11: InvisiFence-Selective versus the ASO baseline.

Three configurations per workload, normalised to ASOsc's runtime: ASOsc,
single-checkpoint Invisi_sc, and two-checkpoint Invisi_sc.  Expected shape
(paper Section 6.4): all three are close; ASO is slightly faster than the
single-checkpoint InvisiFence (it discards less work on violations thanks
to its periodic checkpoints), and giving InvisiFence a second checkpoint
closes that small gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cpu.stats import BREAKDOWN_COMPONENTS
from ..stats.report import format_breakdown_table
from ..studies.registry import register_study
from ..studies.runner import StudyContext, run_study
from ..studies.spec import StudySpec
from .common import ExperimentRunner, ExperimentSettings
from .figure9 import breakdown_tables

FIGURE11_CONFIGS = ("aso_sc", "invisi_sc", "invisi_sc_2ckpt")


@dataclass
class Figure11Result:
    """Runtime breakdowns normalised to ASOsc."""

    settings: ExperimentSettings
    #: {workload: {config: {component: % of ASOsc runtime}}}
    breakdowns: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def total(self, workload: str, config: str) -> float:
        return sum(self.breakdowns[workload][config].values())

    def average_total(self, config: str) -> float:
        totals = [self.total(w, config) for w in self.breakdowns]
        return sum(totals) / len(totals) if totals else 0.0

    def format(self) -> str:
        return format_breakdown_table(
            self.breakdowns, BREAKDOWN_COMPONENTS,
            title="Figure 11: runtime of ASOsc, Invisi_sc (1 ckpt) and "
                  "Invisi_sc (2 ckpt), % of ASOsc runtime")


def _build(ctx: StudyContext) -> Figure11Result:
    result = Figure11Result(settings=ctx.settings)
    for workload in ctx.settings.workloads:
        result.breakdowns[workload] = {}
        for config in FIGURE11_CONFIGS:
            result.breakdowns[workload][config] = ctx.normalized_breakdown(
                config, workload, baseline="aso_sc")
    return result


FIGURE11_STUDY = register_study(StudySpec(
    name="figure11",
    title="InvisiFence-Selective vs the ASO baseline, % of ASOsc runtime",
    configs=FIGURE11_CONFIGS,
    build=_build,
    tabulate=lambda result: breakdown_tables(result.breakdowns),
))


def run_figure11(settings: Optional[ExperimentSettings] = None,
                 runner: Optional[ExperimentRunner] = None) -> Figure11Result:
    """Regenerate Figure 11."""
    return run_study(FIGURE11_STUDY, settings, runner=runner)

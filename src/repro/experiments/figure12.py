"""Figure 12: continuous speculation and the commit-on-violate policy.

Five configurations per workload, normalised to conventional SC's runtime:
SC, InvisiFence-Continuous (abort-immediately), conventional RMO,
InvisiFence-Continuous with commit-on-violate, and InvisiFence-Selective
enforcing RMO.  Expected shape (paper Sections 6.5/6.6): continuous
speculation beats SC on average but suffers enough violation cycles to fall
behind RMO (and occasionally behind SC); commit-on-violate removes most of
those violation cycles, bringing continuous speculation to within a few
percent of Invisi_rmo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cpu.stats import BREAKDOWN_COMPONENTS
from ..stats.report import format_breakdown_table
from .common import ExperimentRunner, ExperimentSettings

FIGURE12_CONFIGS = ("sc", "invisi_cont", "rmo", "invisi_cont_cov", "invisi_rmo")


@dataclass
class Figure12Result:
    """Runtime breakdowns normalised to conventional SC."""

    settings: ExperimentSettings
    #: {workload: {config: {component: % of SC runtime}}}
    breakdowns: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def total(self, workload: str, config: str) -> float:
        return sum(self.breakdowns[workload][config].values())

    def average_total(self, config: str) -> float:
        totals = [self.total(w, config) for w in self.breakdowns]
        return sum(totals) / len(totals) if totals else 0.0

    def violation_cycles(self, workload: str, config: str) -> float:
        return self.breakdowns[workload][config]["violation"]

    def format(self) -> str:
        return format_breakdown_table(
            self.breakdowns, BREAKDOWN_COMPONENTS,
            title="Figure 12: runtime of SC, Invisi_cont, RMO, Invisi_cont_CoV "
                  "and Invisi_rmo, % of SC runtime")


def run_figure12(settings: Optional[ExperimentSettings] = None,
                 runner: Optional[ExperimentRunner] = None) -> Figure12Result:
    """Regenerate Figure 12."""
    settings = settings or ExperimentSettings()
    runner = runner or ExperimentRunner(settings)
    result = Figure12Result(settings=settings)
    for workload in settings.workloads:
        result.breakdowns[workload] = {}
        for config in FIGURE12_CONFIGS:
            result.breakdowns[workload][config] = runner.normalized_breakdown(
                config, workload, baseline="sc")
    return result

"""Figure 12: continuous speculation and the commit-on-violate policy.

Five configurations per workload, normalised to conventional SC's runtime:
SC, InvisiFence-Continuous (abort-immediately), conventional RMO,
InvisiFence-Continuous with commit-on-violate, and InvisiFence-Selective
enforcing RMO.  Expected shape (paper Sections 6.5/6.6): continuous
speculation beats SC on average but suffers enough violation cycles to fall
behind RMO (and occasionally behind SC); commit-on-violate removes most of
those violation cycles, bringing continuous speculation to within a few
percent of Invisi_rmo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cpu.stats import BREAKDOWN_COMPONENTS
from ..stats.report import format_breakdown_table
from ..studies.registry import register_study
from ..studies.runner import StudyContext, run_study
from ..studies.spec import StudySpec
from .common import ExperimentRunner, ExperimentSettings
from .figure9 import breakdown_tables

FIGURE12_CONFIGS = ("sc", "invisi_cont", "rmo", "invisi_cont_cov", "invisi_rmo")


@dataclass
class Figure12Result:
    """Runtime breakdowns normalised to conventional SC."""

    settings: ExperimentSettings
    #: {workload: {config: {component: % of SC runtime}}}
    breakdowns: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def total(self, workload: str, config: str) -> float:
        return sum(self.breakdowns[workload][config].values())

    def average_total(self, config: str) -> float:
        totals = [self.total(w, config) for w in self.breakdowns]
        return sum(totals) / len(totals) if totals else 0.0

    def violation_cycles(self, workload: str, config: str) -> float:
        return self.breakdowns[workload][config]["violation"]

    def format(self) -> str:
        return format_breakdown_table(
            self.breakdowns, BREAKDOWN_COMPONENTS,
            title="Figure 12: runtime of SC, Invisi_cont, RMO, Invisi_cont_CoV "
                  "and Invisi_rmo, % of SC runtime")


def _build(ctx: StudyContext) -> Figure12Result:
    result = Figure12Result(settings=ctx.settings)
    for workload in ctx.settings.workloads:
        result.breakdowns[workload] = {}
        for config in FIGURE12_CONFIGS:
            result.breakdowns[workload][config] = ctx.normalized_breakdown(
                config, workload, baseline="sc")
    return result


FIGURE12_STUDY = register_study(StudySpec(
    name="figure12",
    title="Continuous speculation and commit-on-violate, % of SC runtime",
    configs=FIGURE12_CONFIGS,
    build=_build,
    tabulate=lambda result: breakdown_tables(result.breakdowns),
))


def run_figure12(settings: Optional[ExperimentSettings] = None,
                 runner: Optional[ExperimentRunner] = None) -> Figure12Result:
    """Regenerate Figure 12."""
    return run_study(FIGURE12_STUDY, settings, runner=runner)

"""Figure 9: runtime breakdown of conventional and InvisiFence configurations.

The same six configurations as Figure 8, but presented as stacked runtime
components (Busy / Other / SB full / SB drain / Violation) normalised to
conventional SC's runtime.  Expected shape: the InvisiFence variants remove
nearly all SB-full and SB-drain cycles and add only a small Violation
component, with Invisi_rmo showing the least time in total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cpu.stats import BREAKDOWN_COMPONENTS
from ..stats.report import format_breakdown_table
from .common import ExperimentRunner, ExperimentSettings
from .figure8 import FIGURE8_CONFIGS


@dataclass
class Figure9Result:
    """Normalised runtime breakdowns per workload and configuration."""

    settings: ExperimentSettings
    #: {workload: {config: {component: % of SC runtime}}}
    breakdowns: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def total(self, workload: str, config: str) -> float:
        return sum(self.breakdowns[workload][config].values())

    def ordering_cycles(self, workload: str, config: str) -> float:
        values = self.breakdowns[workload][config]
        return values["sb_full"] + values["sb_drain"] + values["violation"]

    def format(self) -> str:
        return format_breakdown_table(
            self.breakdowns, BREAKDOWN_COMPONENTS,
            title="Figure 9: runtime breakdown, % of conventional SC runtime "
                  "(lower total is better)")


def run_figure9(settings: Optional[ExperimentSettings] = None,
                runner: Optional[ExperimentRunner] = None) -> Figure9Result:
    """Regenerate Figure 9."""
    settings = settings or ExperimentSettings()
    runner = runner or ExperimentRunner(settings)
    result = Figure9Result(settings=settings)
    for workload in settings.workloads:
        result.breakdowns[workload] = {}
        for config in FIGURE8_CONFIGS:
            result.breakdowns[workload][config] = runner.normalized_breakdown(
                config, workload, baseline="sc")
    return result

"""Figure 9: runtime breakdown of conventional and InvisiFence configurations.

The same six configurations as Figure 8, but presented as stacked runtime
components (Busy / Other / SB full / SB drain / Violation) normalised to
conventional SC's runtime.  Expected shape: the InvisiFence variants remove
nearly all SB-full and SB-drain cycles and add only a small Violation
component, with Invisi_rmo showing the least time in total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cpu.stats import BREAKDOWN_COMPONENTS
from ..stats.report import format_breakdown_table
from ..studies.artifacts import StudyTable
from ..studies.registry import register_study
from ..studies.runner import StudyContext, run_study
from ..studies.spec import StudySpec
from .common import ExperimentRunner, ExperimentSettings
from .figure8 import FIGURE8_CONFIGS


@dataclass
class Figure9Result:
    """Normalised runtime breakdowns per workload and configuration."""

    settings: ExperimentSettings
    #: {workload: {config: {component: % of SC runtime}}}
    breakdowns: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def total(self, workload: str, config: str) -> float:
        return sum(self.breakdowns[workload][config].values())

    def ordering_cycles(self, workload: str, config: str) -> float:
        values = self.breakdowns[workload][config]
        return values["sb_full"] + values["sb_drain"] + values["violation"]

    def format(self) -> str:
        return format_breakdown_table(
            self.breakdowns, BREAKDOWN_COMPONENTS,
            title="Figure 9: runtime breakdown, % of conventional SC runtime "
                  "(lower total is better)")


def _build(ctx: StudyContext) -> Figure9Result:
    result = Figure9Result(settings=ctx.settings)
    for workload in ctx.settings.workloads:
        result.breakdowns[workload] = {}
        for config in FIGURE8_CONFIGS:
            result.breakdowns[workload][config] = ctx.normalized_breakdown(
                config, workload, baseline="sc")
    return result


def breakdown_tables(breakdowns: Dict[str, Dict[str, Dict[str, float]]],
                     table_name: str = "runtime_breakdown",
                     key_column: str = "workload") -> List[StudyTable]:
    """Flatten {key: {config: {component: %}}} into one artifact table.

    Shared by every breakdown-shaped study (figures 9/11/12, scenarios,
    scaling's stall attribution -- the latter keys rows by geometry).
    """
    rows = []
    for key, configs in breakdowns.items():
        for config, values in configs.items():
            rows.append([key, config]
                        + [float(values.get(c, 0.0)) for c in BREAKDOWN_COMPONENTS]
                        + [float(sum(values.get(c, 0.0)
                                     for c in BREAKDOWN_COMPONENTS))])
    return [StudyTable(table_name,
                       (key_column, "config") + tuple(BREAKDOWN_COMPONENTS)
                       + ("total_pct",), rows)]


FIGURE9_STUDY = register_study(StudySpec(
    name="figure9",
    title="Runtime breakdown of Figure 8's configs, % of SC runtime",
    configs=FIGURE8_CONFIGS,
    build=_build,
    tabulate=lambda result: breakdown_tables(result.breakdowns),
))


def run_figure9(settings: Optional[ExperimentSettings] = None,
                runner: Optional[ExperimentRunner] = None) -> Figure9Result:
    """Regenerate Figure 9."""
    return run_study(FIGURE9_STUDY, settings, runner=runner)

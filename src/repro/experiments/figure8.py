"""Figure 8: speedups of InvisiFence over conventional implementations.

For every workload, six configurations are compared against conventional
SC: conventional SC/TSO/RMO and InvisiFence-Selective enforcing SC, TSO,
and RMO.  Expected shape (paper Section 6.2/6.3): TSO beats SC by roughly
a quarter, RMO adds a smaller increment, and every InvisiFence variant
matches or exceeds conventional RMO, with Invisi_rmo the fastest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..stats.confidence import ConfidenceInterval
from ..stats.report import format_series_table
from ..studies.artifacts import StudyTable
from ..studies.metrics import speedup_interval
from ..studies.registry import register_study
from ..studies.runner import StudyContext, run_study
from ..studies.spec import StudySpec
from .common import ExperimentRunner, ExperimentSettings

FIGURE8_CONFIGS = ("sc", "tso", "rmo", "invisi_sc", "invisi_tso", "invisi_rmo")


@dataclass
class Figure8Result:
    """Speedups over conventional SC, per workload and configuration."""

    settings: ExperimentSettings
    #: {workload: {config: speedup}}
    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: {workload: {config: 95% CI}} (only meaningful with several seeds).
    intervals: Dict[str, Dict[str, ConfidenceInterval]] = field(default_factory=dict)

    def average_speedup(self, config: str) -> float:
        values = [w[config] for w in self.speedups.values()]
        return sum(values) / len(values) if values else 0.0

    def format(self) -> str:
        table = dict(self.speedups)
        table["(average)"] = {c: self.average_speedup(c) for c in FIGURE8_CONFIGS}
        return format_series_table(
            table, title="Figure 8: speedup over conventional SC (higher is better)")


def _build(ctx: StudyContext) -> Figure8Result:
    result = Figure8Result(settings=ctx.settings)
    for workload in ctx.settings.workloads:
        result.speedups[workload] = {}
        result.intervals[workload] = {}
        baseline_runs = ctx.runs("sc", workload)
        baseline_by_seed = {run.seed: run.cycles_per_core() for run in baseline_runs}
        for config in FIGURE8_CONFIGS:
            interval = speedup_interval(ctx.runs(config, workload), baseline_by_seed)
            result.speedups[workload][config] = interval.mean
            result.intervals[workload][config] = interval
    return result


def _tabulate(result: Figure8Result) -> List[StudyTable]:
    rows = []
    for workload, by_config in result.speedups.items():
        for config in FIGURE8_CONFIGS:
            interval = result.intervals[workload][config]
            rows.append([workload, config, by_config[config],
                         interval.low, interval.high, interval.samples])
    return [StudyTable("speedup_over_sc",
                       ("workload", "config", "speedup", "ci_low", "ci_high",
                        "seeds"), rows)]


FIGURE8_STUDY = register_study(StudySpec(
    name="figure8",
    title="Speedup of conventional and InvisiFence-Selective configs over SC",
    configs=FIGURE8_CONFIGS,
    build=_build,
    tabulate=_tabulate,
))


def run_figure8(settings: Optional[ExperimentSettings] = None,
                runner: Optional[ExperimentRunner] = None) -> Figure8Result:
    """Regenerate Figure 8."""
    return run_study(FIGURE8_STUDY, settings, runner=runner)

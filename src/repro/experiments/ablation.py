"""Ablation studies for the design choices the paper calls out.

Two sensitivity studies are mentioned in the paper but not plotted:

* **Store-buffer capacity** (Section 6.1): "We performed sensitivity studies
  (not shown) to determine store buffer capacities for InvisiFence that
  provide performance close to that of a store buffer of unbounded capacity.
  For InvisiFence configurations that employ a single checkpoint, a store
  buffer with eight entries suffices."  :func:`run_store_buffer_ablation`
  sweeps the coalescing-buffer size for single-checkpoint
  InvisiFence-Selective and reports the runtime relative to the largest size
  in the sweep.

* **Commit-on-violate timeout** (Section 3.2 / 6.6): the paper fixes the
  deferral window at 4000 cycles.  :func:`run_cov_timeout_ablation` sweeps
  the timeout for InvisiFence-Continuous with CoV and reports runtime,
  violation cycles, and how the conflicts were resolved, showing the
  saturation behaviour that justifies the choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..config import (
    ConsistencyModel,
    SpeculationConfig,
    SpeculationMode,
    StoreBufferConfig,
    StoreBufferKind,
    ViolationPolicy,
    paper_config,
)
from ..engine.simulator import simulate
from ..stats.report import format_table
from .common import ExperimentRunner, ExperimentSettings

DEFAULT_SB_SIZES = (1, 2, 4, 8, 16, 32, 64)
DEFAULT_COV_TIMEOUTS = (0, 250, 1000, 4000, 16000)


@dataclass
class StoreBufferAblationResult:
    """Runtime of InvisiFence-Selective versus coalescing-buffer capacity."""

    settings: ExperimentSettings
    workload: str
    #: {entries: cycles per core}
    cycles: Dict[int, float] = field(default_factory=dict)
    #: {entries: SB-full cycles summed over cores}
    sb_full: Dict[int, float] = field(default_factory=dict)

    def relative_runtime(self) -> Dict[int, float]:
        """Runtime normalised to the largest (most generous) capacity."""
        if not self.cycles:
            return {}
        best = self.cycles[max(self.cycles)]
        return {entries: value / best for entries, value in self.cycles.items()}

    def smallest_sufficient_capacity(self, tolerance: float = 0.02) -> int:
        """Smallest capacity within ``tolerance`` of the unbounded runtime."""
        relative = self.relative_runtime()
        for entries in sorted(relative):
            if relative[entries] <= 1.0 + tolerance:
                return entries
        return max(relative)

    def format(self) -> str:
        relative = self.relative_runtime()
        rows = [[entries, round(self.cycles[entries]), round(relative[entries], 3),
                 round(self.sb_full[entries])]
                for entries in sorted(self.cycles)]
        return format_table(
            ["SB entries", "cycles/core", "runtime vs largest", "SB-full cycles"],
            rows,
            title=f"Ablation: coalescing store-buffer capacity "
                  f"(InvisiFence-Selective SC, {self.workload})")


def run_store_buffer_ablation(
    settings: Optional[ExperimentSettings] = None,
    workload: str = "apache",
    sizes: Sequence[int] = DEFAULT_SB_SIZES,
    runner: Optional[ExperimentRunner] = None,
) -> StoreBufferAblationResult:
    """Sweep the store-buffer capacity of single-checkpoint InvisiFence."""
    settings = settings or ExperimentSettings()
    runner = runner or ExperimentRunner(settings)
    trace = runner.trace(workload, settings.seeds[0])
    result = StoreBufferAblationResult(settings=settings, workload=workload)
    for entries in sizes:
        config = paper_config(
            ConsistencyModel.SC,
            SpeculationConfig(mode=SpeculationMode.SELECTIVE),
            num_cores=settings.num_cores,
        ).replace(store_buffer=StoreBufferConfig(StoreBufferKind.COALESCING_BLOCK,
                                                 entries, 64))
        run = simulate(config, trace, warmup_fraction=settings.warmup_fraction)
        result.cycles[entries] = run.cycles_per_core()
        result.sb_full[entries] = float(run.aggregate().sb_full)
    return result


@dataclass
class CovTimeoutAblationResult:
    """Behaviour of continuous speculation versus the CoV timeout."""

    settings: ExperimentSettings
    workload: str
    #: {timeout: cycles per core}; timeout 0 means the abort-immediately policy.
    cycles: Dict[int, float] = field(default_factory=dict)
    #: {timeout: (aborts, cov_commits, violation cycles)}
    outcomes: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)

    def relative_runtime(self) -> Dict[int, float]:
        if not self.cycles:
            return {}
        baseline = self.cycles[min(self.cycles)]
        return {t: v / baseline for t, v in self.cycles.items()}

    def format(self) -> str:
        relative = self.relative_runtime()
        rows = []
        for timeout in sorted(self.cycles):
            aborts, cov_commits, violation = self.outcomes[timeout]
            label = "abort-immediately" if timeout == 0 else str(timeout)
            rows.append([label, round(self.cycles[timeout]),
                         round(relative[timeout], 3), aborts, cov_commits,
                         violation])
        return format_table(
            ["CoV timeout", "cycles/core", "runtime vs abort", "aborts",
             "CoV commits", "violation cycles"],
            rows,
            title=f"Ablation: commit-on-violate timeout "
                  f"(InvisiFence-Continuous, {self.workload})")


def run_cov_timeout_ablation(
    settings: Optional[ExperimentSettings] = None,
    workload: str = "apache",
    timeouts: Sequence[int] = DEFAULT_COV_TIMEOUTS,
    runner: Optional[ExperimentRunner] = None,
) -> CovTimeoutAblationResult:
    """Sweep the commit-on-violate deferral window for continuous speculation.

    A timeout of ``0`` selects the plain abort-immediately policy and serves
    as the baseline row.
    """
    settings = settings or ExperimentSettings()
    runner = runner or ExperimentRunner(settings)
    trace = runner.trace(workload, settings.seeds[0])
    result = CovTimeoutAblationResult(settings=settings, workload=workload)
    for timeout in timeouts:
        if timeout == 0:
            spec = SpeculationConfig(mode=SpeculationMode.CONTINUOUS,
                                     num_checkpoints=2,
                                     violation_policy=ViolationPolicy.ABORT)
        else:
            spec = SpeculationConfig(mode=SpeculationMode.CONTINUOUS,
                                     num_checkpoints=2,
                                     violation_policy=ViolationPolicy.COMMIT_ON_VIOLATE,
                                     cov_timeout=timeout)
        config = paper_config(ConsistencyModel.SC, spec, num_cores=settings.num_cores)
        run = simulate(config, trace, warmup_fraction=settings.warmup_fraction)
        stats = run.aggregate()
        result.cycles[timeout] = run.cycles_per_core()
        result.outcomes[timeout] = (stats.aborts, stats.cov_commits, stats.violation)
    return result

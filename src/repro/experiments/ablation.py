"""Ablation studies for the design choices the paper calls out.

Two sensitivity studies are mentioned in the paper but not plotted:

* **Store-buffer capacity** (Section 6.1): "We performed sensitivity studies
  (not shown) to determine store buffer capacities for InvisiFence that
  provide performance close to that of a store buffer of unbounded capacity.
  For InvisiFence configurations that employ a single checkpoint, a store
  buffer with eight entries suffices."  :func:`run_store_buffer_ablation`
  sweeps the coalescing-buffer size for single-checkpoint
  InvisiFence-Selective and reports the runtime relative to the largest size
  in the sweep.

* **Commit-on-violate timeout** (Section 3.2 / 6.6): the paper fixes the
  deferral window at 4000 cycles.  :func:`run_cov_timeout_ablation` sweeps
  the timeout for InvisiFence-Continuous with CoV and reports runtime,
  violation cycles, and how the conflicts were resolved, showing the
  saturation behaviour that justifies the choice.

Each swept point is a *study-private* configuration variant
(``invisi_sc_sb8``, ``invisi_cont_cov_t1000``, ...) overlaid on the
default registry while the study runs, so ablation cells go through the
same campaign executor, result cache, and dedup plan as every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign.registry import ConfigFactory
from ..config import (
    ConsistencyModel,
    SpeculationConfig,
    SpeculationMode,
    StoreBufferConfig,
    StoreBufferKind,
    SystemConfig,
    ViolationPolicy,
    paper_config,
)
from ..stats.report import format_table
from ..studies.artifacts import StudyTable
from ..studies.registry import register_study
from ..studies.runner import StudyContext, run_study
from ..studies.spec import StudySpec
from .common import ExperimentRunner, ExperimentSettings

DEFAULT_SB_SIZES = (1, 2, 4, 8, 16, 32, 64)
DEFAULT_COV_TIMEOUTS = (0, 250, 1000, 4000, 16000)


def _sb_name(entries: int) -> str:
    return f"invisi_sc_sb{entries}"


@lru_cache(maxsize=None)
def _sb_factory(entries: int) -> ConfigFactory:
    """Single-checkpoint InvisiFence-Selective with a bounded coalescing SB.

    Cached per capacity so repeated sweeps re-register the identical
    factory object (overlaying it again is then a no-op).
    """
    def factory(settings: "ExperimentSettings") -> SystemConfig:
        return paper_config(
            ConsistencyModel.SC,
            SpeculationConfig(mode=SpeculationMode.SELECTIVE),
            num_cores=settings.num_cores,
        ).replace(store_buffer=StoreBufferConfig(StoreBufferKind.COALESCING_BLOCK,
                                                 entries, 64))
    return factory


def _cov_name(timeout: int) -> str:
    return f"invisi_cont_cov_t{timeout}"


@lru_cache(maxsize=None)
def _cov_factory(timeout: int) -> ConfigFactory:
    """InvisiFence-Continuous with a fixed CoV window (0 = abort policy)."""
    def factory(settings: "ExperimentSettings") -> SystemConfig:
        if timeout == 0:
            spec = SpeculationConfig(mode=SpeculationMode.CONTINUOUS,
                                     num_checkpoints=2,
                                     violation_policy=ViolationPolicy.ABORT)
        else:
            spec = SpeculationConfig(mode=SpeculationMode.CONTINUOUS,
                                     num_checkpoints=2,
                                     violation_policy=ViolationPolicy.COMMIT_ON_VIOLATE,
                                     cov_timeout=timeout)
        return paper_config(ConsistencyModel.SC, spec,
                            num_cores=settings.num_cores)
    return factory


def _first_seed(settings: "ExperimentSettings") -> Tuple[int, ...]:
    """Ablations sweep a design parameter, not seeds: first seed only."""
    return (settings.seeds[0],)


@dataclass
class StoreBufferAblationResult:
    """Runtime of InvisiFence-Selective versus coalescing-buffer capacity."""

    settings: ExperimentSettings
    workload: str
    #: {entries: cycles per core}
    cycles: Dict[int, float] = field(default_factory=dict)
    #: {entries: SB-full cycles summed over cores}
    sb_full: Dict[int, float] = field(default_factory=dict)

    def relative_runtime(self) -> Dict[int, float]:
        """Runtime normalised to the largest (most generous) capacity."""
        if not self.cycles:
            return {}
        best = self.cycles[max(self.cycles)]
        return {entries: value / best for entries, value in self.cycles.items()}

    def smallest_sufficient_capacity(self, tolerance: float = 0.02) -> int:
        """Smallest capacity within ``tolerance`` of the unbounded runtime."""
        relative = self.relative_runtime()
        for entries in sorted(relative):
            if relative[entries] <= 1.0 + tolerance:
                return entries
        return max(relative)

    def format(self) -> str:
        relative = self.relative_runtime()
        rows = [[entries, round(self.cycles[entries]), round(relative[entries], 3),
                 round(self.sb_full[entries])]
                for entries in sorted(self.cycles)]
        return format_table(
            ["SB entries", "cycles/core", "runtime vs largest", "SB-full cycles"],
            rows,
            title=f"Ablation: coalescing store-buffer capacity "
                  f"(InvisiFence-Selective SC, {self.workload})")


def store_buffer_study(workload: str = "apache",
                       sizes: Sequence[int] = DEFAULT_SB_SIZES) -> StudySpec:
    """Declare the store-buffer capacity sweep as a study."""
    sizes = tuple(sizes)

    def _build(ctx: StudyContext) -> StoreBufferAblationResult:
        result = StoreBufferAblationResult(settings=ctx.settings,
                                           workload=workload)
        seed = ctx.settings.seeds[0]
        for entries in sizes:
            run = ctx.run(_sb_name(entries), workload, seed)
            result.cycles[entries] = run.cycles_per_core()
            result.sb_full[entries] = float(run.aggregate().sb_full)
        return result

    def _tabulate(result: StoreBufferAblationResult) -> List[StudyTable]:
        relative = result.relative_runtime()
        rows = [[result.workload, entries, result.cycles[entries],
                 relative[entries], result.sb_full[entries]]
                for entries in sorted(result.cycles)]
        return [StudyTable("store_buffer_capacity",
                           ("workload", "sb_entries", "cycles_per_core",
                            "runtime_vs_largest", "sb_full_cycles"), rows)]

    return StudySpec(
        name="ablation-sb",
        title="Sensitivity of InvisiFence-Selective to store-buffer capacity",
        configs=tuple(_sb_name(entries) for entries in sizes),
        workloads=(workload,),
        seeds=_first_seed,
        extra_configs={_sb_name(entries): _sb_factory(entries)
                       for entries in sizes},
        build=_build,
        tabulate=_tabulate,
    )


@dataclass
class CovTimeoutAblationResult:
    """Behaviour of continuous speculation versus the CoV timeout."""

    settings: ExperimentSettings
    workload: str
    #: {timeout: cycles per core}; timeout 0 means the abort-immediately policy.
    cycles: Dict[int, float] = field(default_factory=dict)
    #: {timeout: (aborts, cov_commits, violation cycles)}
    outcomes: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)

    def relative_runtime(self) -> Dict[int, float]:
        if not self.cycles:
            return {}
        baseline = self.cycles[min(self.cycles)]
        return {t: v / baseline for t, v in self.cycles.items()}

    def format(self) -> str:
        relative = self.relative_runtime()
        rows = []
        for timeout in sorted(self.cycles):
            aborts, cov_commits, violation = self.outcomes[timeout]
            label = "abort-immediately" if timeout == 0 else str(timeout)
            rows.append([label, round(self.cycles[timeout]),
                         round(relative[timeout], 3), aborts, cov_commits,
                         violation])
        return format_table(
            ["CoV timeout", "cycles/core", "runtime vs abort", "aborts",
             "CoV commits", "violation cycles"],
            rows,
            title=f"Ablation: commit-on-violate timeout "
                  f"(InvisiFence-Continuous, {self.workload})")


def cov_timeout_study(workload: str = "apache",
                      timeouts: Sequence[int] = DEFAULT_COV_TIMEOUTS) -> StudySpec:
    """Declare the commit-on-violate timeout sweep as a study."""
    timeouts = tuple(timeouts)

    def _build(ctx: StudyContext) -> CovTimeoutAblationResult:
        result = CovTimeoutAblationResult(settings=ctx.settings,
                                          workload=workload)
        seed = ctx.settings.seeds[0]
        for timeout in timeouts:
            run = ctx.run(_cov_name(timeout), workload, seed)
            stats = run.aggregate()
            result.cycles[timeout] = run.cycles_per_core()
            result.outcomes[timeout] = (stats.aborts, stats.cov_commits,
                                        stats.violation)
        return result

    def _tabulate(result: CovTimeoutAblationResult) -> List[StudyTable]:
        relative = result.relative_runtime()
        rows = []
        for timeout in sorted(result.cycles):
            aborts, cov_commits, violation = result.outcomes[timeout]
            rows.append([result.workload, timeout, result.cycles[timeout],
                         relative[timeout], aborts, cov_commits, violation])
        return [StudyTable("cov_timeout",
                           ("workload", "cov_timeout", "cycles_per_core",
                            "runtime_vs_abort", "aborts", "cov_commits",
                            "violation_cycles"), rows)]

    return StudySpec(
        name="ablation-cov",
        title="Sensitivity of continuous speculation to the CoV timeout",
        configs=tuple(_cov_name(timeout) for timeout in timeouts),
        workloads=(workload,),
        seeds=_first_seed,
        extra_configs={_cov_name(timeout): _cov_factory(timeout)
                       for timeout in timeouts},
        build=_build,
        tabulate=_tabulate,
    )


ABLATION_SB_STUDY = register_study(store_buffer_study())
ABLATION_COV_STUDY = register_study(cov_timeout_study())


def run_store_buffer_ablation(
    settings: Optional[ExperimentSettings] = None,
    workload: str = "apache",
    sizes: Sequence[int] = DEFAULT_SB_SIZES,
    runner: Optional[ExperimentRunner] = None,
) -> StoreBufferAblationResult:
    """Sweep the store-buffer capacity of single-checkpoint InvisiFence."""
    return run_study(store_buffer_study(workload, sizes), settings,
                     runner=runner)


def run_cov_timeout_ablation(
    settings: Optional[ExperimentSettings] = None,
    workload: str = "apache",
    timeouts: Sequence[int] = DEFAULT_COV_TIMEOUTS,
    runner: Optional[ExperimentRunner] = None,
) -> CovTimeoutAblationResult:
    """Sweep the commit-on-violate deferral window for continuous speculation.

    A timeout of ``0`` selects the plain abort-immediately policy and serves
    as the baseline row.
    """
    return run_study(cov_timeout_study(workload, timeouts), settings,
                     runner=runner)

"""Shared experiment machinery: configurations, settings, and a cached runner.

The machine configurations evaluated by the paper are referred to by short
names throughout the experiment drivers and benchmarks:

==================  =========================================================
name                meaning
==================  =========================================================
``sc``              conventional SC (word FIFO store buffer)
``tso``             conventional TSO
``rmo``             conventional RMO (coalescing store buffer)
``invisi_sc``       InvisiFence-Selective enforcing SC, one checkpoint
``invisi_tso``      InvisiFence-Selective enforcing TSO
``invisi_rmo``      InvisiFence-Selective enforcing RMO
``invisi_sc_2ckpt`` InvisiFence-Selective (SC) with two checkpoints
``aso_sc``          the ASO baseline (ASOsc)
``invisi_cont``     InvisiFence-Continuous, abort-immediately policy
``invisi_cont_cov`` InvisiFence-Continuous with commit-on-violate
==================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..campaign.cache import ResultCache
from ..campaign.executor import CampaignExecutor, CampaignReport
from ..campaign.jobs import Job, dedupe_jobs, expand_jobs
from ..campaign.registry import ConfigRegistry, DEFAULT_REGISTRY
from ..config import SystemConfig
from ..engine.results import RunResult
from ..studies import metrics as _metrics
from ..trace.trace import MultiThreadedTrace
from ..workloads.presets import workload_names


class _LiveConfigNames(Sequence):
    """A live, sequence-like view of ``DEFAULT_REGISTRY.names()``.

    Configurations registered at runtime (``DEFAULT_REGISTRY.register``)
    are immediately visible here, so call sites that imported
    :data:`CONFIG_NAMES` never work from a stale import-time snapshot.
    """

    def _names(self) -> Tuple[str, ...]:
        return DEFAULT_REGISTRY.names()

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    def __getitem__(self, index):
        return self._names()[index]

    def __contains__(self, name: object) -> bool:
        return name in self._names()

    def __eq__(self, other: object) -> bool:
        try:
            return self._names() == tuple(other)  # type: ignore[arg-type]
        except TypeError:
            return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self._names())


#: Live view of the default registry's short-names (kept in sync with
#: runtime registrations; equivalent to calling ``DEFAULT_REGISTRY.names()``).
CONFIG_NAMES = _LiveConfigNames()


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale and scope of an experiment run."""

    num_cores: int = 16
    ops_per_thread: int = 20_000
    seeds: Tuple[int, ...] = (1,)
    workloads: Tuple[str, ...] = tuple(workload_names())
    #: commit-on-violate timeout (paper: 4000 cycles).
    cov_timeout: int = 4000
    #: leading fraction of each trace excluded from statistics (cache warmup).
    warmup_fraction: float = 0.2

    @classmethod
    def quick(cls, num_cores: int = 8, ops_per_thread: int = 4_000,
              workloads: Optional[Sequence[str]] = None,
              seeds: Sequence[int] = (1,)) -> "ExperimentSettings":
        """A scaled-down setup for tests and the benchmark harness."""
        return cls(num_cores=num_cores, ops_per_thread=ops_per_thread,
                   seeds=tuple(seeds),
                   workloads=tuple(workloads) if workloads is not None
                   else tuple(workload_names()))


def make_config(name: str, settings: ExperimentSettings) -> SystemConfig:
    """Build the :class:`SystemConfig` for a configuration short-name.

    Delegates to the campaign subsystem's declarative registry
    (:data:`repro.campaign.DEFAULT_REGISTRY`); new variants registered there
    are immediately available here and in the CLI.
    """
    return DEFAULT_REGISTRY.make(name, settings)


class ExperimentRunner:
    """Runs (configuration, workload, seed) combinations with caching.

    Several figures share configurations (e.g. the ``sc`` baseline appears
    in Figures 1, 8, 9, and 12); a shared runner avoids re-simulating them.
    Traces are also cached per (workload, seed).

    The runner is a thin façade over the campaign subsystem: cells execute
    through a :class:`~repro.campaign.executor.CampaignExecutor` (pass
    ``jobs > 1`` to simulate missing cells on a process pool) and, when a
    :class:`~repro.campaign.cache.ResultCache` is attached, completed cells
    persist across processes and sessions.  :meth:`prefetch` computes a
    whole cross-product up front so the figure drivers' serial loops then
    hit only memoized results.  The convenience aggregations delegate to
    the study framework's metric pipeline (:mod:`repro.studies.metrics`).
    """

    def __init__(self, settings: ExperimentSettings, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 registry: Optional[ConfigRegistry] = None,
                 engine: str = "fast", recorder=None) -> None:
        self.settings = settings
        self.executor = CampaignExecutor(settings, jobs=jobs, cache=cache,
                                         registry=registry, engine=engine,
                                         recorder=recorder)
        #: what the last :meth:`run_jobs` call actually did.
        self.last_report = CampaignReport()
        self._results: Dict[Tuple[str, str, int], RunResult] = {}

    # -- building blocks ----------------------------------------------------

    def trace(self, workload: str, seed: int) -> MultiThreadedTrace:
        return self.executor.trace_for(workload, seed)

    def run_jobs(self, jobs: Sequence[Job]) -> List[RunResult]:
        """Run campaign cells, skipping any already memoized in-process."""
        jobs = list(jobs)
        unique = dedupe_jobs(jobs)
        todo = [job for job in unique
                if (job.config_name, job.workload, job.seed) not in self._results]
        report = CampaignReport(total=len(jobs),
                                deduplicated=len(jobs) - len(unique))
        if todo:
            for job, result in zip(todo, self.executor.run(todo)):
                self._results[(job.config_name, job.workload, job.seed)] = result
            tally = self.executor.last_report
            report.simulated = tally.simulated
            report.cache_hits = tally.cache_hits
            report.cache_stats = tally.cache_stats
            report.backend_stats = tally.backend_stats
        self.last_report = report
        return [self._results[(job.config_name, job.workload, job.seed)]
                for job in jobs]

    def prefetch(self, config_names: Iterable[str],
                 workloads: Optional[Iterable[str]] = None,
                 seeds: Optional[Iterable[int]] = None) -> List[RunResult]:
        """Run the full (configs x workloads x seeds) cross-product.

        Workloads and seeds default to the runner's settings.  This is the
        parallelism entry point: one call fans every missing cell out over
        the executor's worker pool.
        """
        workloads = tuple(workloads) if workloads is not None else self.settings.workloads
        seeds = tuple(seeds) if seeds is not None else self.settings.seeds
        return self.run_jobs(expand_jobs(config_names, workloads, seeds))

    def run(self, config_name: str, workload: str, seed: int) -> RunResult:
        return self.run_jobs([Job(config_name, workload, seed)])[0]

    # -- convenience aggregations ---------------------------------------------

    def run_all_seeds(self, config_name: str, workload: str) -> List[RunResult]:
        return [self.run(config_name, workload, seed) for seed in self.settings.seeds]

    def mean_cycles(self, config_name: str, workload: str) -> float:
        return _metrics.mean_cycles(self.run_all_seeds(config_name, workload))

    def mean_breakdown(self, config_name: str, workload: str) -> Dict[str, float]:
        return _metrics.mean_breakdown(self.run_all_seeds(config_name, workload))

    def speedup(self, config_name: str, workload: str, baseline: str) -> float:
        return _metrics.speedup(self.run_all_seeds(config_name, workload),
                                self.run_all_seeds(baseline, workload))

    def normalized_breakdown(self, config_name: str, workload: str,
                             baseline: str) -> Dict[str, float]:
        """Breakdown of ``config_name`` as % of the baseline's runtime."""
        return _metrics.normalized_breakdown(
            self.run_all_seeds(config_name, workload),
            self.run_all_seeds(baseline, workload))

    def speculation_fraction(self, config_name: str, workload: str) -> float:
        return _metrics.mean_speculation_fraction(
            self.run_all_seeds(config_name, workload))

"""Shared experiment machinery: configurations, settings, and a cached runner.

The machine configurations evaluated by the paper are referred to by short
names throughout the experiment drivers and benchmarks:

==================  =========================================================
name                meaning
==================  =========================================================
``sc``              conventional SC (word FIFO store buffer)
``tso``             conventional TSO
``rmo``             conventional RMO (coalescing store buffer)
``invisi_sc``       InvisiFence-Selective enforcing SC, one checkpoint
``invisi_tso``      InvisiFence-Selective enforcing TSO
``invisi_rmo``      InvisiFence-Selective enforcing RMO
``invisi_sc_2ckpt`` InvisiFence-Selective (SC) with two checkpoints
``aso_sc``          the ASO baseline (ASOsc)
``invisi_cont``     InvisiFence-Continuous, abort-immediately policy
``invisi_cont_cov`` InvisiFence-Continuous with commit-on-violate
==================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import (
    ConsistencyModel,
    SpeculationConfig,
    SpeculationMode,
    SystemConfig,
    ViolationPolicy,
    paper_config,
)
from ..engine.results import RunResult
from ..engine.simulator import simulate
from ..errors import ConfigurationError
from ..trace.trace import MultiThreadedTrace
from ..workloads.presets import workload_names
from ..workloads.registry import build_trace

#: All configuration short-names understood by :func:`make_config`.
CONFIG_NAMES = (
    "sc", "tso", "rmo",
    "invisi_sc", "invisi_tso", "invisi_rmo",
    "invisi_sc_2ckpt", "aso_sc",
    "invisi_cont", "invisi_cont_cov",
)


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale and scope of an experiment run."""

    num_cores: int = 16
    ops_per_thread: int = 20_000
    seeds: Tuple[int, ...] = (1,)
    workloads: Tuple[str, ...] = tuple(workload_names())
    #: commit-on-violate timeout (paper: 4000 cycles).
    cov_timeout: int = 4000
    #: leading fraction of each trace excluded from statistics (cache warmup).
    warmup_fraction: float = 0.2

    @classmethod
    def quick(cls, num_cores: int = 8, ops_per_thread: int = 4_000,
              workloads: Optional[Sequence[str]] = None,
              seeds: Sequence[int] = (1,)) -> "ExperimentSettings":
        """A scaled-down setup for tests and the benchmark harness."""
        return cls(num_cores=num_cores, ops_per_thread=ops_per_thread,
                   seeds=tuple(seeds),
                   workloads=tuple(workloads) if workloads is not None
                   else tuple(workload_names()))


def make_config(name: str, settings: ExperimentSettings) -> SystemConfig:
    """Build the :class:`SystemConfig` for a configuration short-name."""
    cores = settings.num_cores
    cov = settings.cov_timeout
    if name == "sc":
        return paper_config(ConsistencyModel.SC, num_cores=cores)
    if name == "tso":
        return paper_config(ConsistencyModel.TSO, num_cores=cores)
    if name == "rmo":
        return paper_config(ConsistencyModel.RMO, num_cores=cores)
    if name == "invisi_sc":
        return paper_config(ConsistencyModel.SC,
                            SpeculationConfig(mode=SpeculationMode.SELECTIVE),
                            num_cores=cores)
    if name == "invisi_tso":
        return paper_config(ConsistencyModel.TSO,
                            SpeculationConfig(mode=SpeculationMode.SELECTIVE),
                            num_cores=cores)
    if name == "invisi_rmo":
        return paper_config(ConsistencyModel.RMO,
                            SpeculationConfig(mode=SpeculationMode.SELECTIVE),
                            num_cores=cores)
    if name == "invisi_sc_2ckpt":
        return paper_config(ConsistencyModel.SC,
                            SpeculationConfig(mode=SpeculationMode.SELECTIVE,
                                              num_checkpoints=2),
                            num_cores=cores)
    if name == "aso_sc":
        return paper_config(ConsistencyModel.SC,
                            SpeculationConfig(mode=SpeculationMode.ASO,
                                              num_checkpoints=2),
                            num_cores=cores)
    if name == "invisi_cont":
        return paper_config(ConsistencyModel.SC,
                            SpeculationConfig(mode=SpeculationMode.CONTINUOUS,
                                              num_checkpoints=2),
                            num_cores=cores)
    if name == "invisi_cont_cov":
        return paper_config(ConsistencyModel.SC,
                            SpeculationConfig(mode=SpeculationMode.CONTINUOUS,
                                              num_checkpoints=2,
                                              violation_policy=ViolationPolicy.COMMIT_ON_VIOLATE,
                                              cov_timeout=cov),
                            num_cores=cores)
    raise ConfigurationError(
        f"unknown configuration {name!r}; known: {', '.join(CONFIG_NAMES)}"
    )


class ExperimentRunner:
    """Runs (configuration, workload, seed) combinations with caching.

    Several figures share configurations (e.g. the ``sc`` baseline appears
    in Figures 1, 8, 9, and 12); a shared runner avoids re-simulating them.
    Traces are also cached per (workload, seed).
    """

    def __init__(self, settings: ExperimentSettings) -> None:
        self.settings = settings
        self._traces: Dict[Tuple[str, int], MultiThreadedTrace] = {}
        self._results: Dict[Tuple[str, str, int], RunResult] = {}

    # -- building blocks ----------------------------------------------------

    def trace(self, workload: str, seed: int) -> MultiThreadedTrace:
        key = (workload, seed)
        if key not in self._traces:
            self._traces[key] = build_trace(
                workload, num_threads=self.settings.num_cores,
                ops_per_thread=self.settings.ops_per_thread, seed=seed)
        return self._traces[key]

    def run(self, config_name: str, workload: str, seed: int) -> RunResult:
        key = (config_name, workload, seed)
        if key not in self._results:
            config = make_config(config_name, self.settings)
            self._results[key] = simulate(
                config, self.trace(workload, seed),
                warmup_fraction=self.settings.warmup_fraction)
        return self._results[key]

    # -- convenience aggregations ---------------------------------------------

    def run_all_seeds(self, config_name: str, workload: str) -> List[RunResult]:
        return [self.run(config_name, workload, seed) for seed in self.settings.seeds]

    def mean_cycles(self, config_name: str, workload: str) -> float:
        runs = self.run_all_seeds(config_name, workload)
        return sum(r.cycles_per_core() for r in runs) / len(runs)

    def mean_breakdown(self, config_name: str, workload: str) -> Dict[str, float]:
        runs = self.run_all_seeds(config_name, workload)
        combined: Dict[str, float] = {}
        for run in runs:
            for component, value in run.breakdown().items():
                combined[component] = combined.get(component, 0.0) + value / len(runs)
        return combined

    def speedup(self, config_name: str, workload: str, baseline: str) -> float:
        base = self.mean_cycles(baseline, workload)
        mine = self.mean_cycles(config_name, workload)
        return base / mine if mine else 0.0

    def normalized_breakdown(self, config_name: str, workload: str,
                             baseline: str) -> Dict[str, float]:
        """Breakdown of ``config_name`` as % of the baseline's runtime."""
        base_total = sum(self.mean_breakdown(baseline, workload).values())
        values = self.mean_breakdown(config_name, workload)
        if base_total <= 0:
            return {k: 0.0 for k in values}
        return {k: 100.0 * v / base_total for k, v in values.items()}

    def speculation_fraction(self, config_name: str, workload: str) -> float:
        runs = self.run_all_seeds(config_name, workload)
        return sum(r.speculation_fraction() for r in runs) / len(runs)

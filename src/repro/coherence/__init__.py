"""Invalidation-based directory cache coherence.

InvisiFence's central claim is that it works under a *conventional*
invalidation-based protocol: store permissions are acquired eagerly per
block, writes to the same block are serialised by the directory, and the
processor is informed when a store miss completes.  This package implements
that substrate:

* :mod:`repro.coherence.directory` -- full-map directory state (sharers,
  owner, per-block serialisation).
* :mod:`repro.coherence.l2` -- shared L2 tag array used for hit/miss latency.
* :mod:`repro.coherence.messages` -- transaction records for tracing/tests.
* :mod:`repro.coherence.memory_system` -- the synchronous protocol engine
  that L1s/cores call into; it computes transaction latencies, applies
  global state changes, and performs InvisiFence conflict detection by
  consulting the speculative bits of victim L1 blocks.
"""

from .directory import Directory, DirectoryEntry
from .l2 import L2Cache
from .messages import AccessOutcome, ConflictResolution, TransactionKind, TransactionRecord
from .memory_system import ExternalConflictListener, MemorySystem

__all__ = [
    "Directory",
    "DirectoryEntry",
    "L2Cache",
    "AccessOutcome",
    "ConflictResolution",
    "TransactionKind",
    "TransactionRecord",
    "MemorySystem",
    "ExternalConflictListener",
]

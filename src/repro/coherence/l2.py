"""Shared L2 cache tag array.

The L2 is used purely as a latency filter: a directory transaction that
finds its data in the L2 pays the L2 hit latency, otherwise it additionally
pays the main-memory latency.  Dirty and clean writebacks from L1s install
blocks in the L2, as do fills from memory.  Because the directory keeps
coherence state independently, L2 evictions silently drop blocks without
recalling L1 copies (a documented simplification).
"""

from __future__ import annotations

from ..config import CacheConfig
from ..memory.block import CoherenceState
from ..memory.cache import CacheArray


class L2Cache:
    """A thin wrapper over :class:`CacheArray` for the shared L2."""

    def __init__(self, config: CacheConfig) -> None:
        self._tags = CacheArray(config)
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def config(self) -> CacheConfig:
        return self._tags.config

    def probe(self, block_addr: int) -> bool:
        """Record and return whether ``block_addr`` hits in the L2."""
        if self._tags.contains(block_addr):
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, block_addr: int) -> bool:
        return self._tags.contains(block_addr)

    def install(self, block_addr: int) -> None:
        """Install a block (fill from memory or writeback from an L1)."""
        result = self._tags.prepare_fill(block_addr)
        if result.victim is not None and result.needs_writeback:
            # The victim's data goes back to memory; no latency is charged
            # to the requester for this background operation.
            self.writebacks += 1
        self._tags.install(block_addr, CoherenceState.EXCLUSIVE, dirty=False)

    def install_dirty(self, block_addr: int) -> None:
        """Install a block received via an L1 writeback (data is newer)."""
        result = self._tags.prepare_fill(block_addr)
        if result.victim is not None and result.needs_writeback:
            self.writebacks += 1
        self._tags.install(block_addr, CoherenceState.MODIFIED, dirty=True)

    def __len__(self) -> int:
        return len(self._tags)

"""Shared L2 cache tag array, optionally split into address-interleaved banks.

The L2 is used purely as a latency filter: a directory transaction that
finds its data in the L2 pays the L2 hit latency, otherwise it additionally
pays the main-memory latency.  Dirty and clean writebacks from L1s install
blocks in the L2, as do fills from memory.  Because the directory keeps
coherence state independently, L2 evictions silently drop blocks without
recalling L1 copies (a documented simplification).

With ``banks > 1`` the tag array is divided into equal banks selected by
block-address interleaving (the same interleave the directory uses for
home nodes), so a hot address range's capacity conflicts stay local to a
bank.  One bank reproduces the paper's monolithic shared L2 exactly.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..config import CacheConfig
from ..memory.block import CoherenceState
from ..memory.cache import CacheArray


class L2Cache:
    """A thin wrapper over per-bank :class:`CacheArray` tags for the L2."""

    def __init__(self, config: CacheConfig, banks: int = 1) -> None:
        self._config = config
        self._banks = banks
        bank_config = config if banks == 1 else dataclasses.replace(
            config, size_bytes=config.size_bytes // banks)
        self._tags: List[CacheArray] = [CacheArray(bank_config)
                                        for _ in range(banks)]
        self._block_bytes = config.block_bytes
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def config(self) -> CacheConfig:
        return self._config

    @property
    def num_banks(self) -> int:
        return self._banks

    def bank_of(self, block_addr: int) -> int:
        """Bank index for an aligned block address (address-interleaved)."""
        return (block_addr // self._block_bytes) % self._banks

    def _bank(self, block_addr: int) -> CacheArray:
        if self._banks == 1:
            return self._tags[0]
        return self._tags[self.bank_of(block_addr)]

    def _slot(self, block_addr: int) -> int:
        """Bank-local address for a block (the bank stride divided out).

        Blocks land in bank ``blocknum % banks``; within a bank the set
        index must come from ``blocknum // banks``, otherwise every block
        a bank receives shares the same residues modulo ``banks`` and the
        bank can only ever reach ``1/banks`` of its own sets.  The mapping
        is bijective per bank, so tags cannot collide.
        """
        if self._banks == 1:
            return block_addr
        return (block_addr // self._block_bytes // self._banks) * self._block_bytes

    def probe(self, block_addr: int) -> bool:
        """Record and return whether ``block_addr`` hits in the L2."""
        if self._bank(block_addr).contains(self._slot(block_addr)):
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, block_addr: int) -> bool:
        return self._bank(block_addr).contains(self._slot(block_addr))

    def install(self, block_addr: int) -> None:
        """Install a block (fill from memory or writeback from an L1)."""
        tags = self._bank(block_addr)
        slot = self._slot(block_addr)
        result = tags.prepare_fill(slot)
        if result.victim is not None and result.needs_writeback:
            # The victim's data goes back to memory; no latency is charged
            # to the requester for this background operation.
            self.writebacks += 1
        tags.install(slot, CoherenceState.EXCLUSIVE, dirty=False)

    def install_dirty(self, block_addr: int) -> None:
        """Install a block received via an L1 writeback (data is newer)."""
        tags = self._bank(block_addr)
        slot = self._slot(block_addr)
        result = tags.prepare_fill(slot)
        if result.victim is not None and result.needs_writeback:
            self.writebacks += 1
        tags.install(slot, CoherenceState.MODIFIED, dirty=True)

    def __len__(self) -> int:
        return sum(len(tags) for tags in self._tags)

"""Full-map directory state.

The directory records, for every cache block that has ever been requested,
the set of L1 caches holding the block in a shared state and the single L1
(if any) holding it in a writable (Exclusive/Modified) state.  A per-block
``busy_until`` timestamp serialises transactions to the same block, which is
the property the paper relies on ("these protocols serialize all writes to
the same address").

The directory is deliberately unbounded: the shared L2 tag array only
affects hit/miss *latency*, never correctness (see DESIGN.md section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Set

from ..errors import CoherenceError


@dataclass
class DirectoryEntry:
    """Coherence metadata for a single cache block."""

    address: int
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None
    #: directory occupancy: transactions to this block issued before this
    #: time are serialised behind the previous transaction.
    busy_until: int = 0

    @property
    def is_uncached(self) -> bool:
        return self.owner is None and not self.sharers

    @property
    def is_shared(self) -> bool:
        return self.owner is None and bool(self.sharers)

    @property
    def is_modified(self) -> bool:
        return self.owner is not None

    def holders(self) -> Set[int]:
        """All L1 caches that may hold a valid copy."""
        holders = set(self.sharers)
        if self.owner is not None:
            holders.add(self.owner)
        return holders

    def check(self) -> None:
        """Validate the single-writer / multiple-reader invariant."""
        if self.owner is not None and self.sharers:
            raise CoherenceError(
                f"block {self.address:#x} has owner {self.owner} and sharers "
                f"{sorted(self.sharers)} simultaneously"
            )


class Directory:
    """Mapping from block address to :class:`DirectoryEntry`."""

    def __init__(self, block_bytes: int) -> None:
        self._block_bytes = block_bytes
        self._entries: Dict[int, DirectoryEntry] = {}

    def entry(self, block_addr: int) -> DirectoryEntry:
        """Return (creating if needed) the entry for an aligned block address."""
        entry = self._entries.get(block_addr)
        if entry is None:
            entry = DirectoryEntry(address=block_addr)
            self._entries[block_addr] = entry
        return entry

    def peek(self, block_addr: int) -> Optional[DirectoryEntry]:
        """Return the entry if it exists, without creating it."""
        return self._entries.get(block_addr)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DirectoryEntry]:
        return iter(self._entries.values())

    def check_invariants(self) -> None:
        """Validate all entries (used by tests and debug assertions)."""
        for entry in self._entries.values():
            entry.check()

"""Transaction records and access outcomes.

The memory system is synchronous: an access call computes the full latency
of the corresponding coherence transaction and applies all state changes
immediately.  These dataclasses describe the result handed back to the
requesting core and, optionally, a detailed record of the transaction for
tests and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from ..memory.block import CoherenceState


class TransactionKind(Enum):
    """Coherence transaction types issued by L1 caches."""

    GETS = "GetS"
    GETM = "GetM"
    UPGRADE = "Upgrade"
    WRITEBACK = "Writeback"
    CLEAN_WRITEBACK = "CleanWriteback"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class TransactionRecord:
    """Detailed description of one coherence transaction (for analysis)."""

    kind: TransactionKind
    requester: int
    block_address: int
    issue_time: int
    start_time: int
    completion_time: int
    l2_hit: bool = False
    forwarded_from_owner: Optional[int] = None
    invalidated_sharers: List[int] = field(default_factory=list)
    conflicts: List[int] = field(default_factory=list)
    deferred_cycles: int = 0

    @property
    def latency(self) -> int:
        return self.completion_time - self.issue_time


@dataclass
class ConflictResolution:
    """How a speculating core resolved an external conflicting request.

    ``extra_delay`` is the additional latency imposed on the requester
    beyond the normal invalidation/forward path: zero for the default
    abort-immediately policy, up to the CoV timeout when the victim defers
    the request while it tries to commit.
    """

    extra_delay: int = 0
    aborted: bool = False
    deferred: bool = False


@dataclass
class AccessOutcome:
    """Result of an L1 access as seen by the requesting core."""

    hit: bool
    completion_time: int
    state: CoherenceState
    #: extra cycles the requester spent waiting for its own forced
    #: speculation commit before a fill could evict a speculative block.
    forced_commit_delay: int = 0
    record: Optional[TransactionRecord] = None

    @property
    def miss(self) -> bool:
        return not self.hit

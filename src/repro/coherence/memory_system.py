"""The coherent memory system.

:class:`MemorySystem` ties together the per-core L1 tag arrays, the shared
L2, the full-map directory, and the torus latency model.  It exposes a
*synchronous* interface: an L1 access computes the complete latency of the
corresponding coherence transaction, applies every global state change
immediately, and returns the completion time to the caller.  Cross-core
timing interactions are still honoured:

* Transactions to the same block are serialised through the directory
  entry's ``busy_until`` timestamp.
* External requests that hit speculatively accessed blocks in another L1
  are reported to that core's consistency controller (the
  :class:`ExternalConflictListener`), which decides between aborting its
  speculation and -- under commit-on-violate -- deferring the requester
  while it tries to commit.  The deferral feeds back into the requester's
  completion time.
* A fill that would have to evict a speculatively accessed block first
  forces that core to commit (Section 3.2 of the paper); the resulting
  delay is charged to the requester as ``forced_commit_delay``.

The memory system never buffers store *data*; the simulator is trace
driven and only state and timing matter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from ..config import SystemConfig
from ..errors import SimulationError
from ..interconnect.latency import LatencyModel
from ..interconnect.topology import TorusTopology
from ..memory.address import block_mask
from ..memory.block import CoherenceState
from ..memory.cache import CacheArray
from ..obs.recorder import COHERENCE_TID_BASE, active
from .directory import Directory
from .l2 import L2Cache
from .messages import AccessOutcome, ConflictResolution, TransactionKind, TransactionRecord


class ExternalConflictListener(Protocol):
    """Interface a consistency controller exposes to the memory system."""

    def on_external_conflict(self, block_addr: int, is_write: bool,
                             arrival_time: int) -> ConflictResolution:
        """An external request conflicts with this core's speculation."""
        ...  # pragma: no cover - protocol definition

    def forced_commit(self, now: int) -> int:
        """Commit speculation so a speculative block can be evicted.

        Returns the time at which the commit completes (the eviction may
        proceed at or after that time).
        """
        ...  # pragma: no cover - protocol definition


class MemorySystem:
    """Directory-coherent memory hierarchy shared by all cores."""

    def __init__(self, config: SystemConfig, record_transactions: bool = False,
                 fast_path: bool = True, recorder=None) -> None:
        self._config = config
        self._topology = TorusTopology(config.interconnect)
        self._latency = LatencyModel(config, self._topology)
        self._l1s: List[CacheArray] = [CacheArray(config.l1) for _ in range(config.num_cores)]
        self._l2 = L2Cache(config.l2, banks=config.l2_banks)
        self._directory = Directory(config.block_bytes)
        self._listeners: Dict[int, ExternalConflictListener] = {}
        self._record = record_transactions
        self._block_mask = block_mask(config.block_bytes)
        self._num_nodes = self._topology.num_nodes
        #: when True, :meth:`load_hit_time`/:meth:`store_hit_time` resolve
        #: sufficient-state L1 hits without building an :class:`AccessOutcome`;
        #: when False they always decline, forcing every access down the
        #: reference path through :meth:`access`.
        self._fast = fast_path
        #: optional ``fn(core_id, block_addr, code)`` called whenever a
        #: coherence transaction changes an L1 block's state from outside
        #: the plain hit path (install / downgrade / invalidate / evict).
        #: Codes: 0 = invalid or absent, 1 = SHARED, 2 = MODIFIED/EXCLUSIVE.
        #: The batch engine keeps its packed residency tables fresh with
        #: this; when unset (the default) the hook costs one None check.
        self._state_watcher = None
        #: optional zero-argument callback fired at the start of every
        #: coherence transaction -- the only mutator of residency,
        #: directory sharer/owner, and eviction state (hit-path silent
        #: E->M transitions change no residency code).  The batch
        #: engine's epoch tracker bumps its generation counter with
        #: this, invalidating cached cross-core horizons; when unset
        #: (the default) the hook costs one None check per transaction.
        self._transaction_watcher = None
        #: observability slot; same single-``if`` discipline as the state
        #: watcher.  Only the transaction engine hooks it, never the
        #: allocation-free hit fast paths.
        self._obs = active(recorder)
        self.transactions: List[TransactionRecord] = []
        # simple per-core counters
        self.l1_hits = [0] * config.num_cores
        self.l1_misses = [0] * config.num_cores
        self.upgrades = [0] * config.num_cores
        self.clean_writebacks = [0] * config.num_cores
        self.conflicts_detected = 0

    # -- plumbing ----------------------------------------------------------

    @property
    def config(self) -> SystemConfig:
        return self._config

    @property
    def fast(self) -> bool:
        """True when the allocation-free hit fast path is enabled."""
        return self._fast

    @property
    def topology(self) -> TorusTopology:
        return self._topology

    @property
    def latency_model(self) -> LatencyModel:
        return self._latency

    @property
    def contention_cycles(self) -> int:
        """Cycles messages spent queued behind busy links (0 when uncontended)."""
        return self._latency.contention_cycles

    @property
    def l2(self) -> L2Cache:
        return self._l2

    @property
    def directory(self) -> Directory:
        return self._directory

    def l1(self, core_id: int) -> CacheArray:
        return self._l1s[core_id]

    def register_listener(self, core_id: int, listener: ExternalConflictListener) -> None:
        """Register the consistency controller responsible for ``core_id``."""
        self._listeners[core_id] = listener

    def set_state_watcher(self, watcher) -> None:
        """Install the L1 state-change hook (see ``_state_watcher``)."""
        self._state_watcher = watcher

    def set_transaction_watcher(self, watcher) -> None:
        """Install the transaction-start hook (see ``_transaction_watcher``)."""
        self._transaction_watcher = watcher

    def _block(self, addr: int) -> int:
        return addr & self._block_mask

    # -- public access API -------------------------------------------------

    def access(self, core_id: int, addr: int, is_write: bool, now: int,
               spec_checkpoint: Optional[int] = None) -> AccessOutcome:
        """Perform a load (``is_write=False``) or store access for a core.

        Returns the access outcome, including the completion time at which
        the data (for loads) or the write permission (for stores) is
        available to the requester.  When ``spec_checkpoint`` is given the
        access is speculative and the block's speculatively-read /
        speculatively-written bit is set, tagged with that checkpoint id.
        """
        baddr = self._block(addr)
        l1 = self._l1s[core_id]
        block = l1.lookup(baddr)

        if block is not None:
            if not is_write:
                self.l1_hits[core_id] += 1
                if spec_checkpoint is not None:
                    block.mark_spec_read(spec_checkpoint)
                return AccessOutcome(hit=True, state=block.state,
                                     completion_time=now + self._config.l1.hit_latency)
            if block.state.is_writable:
                self.l1_hits[core_id] += 1
                return self._write_hit(core_id, block, now, spec_checkpoint)
            # Present but Shared: upgrade miss.
            self.upgrades[core_id] += 1
            return self._transaction(core_id, baddr, TransactionKind.UPGRADE, now,
                                     spec_checkpoint)

        self.l1_misses[core_id] += 1
        kind = TransactionKind.GETM if is_write else TransactionKind.GETS
        return self._transaction(core_id, baddr, kind, now, spec_checkpoint)

    # -- allocation-free hit fast paths -------------------------------------
    #
    # The hot loops of every controller boil down to "does this access hit a
    # line already in a sufficient state, and when does it complete?".  These
    # two methods answer exactly that with a plain int -- no AccessOutcome,
    # no TransactionRecord -- and decline (return None) in every other case,
    # leaving the requester's L1/LRU state exactly as :meth:`access` would
    # have at the same point, so callers can fall back to the full path.

    def load_hit_time(self, core_id: int, addr: int, now: int,
                      spec_checkpoint: Optional[int] = None) -> Optional[int]:
        """Completion time of a load that hits, or ``None`` (take the slow path)."""
        if not self._fast:
            return None
        block = self._l1s[core_id].lookup(addr & self._block_mask)
        if block is None:
            return None
        self.l1_hits[core_id] += 1
        if spec_checkpoint is not None:
            block.mark_spec_read(spec_checkpoint)
        return now + self._config.l1.hit_latency

    def store_hit_time(self, core_id: int, addr: int, now: int,
                       spec_checkpoint: Optional[int] = None) -> Optional[int]:
        """Completion time of a store that hits writable, or ``None``."""
        if not self._fast:
            return None
        block = self._l1s[core_id].lookup(addr & self._block_mask)
        if block is None:
            return None
        state = block.state
        if state is not CoherenceState.MODIFIED and state is not CoherenceState.EXCLUSIVE:
            return None
        self.l1_hits[core_id] += 1
        return self._write_hit_time(core_id, block, now, spec_checkpoint)

    def is_write_hit(self, core_id: int, addr: int) -> bool:
        """Would a store to ``addr`` complete immediately in the L1?"""
        return self._l1s[core_id].is_writable(addr)

    def contains(self, core_id: int, addr: int) -> bool:
        return self._l1s[core_id].contains(addr)

    # -- write-hit path (including speculative dirty-block cleaning) -------

    def _write_hit_time(self, core_id: int, block, now: int,
                        spec_checkpoint: Optional[int]) -> int:
        """Apply a write hit's state changes; return its completion time."""
        if spec_checkpoint is None:
            block.state = CoherenceState.MODIFIED
            block.dirty = True
            return now + self._config.l1.hit_latency
        # Speculative store.  If the block is non-speculatively dirty, the
        # only copy of the pre-speculative data is in this L1, so a clean
        # writeback pushes it to the L2 before the speculative value may
        # overwrite it (Section 3.2).  The store waits in the store buffer
        # for the cleaning writeback to finish.
        completion = now + self._config.l1.hit_latency
        if block.dirty and block.spec_written is None:
            self.clean_writebacks[core_id] += 1
            self._l2.install_dirty(block.address)
            block.dirty = False
            completion = now + self._config.clean_writeback_latency
        block.mark_spec_written(spec_checkpoint)
        block.state = CoherenceState.MODIFIED
        return completion

    def _write_hit(self, core_id: int, block, now: int,
                   spec_checkpoint: Optional[int]) -> AccessOutcome:
        completion = self._write_hit_time(core_id, block, now, spec_checkpoint)
        return AccessOutcome(hit=True, state=block.state, completion_time=completion)

    # -- the coherence transaction engine ----------------------------------

    def _transaction(self, core_id: int, baddr: int, kind: TransactionKind,
                     now: int, spec_checkpoint: Optional[int]) -> AccessOutcome:
        if self._transaction_watcher is not None:
            self._transaction_watcher()
        config = self._config
        home = (baddr // config.block_bytes) % self._num_nodes
        entry = self._directory.entry(baddr)
        is_write = kind in (TransactionKind.GETM, TransactionKind.UPGRADE)

        # The request travels to the home node (queuing behind other
        # messages under the contended interconnect) and is serialised
        # behind any in-flight transaction for the same block.
        arrive_home = self._latency.traverse(core_id, home, now)
        start = max(arrive_home, entry.busy_until)

        # Clean up stale directory information about the requester itself
        # (e.g. after an abort invalidated the L1 copy without notifying the
        # directory, or after a silent eviction).
        stale_owner = entry.owner == core_id and not self._l1s[core_id].contains(baddr)
        if stale_owner:
            entry.owner = None
        entry.sharers.discard(core_id)

        if self._obs is not None:
            self._obs.count("coherence.transactions")
            self._obs.sim_instant(
                COHERENCE_TID_BASE + core_id, f"dir.{kind.name.lower()}",
                start, {"block": hex(baddr), "home": home})

        # Record objects are for analysis only; skip building them (two list
        # allocations each) unless transaction recording is on.
        record = None
        if self._record:
            record = TransactionRecord(kind=kind, requester=core_id,
                                       block_address=baddr, issue_time=now,
                                       start_time=start, completion_time=start)

        completion = start
        if entry.owner is not None:
            completion, l2_hit = self._handle_owner(core_id, baddr, entry, home, start,
                                                    is_write, record)
        else:
            l2_hit = self._l2.probe(baddr)
            completion = self._latency.traverse(
                home, core_id, start + self._latency.directory_access(l2_hit))
            if not l2_hit:
                self._l2.install(baddr)
        if record is not None:
            record.l2_hit = l2_hit

        if is_write and entry.sharers:
            completion = max(completion,
                             self._handle_invalidations(core_id, baddr, entry, home,
                                                        start, record))

        # Directory occupancy for the next transaction to this block.
        entry.busy_until = start + config.directory_latency

        # Update directory state.  Exclusive fills are tracked as ownership so
        # that a later silent E->M write hit cannot leave stale sharers.
        if is_write:
            entry.sharers.clear()
            entry.owner = core_id
            new_state = CoherenceState.MODIFIED
        elif entry.owner is None and not entry.sharers:
            entry.owner = core_id
            new_state = CoherenceState.EXCLUSIVE
        else:
            entry.sharers.add(core_id)
            new_state = CoherenceState.SHARED

        # Fill the requester's L1.
        forced_delay = self._prepare_l1_fill(core_id, baddr, now)
        completion += forced_delay
        block = self._l1s[core_id].install(baddr, new_state, dirty=is_write)
        if self._state_watcher is not None:
            self._state_watcher(
                core_id, baddr,
                1 if new_state is CoherenceState.SHARED else 2)
        if spec_checkpoint is not None:
            if is_write:
                block.mark_spec_written(spec_checkpoint)
            else:
                block.mark_spec_read(spec_checkpoint)

        if is_write and config.store_prefetch_lead:
            # Store prefetching: by retirement the write miss has already
            # been outstanding for a while, so the retirement stage observes
            # a shorter remaining latency.
            earliest = now + config.l1.hit_latency + forced_delay
            completion = max(earliest, completion - config.store_prefetch_lead)

        if record is not None:
            record.completion_time = completion
            self.transactions.append(record)
        entry.check()
        return AccessOutcome(hit=False, state=new_state, completion_time=completion,
                             forced_commit_delay=forced_delay, record=record)

    def _handle_owner(self, core_id: int, baddr: int, entry, home: int, start: int,
                      is_write: bool, record: TransactionRecord):
        """Forward the request to the current owner (three-hop transaction)."""
        owner = entry.owner
        assert owner is not None and owner != core_id
        if record is not None:
            record.forwarded_from_owner = owner
        # The probe leg home -> owner is one physical message; its arrival
        # anchors both conflict detection and the forwarded data response.
        probe_arrival = self._latency.traverse(home, owner, start)
        completion = self._latency.traverse(
            owner, core_id,
            probe_arrival + self._config.directory_latency
            + self._config.l1.hit_latency)

        owner_l1 = self._l1s[owner]
        owner_block = owner_l1.lookup(baddr, touch=False)
        conflict_delay = 0
        if owner_block is not None:
            conflicts = (owner_block.conflicts_with_external_write() if is_write
                         else owner_block.conflicts_with_external_read())
            if conflicts:
                conflict_delay = self._resolve_conflict(owner, baddr, is_write,
                                                        probe_arrival)
                if record is not None:
                    record.conflicts.append(owner)
                    record.deferred_cycles = max(record.deferred_cycles,
                                                 conflict_delay)
            if is_write:
                owner_block.invalidate()
            else:
                owner_block.state = CoherenceState.SHARED
                owner_block.dirty = False
            if self._state_watcher is not None:
                self._state_watcher(owner, baddr, 0 if is_write else 1)
        # The owner's (pre-speculative) data is written back to the L2.
        self._l2.install_dirty(baddr)
        l2_hit = True
        if is_write:
            entry.owner = None
        else:
            previous_owner = owner
            entry.owner = None
            entry.sharers.add(previous_owner)
            entry.sharers.add(core_id)
        return completion + conflict_delay, l2_hit

    def _handle_invalidations(self, core_id: int, baddr: int, entry, home: int,
                              start: int, record: TransactionRecord) -> int:
        """Invalidate all sharers of a block being written; return ack time."""
        worst = start
        fanout = 0
        for sharer in sorted(entry.sharers):
            if sharer == core_id:
                continue
            fanout += 1
            if record is not None:
                record.invalidated_sharers.append(sharer)
            arrival = self._latency.traverse(home, sharer, start)
            ack = self._latency.traverse(sharer, core_id, arrival)
            sharer_l1 = self._l1s[sharer]
            sharer_block = sharer_l1.lookup(baddr, touch=False)
            if sharer_block is not None:
                if sharer_block.conflicts_with_external_write():
                    delay = self._resolve_conflict(sharer, baddr, True, arrival)
                    ack += delay
                    if record is not None:
                        record.conflicts.append(sharer)
                        record.deferred_cycles = max(record.deferred_cycles, delay)
                sharer_block.invalidate()
                if self._state_watcher is not None:
                    self._state_watcher(sharer, baddr, 0)
            worst = max(worst, ack)
        if self._obs is not None and fanout:
            self._obs.count("coherence.invalidations", fanout)
            self._obs.observe("coherence.inval_fanout", fanout)
        return worst

    def _resolve_conflict(self, victim: int, baddr: int, is_write: bool,
                          arrival: int) -> int:
        """Ask the victim's controller how to resolve a speculative conflict."""
        self.conflicts_detected += 1
        listener = self._listeners.get(victim)
        if listener is None:
            return 0
        resolution = listener.on_external_conflict(baddr, is_write, arrival)
        return max(0, resolution.extra_delay)

    def _prepare_l1_fill(self, core_id: int, baddr: int, now: int) -> int:
        """Make room in the requester's L1; returns forced-commit delay."""
        l1 = self._l1s[core_id]
        result = l1.prepare_fill(baddr)
        forced_delay = 0
        if result.requires_forced_commit:
            listener = self._listeners.get(core_id)
            if listener is None:
                raise SimulationError(
                    "a fill requires evicting speculative state but no "
                    f"controller is registered for core {core_id}"
                )
            commit_done = listener.forced_commit(now)
            forced_delay = max(0, commit_done - now)
            result = l1.prepare_fill(baddr)
            if result.requires_forced_commit:
                raise SimulationError(
                    "forced commit did not release any way in the target set"
                )
        victim = result.victim
        if victim is not None:
            self._evict(core_id, victim, needs_writeback=result.needs_writeback)
        return forced_delay

    def _evict(self, core_id: int, victim, needs_writeback: bool) -> None:
        """Update directory/L2 state when an L1 block is evicted."""
        if self._state_watcher is not None:
            self._state_watcher(core_id, victim.address, 0)
        entry = self._directory.peek(victim.address)
        if entry is not None:
            entry.sharers.discard(core_id)
            if entry.owner == core_id:
                entry.owner = None
        if needs_writeback:
            self._l2.install_dirty(victim.address)
        elif victim.state.is_valid:
            # Clean eviction: the L2 may or may not already hold the block;
            # installing it keeps the inclusive-ish latency model simple.
            self._l2.install(victim.address)

    # -- debugging helpers --------------------------------------------------

    def check_invariants(self) -> None:
        """Cross-check directory state against L1 contents (tests only)."""
        self._directory.check_invariants()
        for entry in self._directory:
            if entry.owner is not None:
                block = self._l1s[entry.owner].lookup(entry.address, touch=False)
                if block is not None and not block.state.is_writable:
                    raise SimulationError(
                        f"directory says core {entry.owner} owns {entry.address:#x} "
                        f"but its L1 holds it in state {block.state}"
                    )

"""Command-line interface.

Three subcommands cover the common entry points without writing any code::

    python -m repro simulate --workload apache --config invisi_sc --cores 8
    python -m repro figure 8 --cores 8 --ops 4000
    python -m repro tables

``simulate`` runs one workload under one named machine configuration and
prints the runtime breakdown; ``figure`` regenerates one of the paper's
evaluation figures (1, 8, 9, 10, 11, 12) at the requested scale; ``tables``
prints the descriptive tables (Figures 2, 4, 5, 6, 7).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    CONFIG_NAMES,
    ExperimentRunner,
    ExperimentSettings,
    figure2_table,
    figure4_table,
    figure5_table,
    figure6_table,
    figure7_table,
    make_config,
    run_figure1,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
)
from .engine.simulator import simulate
from .stats.report import format_table
from .workloads.presets import workload_names
from .workloads.registry import build_trace

_FIGURES = {
    "1": run_figure1,
    "8": run_figure8,
    "9": run_figure9,
    "10": run_figure10,
    "11": run_figure11,
    "12": run_figure12,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="InvisiFence (ISCA 2009) reproduction: simulate workloads "
                    "and regenerate the paper's figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one workload under one configuration")
    sim.add_argument("--workload", choices=workload_names(), default="apache")
    sim.add_argument("--config", choices=list(CONFIG_NAMES), default="invisi_sc")
    sim.add_argument("--baseline", choices=list(CONFIG_NAMES), default="sc",
                     help="configuration to report a speedup against")
    sim.add_argument("--cores", type=int, default=8)
    sim.add_argument("--ops", type=int, default=4000, help="operations per thread")
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--warmup", type=float, default=0.2)

    fig = sub.add_parser("figure", help="regenerate one of the paper's figures")
    fig.add_argument("number", choices=sorted(_FIGURES), help="figure number")
    fig.add_argument("--cores", type=int, default=8)
    fig.add_argument("--ops", type=int, default=4000)
    fig.add_argument("--seeds", type=str, default="1",
                     help="comma-separated generator seeds")
    fig.add_argument("--workloads", type=str, default=",".join(workload_names()),
                     help="comma-separated workload names")

    sub.add_parser("tables", help="print the descriptive tables (Figures 2, 4-7)")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    settings = ExperimentSettings(num_cores=args.cores, ops_per_thread=args.ops,
                                  seeds=(args.seed,),
                                  warmup_fraction=args.warmup)
    trace = build_trace(args.workload, num_threads=args.cores,
                        ops_per_thread=args.ops, seed=args.seed)
    result = simulate(make_config(args.config, settings), trace,
                      warmup_fraction=args.warmup)
    baseline = simulate(make_config(args.baseline, settings), trace,
                        warmup_fraction=args.warmup)
    breakdown = result.breakdown(normalize=True)
    stats = result.aggregate()
    rows = [
        ["workload", args.workload],
        ["configuration", args.config],
        ["cycles per core", f"{result.cycles_per_core():.0f}"],
        [f"speedup vs {args.baseline}", f"{result.speedup_over(baseline):.2f}x"],
        ["busy", f"{100 * breakdown['busy']:.1f}%"],
        ["other (plain misses)", f"{100 * breakdown['other']:.1f}%"],
        ["SB full", f"{100 * breakdown['sb_full']:.1f}%"],
        ["SB drain", f"{100 * breakdown['sb_drain']:.1f}%"],
        ["violation", f"{100 * breakdown['violation']:.1f}%"],
        ["speculation episodes", str(stats.speculations)],
        ["commits / aborts", f"{stats.commits} / {stats.aborts}"],
        ["time speculating", f"{100 * result.speculation_fraction():.1f}%"],
    ]
    print(format_table(["metric", "value"], rows,
                       title="InvisiFence reproduction: simulation summary"))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    workloads = tuple(w for w in args.workloads.split(",") if w)
    settings = ExperimentSettings(num_cores=args.cores, ops_per_thread=args.ops,
                                  seeds=seeds, workloads=workloads)
    runner = ExperimentRunner(settings)
    result = _FIGURES[args.number](settings, runner)
    print(result.format())
    return 0


def _cmd_tables(_: argparse.Namespace) -> int:
    for text in (figure2_table(), figure4_table(), figure5_table(),
                 figure6_table(), figure7_table()):
        print(text)
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "tables":
        return _cmd_tables(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface.

Ten subcommands cover the common entry points without writing any code::

    python -m repro simulate --workload apache --config invisi_sc --cores 8
    python -m repro figure 8 --cores 8 --ops 4000 --jobs 4
    python -m repro study run figure8 scaling --jobs 4
    python -m repro worker figure8 --cache sqlite://results/queue.sqlite
    python -m repro sweep --configs sc,invisi_sc --workloads apache --jobs 4
    python -m repro workloads list
    python -m repro scenario run false-sharing-storm --jobs 4
    python -m repro profile invisi_sc false-sharing-storm --trace-out trace.json
    python -m repro bench --output BENCH_kernel.json
    python -m repro tables

Global ``-q/--quiet`` suppresses progress lines (``[campaign]``,
``[artifacts]``, ...) leaving only primary results; ``-v/--verbose``
adds diagnostic detail.

``simulate`` runs one workload (or scenario) under one named machine
configuration and prints the runtime breakdown; ``figure`` regenerates one
of the paper's evaluation figures (1, 8, 9, 10, 11, 12), the ``scenarios``
per-phase figure, or the ``scaling`` machine-scaling study (a
core-count sweep from 4 to 64 cores -- ``--core-counts`` overrides,
``--small`` is the CI smoke preset) at the requested scale; ``tables``
prints the descriptive tables (Figures 2, 4, 5, 6, 7).

``study list`` prints the registered declarative studies (see
``EXPERIMENTS.md``); ``study run <name>... [--all]`` compiles the named
studies (or every study) into **one** deduplicated campaign plan, executes
it through the shared executor/cache, prints each study's text table, and
writes per-study JSON + CSV artifacts under ``results/`` (``--out-dir``
overrides).  ``--quick`` is the CI smoke preset (2 cores, 400 ops,
apache+barnes).

``workloads list`` and ``scenario list`` print the registered workload
presets and phase-structured scenarios.  ``scenario run <name>`` executes
one scenario under one or more configurations through the campaign
executor and prints each configuration's per-phase stall breakdown; a
scenario name is likewise accepted anywhere ``sweep``/``simulate`` accept
a workload preset.

``sweep`` runs an arbitrary (configuration x workload x seed) campaign:
``--configs``/``--workloads``/``--seeds`` pick the cross-product (default:
every registered configuration and workload), ``--jobs N`` simulates
missing cells on a pool of N worker processes, and completed cells are
persisted in a content-addressed result cache so a repeated sweep -- or a
later ``figure`` run over the same cells -- simulates nothing.

Every campaign-driving subcommand (``simulate``, ``figure``, ``sweep``,
``study run``, ``scenario run``, ``worker``) accepts one identical flag
set, declared once in :func:`_campaign_parent`:
``--jobs``/``--no-cache``/``--cache URL``/``--engine``/``--telemetry``.
``--cache`` takes a backend URL -- ``dir://PATH`` (default,
``results/cache/``), ``sqlite://FILE`` (safe for concurrent writers),
either with ``?shards=N`` for a sharded composite -- or a bare directory
path; ``--cache-dir PATH`` survives as a deprecated alias.  ``--no-cache``
disables caching, ``--quick`` is a small smoke-test preset for CI.

``worker`` is the distributed tier: each ``repro worker <studies...>
--cache URL`` process independently compiles the same deduplicated study
plan and drains whatever cells are still missing from the shared backend,
claiming cells via expiring lease records so no two live workers simulate
the same cell and a crashed worker's claims are re-issued.  Launch N
workers against one ``sqlite://`` URL (from different machines, a shared
filesystem suffices), then run ``study run`` with the same URL: it
simulates nothing and formats every table from the drained cache.

``profile`` runs one (configuration, workload-or-scenario) cell with the
telemetry recorder attached and prints the text profile (speculation
episodes, batch-engine introspection, coherence traffic); ``--trace-out``
additionally writes a Chrome trace-event JSON loadable in Perfetto
(https://ui.perfetto.dev), ``--telemetry-out`` a schema-versioned metrics
artifact.  ``study run``/``figure``/``scenario run``/``sweep`` accept
``--telemetry`` to record campaign-level telemetry (per-job wall spans,
cache tallies) and write ``telemetry.json``.

``bench`` times the execution kernel (ops/sec per controller kind), the
campaign executor cold vs. cached, and scenario splicing, and writes
``BENCH_kernel.json`` (see :mod:`repro.bench.harness` for the schema).
``--engine reference`` times the retained pre-refactor execution path, so
fast-vs-reference comparisons need no git archaeology; ``--check FILE``
compares against a committed baseline and exits non-zero when any kernel
regresses more than ``--tolerance`` (CI's perf gate).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from pathlib import Path
from typing import List, Optional

from .bench import (
    BenchPreset,
    check_against_baseline,
    format_baseline_delta,
    format_bench_report,
    load_report,
    run_bench,
    write_report,
)
from .api import compile_study_plan, open_cache
from .api import simulate as api_simulate
from .campaign import (
    CampaignExecutor,
    DEFAULT_CACHE_URL,
    DEFAULT_REGISTRY,
    Job,
    QueueWorker,
    ResultCache,
    expand_jobs,
)
from .experiments import (
    ExperimentRunner,
    ExperimentSettings,
    figure2_table,
    figure4_table,
    figure5_table,
    figure6_table,
    figure7_table,
    make_config,
    run_figure1,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_scaling,
    run_scenarios,
    SCALING_CONFIGS,
    SCALING_CORE_COUNTS,
    SCALING_SCENARIOS,
)
from .experiments.figure1 import FIGURE1_CONFIGS
from .experiments.figure8 import FIGURE8_CONFIGS
from .experiments.figure10 import FIGURE10_CONFIGS
from .experiments.figure11 import FIGURE11_CONFIGS
from .experiments.figure12 import FIGURE12_CONFIGS
from .experiments.scenarios import SCENARIO_CONFIGS
from .engine.simulator import simulate
from .engine.system import ENGINE_KINDS
from .errors import ReproError
from .obs import (
    TraceRecorder,
    format_profile,
    write_chrome_trace,
    write_telemetry,
)
from .scenarios.registry import DEFAULT_SCENARIO_REGISTRY, scenario_names, scenario_spec
from .stats.phases import format_phase_breakdown
from .studies import DEFAULT_STUDY_REGISTRY, run_study, write_artifacts
from .stats.report import format_table
from .workloads.presets import WORKLOAD_PRESETS, workload_names
from .workloads.registry import build_trace

_FIGURES = {
    "1": run_figure1,
    "8": run_figure8,
    "9": run_figure9,
    "10": run_figure10,
    "11": run_figure11,
    "12": run_figure12,
    "scenarios": run_scenarios,
    # handled by _cmd_figure_scaling (it sweeps core counts, so it does not
    # fit the one-machine (settings, runner) driver signature).
    "scaling": run_scaling,
}

#: Configurations each figure needs (figure 9 reuses figure 8's set; every
#: baseline a figure normalizes against is already in its set).
_FIGURE_CONFIGS = {
    "1": FIGURE1_CONFIGS,
    "8": FIGURE8_CONFIGS,
    "9": FIGURE8_CONFIGS,
    "10": FIGURE10_CONFIGS,
    "11": FIGURE11_CONFIGS,
    "12": FIGURE12_CONFIGS,
    "scenarios": SCENARIO_CONFIGS,
    "scaling": SCALING_CONFIGS,
}

#: Console verbosity: -1 with ``--quiet``, 0 by default, 1 with ``--verbose``.
_VERBOSITY = 0


def _set_verbosity(level: int) -> None:
    global _VERBOSITY
    _VERBOSITY = level


def _out(*parts: object) -> None:
    """Primary results (tables, figures): printed even under ``--quiet``."""
    print(*parts)


def _info(*parts: object) -> None:
    """Progress lines (``[campaign]``, ...): suppressed by ``--quiet``."""
    if _VERBOSITY >= 0:
        print(*parts)


def _debug(*parts: object) -> None:
    """Diagnostic detail: printed only with ``--verbose``."""
    if _VERBOSITY >= 1:
        print(*parts)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="InvisiFence (ISCA 2009) reproduction: simulate workloads "
                    "and regenerate the paper's figures.")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress progress lines; print only results")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print diagnostic detail")
    sub = parser.add_subparsers(dest="command", required=True)
    campaign = _campaign_parent()

    sim = sub.add_parser("simulate", parents=[campaign],
                         help="run one workload or scenario under one configuration")
    sim.add_argument("--workload",
                     choices=workload_names() + list(scenario_names()),
                     default="apache")
    sim.add_argument("--config", choices=list(DEFAULT_REGISTRY.names()),
                     default="invisi_sc")
    sim.add_argument("--baseline", choices=list(DEFAULT_REGISTRY.names()),
                     default="sc",
                     help="configuration to report a speedup against")
    sim.add_argument("--cores", type=int, default=8)
    sim.add_argument("--ops", type=int, default=4000, help="operations per thread")
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--warmup", type=float, default=0.2)

    fig = sub.add_parser("figure", parents=[campaign],
                         help="regenerate one of the paper's figures")
    fig.add_argument("number", choices=sorted(_FIGURES), help="figure number")
    fig.add_argument("--cores", type=int, default=None,
                     help="cores per simulated machine (default: 8; the "
                          "scaling figure uses --core-counts instead)")
    fig.add_argument("--ops", type=int, default=None,
                     help="operations per thread (default: 4000)")
    fig.add_argument("--seeds", type=_seeds_csv, default=(1,),
                     help="comma-separated generator seeds")
    fig.add_argument("--workloads", type=str, default=None,
                     help="comma-separated workload names (default: all "
                          "presets; for the scenarios figure, all scenarios; "
                          "for the scaling figure, its default scenarios)")
    fig.add_argument("--core-counts", type=_seeds_csv, default=None,
                     help="scaling figure only: comma-separated machine "
                          "sizes to sweep (default: 4,8,16,32,64)")
    fig.add_argument("--small", action="store_true",
                     help="scaling figure only: CI smoke preset, 2 and 4 "
                          "cores at 400 ops (explicit flags override)")

    sweep = sub.add_parser(
        "sweep", parents=[campaign],
        help="run a (config x workload x seed) campaign, in parallel")
    sweep.add_argument("--configs", type=str, default=None,
                       help="comma-separated configuration names "
                            "(default: all registered configurations)")
    sweep.add_argument("--workloads", type=str, default=None,
                       help="comma-separated workload or scenario names "
                            "(default: all workload presets)")
    sweep.add_argument("--seeds", type=_seeds_csv, default=(1,),
                       help="comma-separated generator seeds")
    sweep.add_argument("--cores", type=int, default=None,
                       help="cores per simulated machine (default: 8)")
    sweep.add_argument("--ops", type=int, default=None,
                       help="operations per thread (default: 4000)")
    sweep.add_argument("--warmup", type=float, default=0.2)
    sweep.add_argument("--quick", action="store_true",
                       help="smoke-test preset: 2 cores, 400 ops, "
                            "sc+invisi_sc on apache (explicit flags override)")

    study = sub.add_parser(
        "study", help="list and run declarative studies "
                      "(one grid -> metrics -> artifacts pipeline)")
    study_sub = study.add_subparsers(dest="study_command", required=True)
    study_sub.add_parser("list", help="print registered studies and their grids")
    st_run = study_sub.add_parser(
        "run", parents=[campaign],
        help="run studies through one deduplicated campaign plan and "
             "write JSON + CSV artifacts")
    _add_study_selection_flags(st_run)
    st_run.add_argument("--out-dir", type=str, default="results",
                        help="artifact directory (default: results)")

    worker = sub.add_parser(
        "worker", parents=[campaign],
        help="drain one deduplicated study plan through a shared cache "
             "backend, cooperating with other workers via lease records")
    _add_study_selection_flags(worker)
    worker.add_argument("--worker-id", type=str, default=None,
                        help="lease-record identity (default: host-pid)")
    worker.add_argument("--lease-ttl", type=float, default=60.0,
                        help="seconds before a claimed cell is re-issued to "
                             "peers (default: 60)")
    worker.add_argument("--poll-interval", type=float, default=0.05,
                        help="seconds between polls of peers' live leases "
                             "(default: 0.05)")
    worker.add_argument("--max-wait", type=float, default=600.0,
                        help="seconds without progress before giving up "
                             "(default: 600)")

    wl = sub.add_parser("workloads", help="inspect the workload preset catalogue")
    wl_sub = wl.add_subparsers(dest="workloads_command", required=True)
    wl_sub.add_parser("list", help="print preset names and descriptions")

    scenario = sub.add_parser("scenario",
                              help="inspect and run phase-structured scenarios")
    sc_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    sc_sub.add_parser("list", help="print scenario names, phases, descriptions")
    sc_run = sc_sub.add_parser(
        "run", parents=[campaign],
        help="run one scenario through the campaign executor and "
             "print per-phase stall breakdowns")
    sc_run.add_argument("name", help="scenario name (see 'scenario list')")
    sc_run.add_argument("--configs", type=str, default="sc,invisi_sc",
                        help="comma-separated configuration names")
    sc_run.add_argument("--cores", type=int, default=None,
                        help="cores per simulated machine (default: 8)")
    sc_run.add_argument("--ops", type=int, default=None,
                        help="total operations per thread (default: 4000)")
    sc_run.add_argument("--seed", type=int, default=1)
    sc_run.add_argument("--warmup", type=float, default=0.2)
    sc_run.add_argument("--small", action="store_true",
                        help="smoke-test preset: 2 cores, 600 ops "
                             "(explicit flags override)")

    prof = sub.add_parser(
        "profile", help="run one cell with the telemetry recorder attached "
                        "and print/export its event profile")
    prof.add_argument("config", choices=list(DEFAULT_REGISTRY.names()),
                      help="configuration short-name")
    prof.add_argument("workload",
                      choices=workload_names() + list(scenario_names()),
                      help="workload preset or scenario name")
    prof.add_argument("--cores", type=_positive_int, default=None,
                      help="cores per simulated machine (default: 8)")
    prof.add_argument("--ops", type=_positive_int, default=None,
                      help="operations per thread (default: 4000)")
    prof.add_argument("--seed", type=int, default=1)
    prof.add_argument("--warmup", type=float, default=0.2)
    prof.add_argument("--engine", choices=list(ENGINE_KINDS), default="fast",
                      help="execution kernel to trace (default: fast)")
    prof.add_argument("--small", action="store_true",
                      help="CI smoke preset: 2 cores, 600 ops "
                           "(explicit flags override)")
    prof.add_argument("--trace-out", type=str, default=None, metavar="FILE",
                      help="write a Chrome trace-event JSON (open in "
                           "https://ui.perfetto.dev)")
    prof.add_argument("--telemetry-out", type=str, default=None, metavar="FILE",
                      help="write the schema-versioned telemetry JSON artifact")

    bench = sub.add_parser(
        "bench", help="time the simulation kernel and write BENCH_kernel.json")
    bench.add_argument("--workload", choices=workload_names(), default="apache")
    bench.add_argument("--cores", type=_positive_int, default=None,
                       help="cores per simulated machine (default: 4)")
    bench.add_argument("--ops", type=_positive_int, default=None,
                       help="operations per thread (default: 2000)")
    bench.add_argument("--seed", type=int, default=3)
    bench.add_argument("--repeats", type=_positive_int, default=None,
                       help="wall-clock repeats per measurement "
                            "(best-of; default: 3)")
    bench.add_argument("--engine", choices=list(ENGINE_KINDS), default="fast",
                       help="execution kernel to time (default: fast)")
    bench.add_argument("--small", action="store_true",
                       help="CI smoke preset: 2 cores, 400 ops, 2 repeats "
                            "(explicit flags override)")
    bench.add_argument("--output", type=str, default="BENCH_kernel.json",
                       help="report path (default: BENCH_kernel.json)")
    bench.add_argument("--check", type=str, default=None, metavar="BASELINE",
                       help="compare kernel ops/sec against a baseline "
                            "report; exit 1 on regression")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="allowed fractional slowdown vs the baseline "
                            "(default: 0.30)")

    sub.add_parser("tables", help="print the descriptive tables (Figures 2, 4-7)")
    return parser


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _seeds_csv(text: str) -> tuple:
    try:
        return tuple(int(s) for s in text.split(",") if s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seeds must be comma-separated integers, got {text!r}")


def _campaign_parent() -> argparse.ArgumentParser:
    """The shared campaign flag set, as an argparse parent parser.

    Every campaign-driving subcommand (``simulate``, ``figure``,
    ``sweep``, ``study run``, ``scenario run``, ``worker``) inherits the
    identical flags from this one definition, so they cannot drift.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("campaign options")
    group.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker processes for missing cells (default: 1, serial)")
    group.add_argument("--no-cache", action="store_true",
                       help="do not read or write the on-disk result cache")
    group.add_argument("--cache", type=str, default=None, metavar="URL",
                       help="result cache URL: dir://PATH, sqlite://FILE, "
                            "either with ?shards=N, or a bare directory "
                            f"path (default: {DEFAULT_CACHE_URL})")
    group.add_argument("--cache-dir", type=str, default=None, metavar="PATH",
                       help="deprecated alias for --cache with a directory path")
    group.add_argument("--engine", choices=list(ENGINE_KINDS), default="fast",
                       help="execution kernel for missing cells; all engines "
                            "produce byte-identical results and share cache "
                            "entries (default: fast)")
    group.add_argument("--telemetry", action="store_true",
                       help="record campaign telemetry (per-job wall spans, "
                            "cache tallies) and write telemetry.json")
    return parent


def _open_cli_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    """Resolve the shared cache flags into a :class:`ResultCache` (or None)."""
    if args.no_cache:
        return None
    url = args.cache
    if args.cache_dir is not None:
        if url is not None:
            raise ReproError(
                "--cache and --cache-dir are aliases; pass only one")
        _info("[cache] --cache-dir is deprecated; use --cache dir://PATH")
        url = args.cache_dir
    return open_cache(url)


def _split(csv: str) -> tuple:
    return tuple(item for item in csv.split(",") if item)


def _add_study_selection_flags(parser: argparse.ArgumentParser) -> None:
    """Flags picking which studies to run, at what scale.

    Shared verbatim between ``study run`` and ``worker`` so both compile
    the *identical* deduplicated plan -- and therefore the identical
    content-addressed cache keys -- from the same command line.
    """
    parser.add_argument("names", nargs="*",
                        help="study names (see 'study list')")
    parser.add_argument("--all", action="store_true",
                        help="run every registered study")
    parser.add_argument("--cores", type=int, default=None,
                        help="cores per simulated machine (default: 8; "
                             "studies with a core-count axis sweep their own)")
    parser.add_argument("--ops", type=int, default=None,
                        help="operations per thread (default: 4000)")
    parser.add_argument("--seeds", type=_seeds_csv, default=(1,),
                        help="comma-separated generator seeds")
    parser.add_argument("--workloads", type=str, default=None,
                        help="comma-separated workload names for studies "
                             "without a fixed workload axis (default: all "
                             "presets)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test preset: 2 cores, 400 ops, "
                             "apache+barnes (explicit flags override)")


def _study_selection(args: argparse.Namespace):
    """Resolve study-selection flags into (specs, settings)."""
    if args.all:
        specs = DEFAULT_STUDY_REGISTRY.specs()
    else:
        if not args.names:
            raise ReproError("name at least one study or pass --all "
                             "(see 'repro study list')")
        names = dict.fromkeys(args.names)  # dedupe, preserving order
        specs = tuple(DEFAULT_STUDY_REGISTRY.get(name) for name in names)
    cores = args.cores if args.cores is not None else (2 if args.quick else 8)
    ops = args.ops if args.ops is not None else (400 if args.quick else 4000)
    if args.workloads:
        workloads = _split(args.workloads)
    else:
        workloads = (("apache", "barnes") if args.quick
                     else tuple(workload_names()))
    settings = ExperimentSettings(num_cores=cores, ops_per_thread=ops,
                                  seeds=args.seeds, workloads=workloads)
    return specs, settings


def _campaign_recorder(args: argparse.Namespace,
                       command: str) -> Optional[TraceRecorder]:
    """A :class:`TraceRecorder` when ``--telemetry`` was passed, else None."""
    if not getattr(args, "telemetry", False):
        return None
    rec = TraceRecorder()
    rec.meta.update({"command": command, "engine": args.engine,
                     "jobs": args.jobs})
    return rec


def _write_campaign_telemetry(rec: Optional[TraceRecorder],
                              out_dir: Optional[str] = None) -> None:
    """Write ``telemetry.json`` for a campaign command's recorder."""
    if rec is None:
        return
    path = write_telemetry(rec, Path(out_dir or ".") / "telemetry.json")
    _info(f"[telemetry] wrote {path}")


def _print_catalog(title: str, headers: List[str], rows: List[List[str]]) -> None:
    """Shared catalogue formatter for ``workloads list``/``scenario list``."""
    _out(format_table(headers, rows, title=title))


def _cmd_simulate(args: argparse.Namespace) -> int:
    cache = _open_cli_cache(args) if (args.cache or args.cache_dir) else None
    rec = _campaign_recorder(args, "simulate")
    result = api_simulate(args.config, args.workload, engine=args.engine,
                          warmup_fraction=args.warmup, recorder=rec,
                          cores=args.cores, ops=args.ops, seed=args.seed,
                          cache=cache)
    baseline = api_simulate(args.baseline, args.workload, engine=args.engine,
                            warmup_fraction=args.warmup,
                            cores=args.cores, ops=args.ops, seed=args.seed,
                            cache=cache)
    breakdown = result.breakdown(normalize=True)
    stats = result.aggregate()
    rows = [
        ["workload", args.workload],
        ["configuration", args.config],
        ["cycles per core", f"{result.cycles_per_core():.0f}"],
        [f"speedup vs {args.baseline}", f"{result.speedup_over(baseline):.2f}x"],
        ["busy", f"{100 * breakdown['busy']:.1f}%"],
        ["other (plain misses)", f"{100 * breakdown['other']:.1f}%"],
        ["SB full", f"{100 * breakdown['sb_full']:.1f}%"],
        ["SB drain", f"{100 * breakdown['sb_drain']:.1f}%"],
        ["violation", f"{100 * breakdown['violation']:.1f}%"],
        ["speculation episodes", str(stats.speculations)],
        ["commits / aborts", f"{stats.commits} / {stats.aborts}"],
        ["time speculating", f"{100 * result.speculation_fraction():.1f}%"],
    ]
    _out(format_table(["metric", "value"], rows,
                      title="InvisiFence reproduction: simulation summary"))
    if result.phase_stats:
        _out("")
        _out(format_phase_breakdown(result))
    _write_campaign_telemetry(rec)
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    if args.study_command == "list":
        settings = ExperimentSettings()
        rows = [[spec.name, spec.describe_grid(settings), spec.title]
                for spec in DEFAULT_STUDY_REGISTRY.specs()]
        _print_catalog("Studies (declarative grid -> metrics -> artifacts)",
                       ["name", "grid @ default scale", "description"], rows)
        return 0
    return _cmd_study_run(args)


def _cmd_study_run(args: argparse.Namespace) -> int:
    specs, settings = _study_selection(args)
    cache = _open_cli_cache(args)

    # One deduplicated plan covers every requested study; shared cells
    # (e.g. the sc baseline) are simulated exactly once.
    plan = compile_study_plan(specs, settings)
    rec = _campaign_recorder(args, "study run")
    if rec is not None:
        rec.meta["studies"] = ",".join(spec.name for spec in specs)
    study_runner = plan.runner(jobs=args.jobs, cache=cache,
                               engine=args.engine, recorder=rec)
    start = time.perf_counter()
    report = plan.execute(study_runner)
    elapsed = time.perf_counter() - start
    _info(f"[plan] {plan.describe()}")
    _debug(f"[plan] settings: {settings}")
    for spec in specs:
        result = run_study(spec, settings, study_runner=study_runner)
        _out("")
        _out(result.format())
        json_path, csv_path = write_artifacts(spec, settings,
                                              spec.tabulate(result),
                                              args.out_dir)
        _info(f"[artifacts] wrote {json_path} and {csv_path}")
    _info("")
    _info(f"[campaign] {report.describe(cache)} in {elapsed:.1f}s, "
          f"--jobs {args.jobs}")
    _write_campaign_telemetry(rec, args.out_dir)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    specs, settings = _study_selection(args)
    cache = _open_cli_cache(args)
    if cache is None:
        raise ReproError("worker coordinates through the shared cache; "
                         "pass --cache URL (e.g. sqlite://results/queue.sqlite) "
                         "instead of --no-cache")
    plan = compile_study_plan(specs, settings)
    rec = _campaign_recorder(args, "worker")
    if rec is not None:
        rec.meta["studies"] = ",".join(spec.name for spec in specs)
    worker = QueueWorker(plan, cache, worker_id=args.worker_id,
                         engine=args.engine, lease_ttl=args.lease_ttl,
                         poll_interval=args.poll_interval,
                         max_wait=args.max_wait, recorder=rec)
    _info(f"[worker {worker.worker_id}] draining {plan.describe()} "
          f"via {cache.describe()}")
    report = worker.drain()
    _out(f"[worker {worker.worker_id}] {report.describe()}")
    _write_campaign_telemetry(rec)
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = [[name, WORKLOAD_PRESETS[name].description]
            for name in workload_names()]
    _print_catalog("Workload presets", ["name", "description"], rows)
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        rows = [[info["name"], info["phases"], info["description"]]
                for info in DEFAULT_SCENARIO_REGISTRY.describe_all()]
        _print_catalog("Scenarios (phase-structured workloads)",
                       ["name", "phases", "description"], rows)
        return 0
    return _cmd_scenario_run(args)


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    spec = scenario_spec(args.name)
    configs = _split(args.configs)
    cores = args.cores if args.cores is not None else (2 if args.small else 8)
    ops = args.ops if args.ops is not None else (600 if args.small else 4000)

    settings = ExperimentSettings(num_cores=cores, ops_per_thread=ops,
                                  seeds=(args.seed,), workloads=(args.name,),
                                  warmup_fraction=args.warmup)
    cache = _open_cli_cache(args)
    rec = _campaign_recorder(args, "scenario run")
    executor = CampaignExecutor(settings, jobs=args.jobs, cache=cache,
                                engine=args.engine, recorder=rec)
    cells = [Job(config, args.name, args.seed) for config in configs]
    results = executor.run(cells)

    _out(f"Scenario {spec.name}: {spec.description}")
    _out(f"phases: {' -> '.join(p.name for p in spec.phases)} "
         f"({ops} ops/thread total, {cores} cores, seed {args.seed})")
    for job, result in zip(cells, results):
        _out("")
        _out(format_phase_breakdown(
            result, title=f"{args.name} under {job.config_name}: "
                          f"per-phase stall breakdown (% of phase cycles)"))
    _info("")
    _info(f"[campaign] {executor.last_report.describe(cache)}, "
          f"--jobs {args.jobs}")
    _write_campaign_telemetry(rec)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.number == "scaling":
        return _cmd_figure_scaling(args)
    if args.workloads:
        workloads = _split(args.workloads)
    elif args.number == "scenarios":
        workloads = tuple(scenario_names())
    else:
        workloads = tuple(workload_names())
    ops = args.ops if args.ops is not None else 4000
    cores = args.cores if args.cores is not None else 8
    settings = ExperimentSettings(num_cores=cores, ops_per_thread=ops,
                                  seeds=args.seeds, workloads=workloads)
    cache = _open_cli_cache(args)
    rec = _campaign_recorder(args, f"figure {args.number}")
    runner = ExperimentRunner(settings, jobs=args.jobs, cache=cache,
                              engine=args.engine, recorder=rec)
    runner.prefetch(_FIGURE_CONFIGS[args.number])
    result = _FIGURES[args.number](settings, runner)
    _out(result.format())
    _info(f"[campaign] {runner.executor.last_report.describe(cache)}, "
          f"--jobs {args.jobs}")
    _write_campaign_telemetry(rec)
    return 0


def _cmd_figure_scaling(args: argparse.Namespace) -> int:
    """The machine-scaling study sweeps core counts, not a single machine."""
    if args.cores is not None:
        raise ReproError(
            "the scaling figure sweeps machine sizes; use --core-counts "
            "(e.g. --core-counts 4,16,64) instead of --cores")
    if args.core_counts is not None:
        core_counts = args.core_counts
    else:
        core_counts = (2, 4) if args.small else SCALING_CORE_COUNTS
    ops = args.ops if args.ops is not None else (400 if args.small else 4000)
    scenarios = (_split(args.workloads) if args.workloads
                 else (("false-sharing-storm",) if args.small
                       else SCALING_SCENARIOS))
    settings = ExperimentSettings(num_cores=max(core_counts),
                                  ops_per_thread=ops, seeds=args.seeds,
                                  workloads=scenarios)
    cache = _open_cli_cache(args)
    rec = _campaign_recorder(args, "figure scaling")
    result = run_scaling(settings, core_counts=core_counts,
                         scenarios=scenarios, jobs=args.jobs, cache=cache,
                         engine=args.engine, recorder=rec)
    _out(result.format())
    _info(f"[campaign] {result.report.describe(cache)}, --jobs {args.jobs}")
    _write_campaign_telemetry(rec)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    configs = _split(args.configs) if args.configs else (
        ("sc", "invisi_sc") if args.quick else DEFAULT_REGISTRY.names())
    workloads = _split(args.workloads) if args.workloads else (
        ("apache",) if args.quick else tuple(workload_names()))
    seeds = args.seeds
    cores = args.cores if args.cores is not None else (2 if args.quick else 8)
    ops = args.ops if args.ops is not None else (400 if args.quick else 4000)

    settings = ExperimentSettings(num_cores=cores, ops_per_thread=ops,
                                  seeds=seeds, workloads=workloads,
                                  warmup_fraction=args.warmup)
    cache = _open_cli_cache(args)
    rec = _campaign_recorder(args, "sweep")
    executor = CampaignExecutor(settings, jobs=args.jobs, cache=cache,
                                engine=args.engine, recorder=rec)
    cells = expand_jobs(configs, workloads, seeds)

    start = time.perf_counter()
    results = executor.run(cells)
    elapsed = time.perf_counter() - start

    rows = [[job.config_name, job.workload, str(job.seed),
             f"{result.cycles_per_core():.0f}", str(result.runtime)]
            for job, result in zip(cells, results)]
    _out(format_table(["config", "workload", "seed", "cycles/core", "runtime"],
                      rows,
                      title=f"Campaign sweep: {len(cells)} cells at "
                            f"{cores} cores, {ops} ops/thread"))
    _info(f"[campaign] {executor.last_report.describe(cache)} "
          f"in {elapsed:.1f}s with --jobs {args.jobs}")
    _write_campaign_telemetry(rec)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    cores = args.cores if args.cores is not None else (2 if args.small else 8)
    ops = args.ops if args.ops is not None else (600 if args.small else 4000)
    settings = ExperimentSettings(num_cores=cores, ops_per_thread=ops,
                                  seeds=(args.seed,),
                                  warmup_fraction=args.warmup)
    trace = build_trace(args.workload, num_threads=cores,
                        ops_per_thread=ops, seed=args.seed)
    rec = TraceRecorder()
    rec.meta.update({"config": args.config, "workload": args.workload,
                     "cores": cores, "ops_per_thread": ops,
                     "seed": args.seed, "engine": args.engine})
    start = time.perf_counter()
    result = simulate(make_config(args.config, settings), trace,
                      warmup_fraction=args.warmup, engine=args.engine,
                      recorder=rec)
    elapsed = time.perf_counter() - start
    _out(format_profile(rec))
    _info(f"[profile] {result.runtime} simulated cycles in {elapsed:.2f}s wall")
    _debug(f"[profile] {len(rec.spans)} spans, {len(rec.instants)} instants, "
           f"{len(rec.counters)} counters")
    if args.trace_out:
        path = write_chrome_trace(rec, args.trace_out)
        _info(f"[profile] wrote Chrome trace {path} "
              f"(open in https://ui.perfetto.dev)")
    if args.telemetry_out:
        path = write_telemetry(rec, args.telemetry_out)
        _info(f"[profile] wrote {path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import tempfile

    base = BenchPreset.small(engine=args.engine) if args.small \
        else BenchPreset(engine=args.engine)
    preset = dataclasses.replace(
        base,
        workload=args.workload,
        seed=args.seed,
        **{key: value for key, value in (("num_cores", args.cores),
                                         ("ops_per_thread", args.ops),
                                         ("repeats", args.repeats))
           if value is not None},
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        report = run_bench(preset, cache_dir=Path(tmp))
    write_report(report, Path(args.output))
    _out(format_bench_report(report))
    _info(f"[bench] wrote {args.output}")
    if args.check:
        try:
            baseline = load_report(Path(args.check))
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot read bench baseline {args.check}: {exc}")
        failures = check_against_baseline(report, baseline,
                                          tolerance=args.tolerance)
        _out(f"[bench] delta vs baseline {args.check}:")
        _out(format_baseline_delta(report, baseline))
        if failures:
            for failure in failures:
                print(f"[bench] REGRESSION: {failure}", file=sys.stderr)
            return 1
        _out(f"[bench] within {args.tolerance:.0%} of baseline {args.check}")
    return 0


def _cmd_tables(_: argparse.Namespace) -> int:
    for text in (figure2_table(), figure4_table(), figure5_table(),
                 figure6_table(), figure7_table()):
        _out(text)
        _out("")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    _set_verbosity(-1 if args.quiet else (1 if args.verbose else 0))
    commands = {
        "simulate": _cmd_simulate,
        "figure": _cmd_figure,
        "study": _cmd_study,
        "sweep": _cmd_sweep,
        "worker": _cmd_worker,
        "workloads": _cmd_workloads,
        "scenario": _cmd_scenario,
        "profile": _cmd_profile,
        "bench": _cmd_bench,
        "tables": _cmd_tables,
    }
    try:
        return commands[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

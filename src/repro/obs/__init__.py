"""Observability: zero-overhead-when-off instrumentation for the stack.

See :mod:`repro.obs.recorder` for the protocol and the determinism
argument, and :mod:`repro.obs.export` for the Chrome trace /
``telemetry.json`` / text-profile exporters.  DESIGN.md section 6 has
the hook-site inventory.
"""

from .export import (TELEMETRY_SCHEMA_VERSION, chrome_trace, format_profile,
                     telemetry_payload, write_chrome_trace, write_telemetry)
from .recorder import (COHERENCE_TID_BASE, NULL_RECORDER, PID_CAMPAIGN,
                       PID_SIM, InstantEvent, NullRecorder, Recorder,
                       SpanEvent, TraceRecorder, active)

__all__ = [
    "COHERENCE_TID_BASE",
    "NULL_RECORDER",
    "PID_CAMPAIGN",
    "PID_SIM",
    "TELEMETRY_SCHEMA_VERSION",
    "InstantEvent",
    "NullRecorder",
    "Recorder",
    "SpanEvent",
    "TraceRecorder",
    "active",
    "chrome_trace",
    "format_profile",
    "telemetry_payload",
    "write_chrome_trace",
    "write_telemetry",
]

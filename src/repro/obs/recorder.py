"""Recorders: the instrumentation protocol and its implementations.

The observability layer is built around one contract: every hook site in
the simulator holds a *recorder slot* that is either ``None`` (telemetry
off -- the default everywhere) or an enabled recorder.  Hook sites guard
their work behind a single ``if rec is not None`` so the fast and batch
hot paths pay exactly one pointer comparison when telemetry is off; the
bench harness gates that cost at <= 2% of kernel throughput.

Three event kinds exist, mirroring the Chrome trace-event model the
exporter targets:

* **counters** -- monotonically accumulated named integers
  (:meth:`Recorder.count`), e.g. ``coherence.invalidations``;
* **histograms** -- named value distributions (:meth:`Recorder.observe`),
  e.g. the batch engine's retired-stretch lengths;
* **spans and instants** -- timestamped intervals / points on a
  ``(pid, tid)`` track.  Two timebases coexist: ``PID_SIM`` tracks carry
  *simulated-cycle* timestamps (speculation episodes, drain stalls,
  directory transactions), ``PID_CAMPAIGN`` tracks carry *wall-clock*
  microseconds relative to the recorder's creation (per-job campaign
  timings).

Recorders only ever *observe*: no hook schedules an event, advances a
clock, or touches simulated state, which is the whole determinism
argument -- a telemetry-on run is byte-identical to a telemetry-off run
by construction, and the differential suite pins it.

:func:`active` normalizes the public API's ``Optional[Recorder]`` into
the internal hot-path slot: disabled recorders (``NullRecorder``) become
``None`` at wiring time, so a single ``if`` really is the whole cost.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: Track (pid) carrying simulated-cycle timestamps.
PID_SIM = 1
#: Track (pid) carrying wall-clock timestamps (microseconds since the
#: recorder was created).
PID_CAMPAIGN = 2

#: tid offset for per-core directory/coherence tracks under ``PID_SIM``
#: (core tracks use the bare core id).
COHERENCE_TID_BASE = 1000


@dataclass
class SpanEvent:
    """One closed interval on a track (Chrome trace ``"X"`` event)."""

    pid: int
    tid: int
    name: str
    ts: int
    dur: int
    args: Optional[Dict[str, Any]] = None


@dataclass
class InstantEvent:
    """One point event on a track (Chrome trace ``"i"`` event)."""

    pid: int
    tid: int
    name: str
    ts: int
    args: Optional[Dict[str, Any]] = None


class Recorder:
    """The instrumentation protocol; the base class is a no-op.

    Subclasses that actually record set ``enabled = True``; hook wiring
    (:func:`active`) drops disabled recorders so the hot paths never see
    them.
    """

    enabled = False

    # -- counters and histograms -------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Accumulate ``value`` into the named counter."""

    def observe(self, name: str, value: int) -> None:
        """Record one sample of the named distribution."""

    # -- spans and instants ------------------------------------------------

    def span(self, pid: int, tid: int, name: str, ts: int, dur: int,
             args: Optional[Dict[str, Any]] = None) -> None:
        """Record a closed interval ``[ts, ts + dur]`` on ``(pid, tid)``."""

    def instant(self, pid: int, tid: int, name: str, ts: int,
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a point event on ``(pid, tid)``."""

    # -- timebase helpers --------------------------------------------------

    def sim_span(self, tid: int, name: str, start: int, end: int,
                 args: Optional[Dict[str, Any]] = None) -> None:
        """A span on the simulated-cycle timebase (ts in cycles)."""

    def sim_instant(self, tid: int, name: str, ts: int,
                    args: Optional[Dict[str, Any]] = None) -> None:
        """An instant on the simulated-cycle timebase."""

    def wall_span(self, tid: int, name: str, start_s: float, end_s: float,
                  args: Optional[Dict[str, Any]] = None) -> None:
        """A span on the wall-clock timebase (``time.time()`` seconds)."""

    def wall_instant(self, tid: int, name: str,
                     args: Optional[Dict[str, Any]] = None) -> None:
        """An instant on the wall-clock timebase, stamped *now*."""


class NullRecorder(Recorder):
    """The default recorder: records nothing, costs nothing.

    Passing it anywhere a recorder is accepted is exactly equivalent to
    passing ``None``: :func:`active` strips it before any hook site can
    see it.
    """


#: Shared default instance (recorders carry no state when disabled).
NULL_RECORDER = NullRecorder()


class TraceRecorder(Recorder):
    """In-memory recorder backing the exporters.

    Wall-clock timestamps are stored relative to ``wall_origin`` (the
    ``time.time()`` at construction) in microseconds, so campaign spans
    from worker processes -- which report epoch seconds -- land on the
    same axis as spans recorded in the parent.
    """

    enabled = True

    def __init__(self) -> None:
        self.counters: Counter = Counter()
        self.histograms: Dict[str, Counter] = {}
        self.spans: List[SpanEvent] = []
        self.instants: List[InstantEvent] = []
        #: epoch seconds at creation; the wall timebase's zero.
        self.wall_origin = time.time()
        #: optional labels describing what was profiled (exported verbatim).
        self.meta: Dict[str, Any] = {}

    # -- counters and histograms -------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] += value

    def observe(self, name: str, value: int) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Counter()
        hist[value] += 1

    # -- spans and instants ------------------------------------------------

    def span(self, pid: int, tid: int, name: str, ts: int, dur: int,
             args: Optional[Dict[str, Any]] = None) -> None:
        self.spans.append(SpanEvent(pid, tid, name, ts, dur, args))

    def instant(self, pid: int, tid: int, name: str, ts: int,
                args: Optional[Dict[str, Any]] = None) -> None:
        self.instants.append(InstantEvent(pid, tid, name, ts, args))

    # -- timebase helpers --------------------------------------------------

    def sim_span(self, tid: int, name: str, start: int, end: int,
                 args: Optional[Dict[str, Any]] = None) -> None:
        self.spans.append(SpanEvent(PID_SIM, tid, name, start,
                                    max(0, end - start), args))

    def sim_instant(self, tid: int, name: str, ts: int,
                    args: Optional[Dict[str, Any]] = None) -> None:
        self.instants.append(InstantEvent(PID_SIM, tid, name, ts, args))

    def _wall_us(self, epoch_s: float) -> int:
        return int((epoch_s - self.wall_origin) * 1e6)

    def wall_span(self, tid: int, name: str, start_s: float, end_s: float,
                  args: Optional[Dict[str, Any]] = None) -> None:
        start = self._wall_us(start_s)
        self.spans.append(SpanEvent(PID_CAMPAIGN, tid, name, start,
                                    max(0, self._wall_us(end_s) - start),
                                    args))

    def wall_instant(self, tid: int, name: str,
                     args: Optional[Dict[str, Any]] = None) -> None:
        self.instants.append(InstantEvent(PID_CAMPAIGN, tid, name,
                                          self._wall_us(time.time()), args))


def active(recorder: Optional[Recorder]) -> Optional[Recorder]:
    """Normalize a public-API recorder into the internal hot-path slot.

    ``None`` and disabled recorders (:class:`NullRecorder`) both become
    ``None``, so hook sites need exactly one ``is not None`` check.
    """
    if recorder is not None and recorder.enabled:
        return recorder
    return None

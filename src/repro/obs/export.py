"""Exporters: Chrome trace JSON, ``telemetry.json``, and the text profile.

Three views over one :class:`~repro.obs.recorder.TraceRecorder`:

* :func:`chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  trace-event JSON object format, loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Spans become
  ``"X"`` complete events, instants become ``"i"``, and metadata
  ``"M"`` events name the two processes (simulated-cycle vs wall-clock
  timebase) and every thread track that appears.
* :func:`telemetry_payload` / :func:`write_telemetry` -- the
  schema-versioned ``telemetry.json`` metrics artifact written next to
  study artifacts: counters, histograms, and span aggregates, but no
  raw event list (campaigns would make that unbounded).
* :func:`format_profile` -- a human-readable report for the terminal.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .recorder import PID_CAMPAIGN, PID_SIM, COHERENCE_TID_BASE, TraceRecorder

#: Version of the ``telemetry.json`` artifact layout.  Bump on any
#: backwards-incompatible change to the payload structure.
TELEMETRY_SCHEMA_VERSION = 1

_PROCESS_NAMES = {
    PID_SIM: "simulation (simulated cycles)",
    PID_CAMPAIGN: "campaign (wall clock)",
}


def _thread_name(pid: int, tid: int) -> str:
    if pid == PID_SIM:
        if tid >= COHERENCE_TID_BASE:
            return f"directory/core {tid - COHERENCE_TID_BASE}"
        return f"core {tid}"
    if tid == 0:
        return "driver"
    return f"worker {tid}"


def chrome_trace(recorder: TraceRecorder) -> Dict[str, Any]:
    """The recorder's spans/instants as a Chrome trace-event JSON object.

    Timestamps are emitted as microseconds (the format's unit); for the
    ``PID_SIM`` process one simulated cycle maps to one microsecond, so
    Perfetto's time axis reads directly as cycles.
    """
    events: List[Dict[str, Any]] = []
    tracks = set()
    for span in recorder.spans:
        tracks.add((span.pid, span.tid))
        event: Dict[str, Any] = {
            "name": span.name, "ph": "X", "ts": span.ts, "dur": span.dur,
            "pid": span.pid, "tid": span.tid,
        }
        if span.args:
            event["args"] = span.args
        events.append(event)
    for inst in recorder.instants:
        tracks.add((inst.pid, inst.tid))
        event = {
            "name": inst.name, "ph": "i", "ts": inst.ts, "s": "t",
            "pid": inst.pid, "tid": inst.tid,
        }
        if inst.args:
            event["args"] = inst.args
        events.append(event)
    meta: List[Dict[str, Any]] = []
    for pid in sorted({pid for pid, _ in tracks}):
        meta.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                     "args": {"name": _PROCESS_NAMES.get(pid, f"pid {pid}")}})
    for pid, tid in sorted(tracks):
        meta.append({"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                     "args": {"name": _thread_name(pid, tid)}})
    payload: Dict[str, Any] = {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "counters": dict(sorted(recorder.counters.items())),
            **recorder.meta,
        },
    }
    return payload


def write_chrome_trace(recorder: TraceRecorder,
                       path: Union[str, Path]) -> Path:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(recorder), indent=1,
                               sort_keys=False) + "\n")
    return path


def _histogram_summary(hist) -> Dict[str, Any]:
    total = sum(hist.values())
    weighted = sum(value * count for value, count in hist.items())
    return {
        "samples": total,
        "min": min(hist) if hist else 0,
        "max": max(hist) if hist else 0,
        "mean": (weighted / total) if total else 0.0,
        "buckets": {str(value): hist[value] for value in sorted(hist)},
    }


def _span_aggregates(recorder: TraceRecorder) -> Dict[str, Any]:
    agg: Dict[str, Dict[str, int]] = {}
    for span in recorder.spans:
        entry = agg.setdefault(span.name, {"count": 0, "total_dur": 0})
        entry["count"] += 1
        entry["total_dur"] += span.dur
    return dict(sorted(agg.items()))


def telemetry_payload(recorder: TraceRecorder) -> Dict[str, Any]:
    """The schema-versioned ``telemetry.json`` metrics structure.

    Layout (``schema_version`` 1)::

        {
          "schema_version": 1,
          "meta": {...},                  # run labels (config, workload, ...)
          "counters": {name: int},
          "histograms": {name: {samples, min, max, mean, buckets}},
          "spans": {name: {count, total_dur}},
          "instants": {name: count},
        }

    Durations under ``spans`` mix timebases by span name: engine span
    names (``spec.episode``, ``sb.drain`` ...) are simulated cycles,
    campaign span names (``job`` ...) are wall-clock microseconds.
    """
    instants: Dict[str, int] = {}
    for inst in recorder.instants:
        instants[inst.name] = instants.get(inst.name, 0) + 1
    return {
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "meta": dict(recorder.meta),
        "counters": dict(sorted(recorder.counters.items())),
        "histograms": {name: _histogram_summary(hist)
                       for name, hist in sorted(recorder.histograms.items())},
        "spans": _span_aggregates(recorder),
        "instants": dict(sorted(instants.items())),
    }


def write_telemetry(recorder: TraceRecorder, path: Union[str, Path]) -> Path:
    """Write ``telemetry.json`` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(telemetry_payload(recorder), indent=2,
                               sort_keys=False) + "\n")
    return path


def _batch_engine_section(recorder: TraceRecorder) -> List[str]:
    """The batch-engine digest: bulk retirement vs. per-reason declines.

    Rendered as its own section so an opt-out or a decline storm is
    diagnosable straight from ``repro profile`` output, without loading
    the Chrome trace or picking ``batch.*`` rows out of the flat counter
    list (which this section replaces for ``batch.*`` names).
    """
    batch = {name: value for name, value in recorder.counters.items()
             if name.startswith("batch.")}
    if not batch:
        return []
    lines = ["batch engine:"]
    retired = batch.get("batch.retired", 0)
    stretches = recorder.histograms.get("batch.stretch_len")
    if stretches is not None:
        commits = sum(stretches.values())
        mean = retired / commits if commits else 0.0
        lines.append(f"  bulk-retired ops  {retired:>12}  "
                     f"({commits} stretches, mean length {mean:.1f})")
    else:
        lines.append(f"  bulk-retired ops  {retired:>12}")
    reasons = [(name.split(".", 2)[2], value)
               for name, value in sorted(batch.items())
               if name.startswith("batch.decline.")]
    for reason, value in reasons:
        lines.append(f"  decline {reason:<10}  {value:>12}")
    optouts = [(name.split(".", 2)[2], value)
               for name, value in sorted(batch.items())
               if name.startswith("batch.optout.")]
    for reason, value in optouts:
        lines.append(f"  opt-out {reason:<10}  {value:>12}")
    lines.append("")
    return lines


def format_profile(recorder: TraceRecorder) -> str:
    """Human-readable profile report (counters, histograms, span totals)."""
    lines: List[str] = []
    if recorder.meta:
        label = ", ".join(f"{key}={value}"
                         for key, value in sorted(recorder.meta.items()))
        lines.append(f"profile: {label}")
        lines.append("")
    spans = _span_aggregates(recorder)
    if spans:
        lines.append("spans (name: count, total duration):")
        width = max(len(name) for name in spans)
        for name, entry in spans.items():
            lines.append(f"  {name:<{width}}  {entry['count']:>8} x  "
                         f"{entry['total_dur']:>12} dur")
        lines.append("")
    lines.extend(_batch_engine_section(recorder))
    plain = {name: value for name, value in recorder.counters.items()
             if not name.startswith("batch.")}
    if plain:
        lines.append("counters:")
        width = max(len(name) for name in plain)
        for name, value in sorted(plain.items()):
            lines.append(f"  {name:<{width}}  {value:>12}")
        lines.append("")
    if recorder.histograms:
        lines.append("histograms:")
        for name, hist in sorted(recorder.histograms.items()):
            summary = _histogram_summary(hist)
            lines.append(
                f"  {name}: {summary['samples']} samples, "
                f"min {summary['min']}, mean {summary['mean']:.1f}, "
                f"max {summary['max']}")
        lines.append("")
    if not lines:
        return "profile: no telemetry recorded\n"
    return "\n".join(lines).rstrip() + "\n"

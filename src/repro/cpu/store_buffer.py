"""Post-retirement store buffers.

Two organisations are modelled, matching Figure 2 / Figure 6 of the paper:

* :class:`FIFOStoreBuffer` -- word-granularity (8-byte), age-ordered buffer
  used by the conventional SC and TSO implementations.  Entries leave the
  buffer strictly in order, so an entry is released only once *its own*
  write permission has arrived *and* every older entry has been released.

* :class:`CoalescingStoreBuffer` -- block-granularity, unordered buffer used
  by the conventional RMO implementation, by InvisiFence, and (for pending
  misses) by ASO.  Stores to a block with a pending entry coalesce into it,
  except that speculative and non-speculative stores to the same block are
  never merged (Section 3.1), mirroring InvisiFence's rule that protects
  non-speculative data from being flash-invalidated on abort.

Because the memory system is synchronous, the completion time of a store's
write permission is known at insertion time; the buffer therefore only does
bookkeeping: capacity, release ordering, drain times, and flash-invalidation
of speculative entries on abort.

Timing queries (``is_empty``, ``drain_time``, ...) are *non-destructive*:
they may legitimately be asked about future instants (e.g. "will the buffer
be empty when this op finishes?") as well as about the present (e.g. by the
conflict-resolution path of another core), so they must never throw away
entries.  Physical cleanup of long-dead entries happens only on insertion,
using the inserting core's own (monotonically advancing) clock.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional

from ..config import StoreBufferConfig, StoreBufferKind
from ..errors import StoreBufferError
from ..memory.address import block_mask, word_address


@dataclass
class StoreBufferEntry:
    """One buffered store (word or block granularity)."""

    address: int
    #: time at which the write permission / cleaning operation completes.
    completion_time: int
    #: time at which the entry actually leaves the buffer (>= completion).
    release_time: int
    speculative: bool = False
    #: id of the checkpoint/chunk that issued the store, if speculative.
    checkpoint_id: Optional[int] = None
    insertion_order: int = 0


class StoreBufferBase:
    """Shared bookkeeping for both store buffer organisations."""

    def __init__(self, config: StoreBufferConfig) -> None:
        self._config = config
        self._entries: List[StoreBufferEntry] = []
        self._insertions = 0
        #: largest release time over current entries (0 when empty); kept so
        #: the per-op ``is_empty``/``drain_time`` queries are O(1).  Entry
        #: removal can only drop already-released entries (purge) or trigger
        #: a recompute (flash invalidation), so the maximum stays exact.
        self._max_release = 0
        self.peak_occupancy = 0
        self.total_inserted = 0
        self.flash_invalidated = 0

    # -- granularity hook ---------------------------------------------------

    def _buffer_address(self, addr: int) -> int:
        raise NotImplementedError

    # -- housekeeping --------------------------------------------------------

    @property
    def config(self) -> StoreBufferConfig:
        return self._config

    @property
    def capacity(self) -> int:
        return self._config.entries

    def _live(self, now: int) -> List[StoreBufferEntry]:
        """Entries still resident at time ``now`` (non-destructive)."""
        return [e for e in self._entries if e.release_time > now]

    def _purge(self, now: int) -> None:
        """Physically drop entries released at or before ``now``.

        Only called from :meth:`add_store` with the inserting core's clock,
        which never runs ahead of the queries that other components may make
        about the present.
        """
        if self._entries:
            self._entries = [e for e in self._entries if e.release_time > now]

    def occupancy(self, now: int) -> int:
        return sum(1 for e in self._entries if e.release_time > now)

    def is_empty(self, now: int) -> bool:
        # O(1): every current entry's release time is <= _max_release.
        return self._max_release <= now

    def is_full(self, now: int) -> bool:
        # Fewer current entries than capacity can never be full; counting is
        # only needed in the (rare) at-capacity case.
        if len(self._entries) < self.capacity:
            return False
        return self.occupancy(now) >= self.capacity

    def entries(self, now: Optional[int] = None) -> List[StoreBufferEntry]:
        if now is None:
            return list(self._entries)
        return self._live(now)

    # -- timing queries -------------------------------------------------------

    def drain_time(self, now: int) -> int:
        """Time at which the buffer will be empty, given current contents."""
        # O(1): the live entry with the largest release time is the last to
        # leave, and that maximum is tracked incrementally.
        return self._max_release if self._max_release > now else now

    def next_free_slot_time(self, now: int) -> int:
        """Earliest time at which at least one entry will be free."""
        live = self._live(now)
        if len(live) < self.capacity:
            return now
        return min(e.release_time for e in live)

    def drain_time_for_checkpoint(self, checkpoint_id: int, now: int) -> int:
        """Time at which all stores issued by one checkpoint have completed."""
        times = [e.release_time for e in self._live(now)
                 if e.speculative and e.checkpoint_id == checkpoint_id]
        return max(times) if times else now

    def has_block(self, addr: int, now: int) -> bool:
        """True when any live entry covers ``addr`` at this buffer's granularity."""
        baddr = self._buffer_address(addr)
        for e in self._entries:
            if e.address == baddr and e.release_time > now:
                return True
        return False

    # -- speculation support ---------------------------------------------------

    def flash_invalidate_speculative(self, now: int,
                                     checkpoint_id: Optional[int] = None) -> int:
        """Drop speculative entries (abort path); returns number dropped."""
        live = self._live(now)

        def doomed(entry: StoreBufferEntry) -> bool:
            if not entry.speculative or entry not in live:
                return False
            return checkpoint_id is None or entry.checkpoint_id == checkpoint_id

        before = len(self._entries)
        self._entries = [e for e in self._entries if not doomed(e)]
        dropped = before - len(self._entries)
        if dropped:
            self._max_release = max(
                (e.release_time for e in self._entries), default=0)
            self._on_entries_rebuilt()
        self.flash_invalidated += dropped
        return dropped

    def _on_entries_rebuilt(self) -> None:
        """Hook for subclasses that keep parallel per-entry arrays."""

    def mark_all_non_speculative(self, now: int,
                                 checkpoint_id: Optional[int] = None) -> None:
        """Commit path: buffered speculative stores become ordinary stores."""
        for entry in self._entries:
            if entry.speculative and (checkpoint_id is None
                                      or entry.checkpoint_id == checkpoint_id):
                entry.speculative = False
                entry.checkpoint_id = None

    # -- insertion -------------------------------------------------------------

    def add_store(self, addr: int, now: int, completion_time: int,
                  speculative: bool = False,
                  checkpoint_id: Optional[int] = None) -> StoreBufferEntry:
        """Insert a store; the caller must have checked capacity first."""
        raise NotImplementedError

    def _record_insertion(self, entry: StoreBufferEntry, now: int) -> None:
        self._insertions += 1
        self.total_inserted += 1
        self._entries.append(entry)
        if entry.release_time > self._max_release:
            self._max_release = entry.release_time
        # add_store purges released entries before appending, so every
        # current entry is live and the occupancy is just the list length.
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)


class FIFOStoreBuffer(StoreBufferBase):
    """Word-granularity, age-ordered store buffer (conventional SC/TSO).

    Release times are a running maximum over insertion order, so they are
    monotonically non-decreasing along ``_entries``.  A parallel sorted
    array of release times therefore answers the per-op occupancy and
    purge queries by binary search instead of scanning.
    """

    def __init__(self, config: StoreBufferConfig) -> None:
        if config.kind is not StoreBufferKind.FIFO_WORD:
            raise StoreBufferError("FIFOStoreBuffer requires a FIFO_WORD configuration")
        super().__init__(config)
        #: release times parallel to ``_entries`` (non-decreasing).
        self._releases: List[int] = []

    def _buffer_address(self, addr: int) -> int:
        return word_address(addr)

    def _on_entries_rebuilt(self) -> None:
        self._releases = [e.release_time for e in self._entries]

    def occupancy(self, now: int) -> int:
        releases = self._releases
        return len(releases) - bisect_right(releases, now)

    def is_full(self, now: int) -> bool:
        releases = self._releases
        return len(releases) - bisect_right(releases, now) >= self.capacity

    def next_free_slot_time(self, now: int) -> int:
        """Earliest time at which at least one entry will be free."""
        releases = self._releases
        first_live = bisect_right(releases, now)
        if len(releases) - first_live < self.capacity:
            return now
        # Monotone release times: the oldest live entry leaves first.
        return releases[first_live]

    def _purge(self, now: int) -> None:
        cut = bisect_right(self._releases, now)
        if cut:
            del self._entries[:cut]
            del self._releases[:cut]

    def add_store(self, addr: int, now: int, completion_time: int,
                  speculative: bool = False,
                  checkpoint_id: Optional[int] = None) -> StoreBufferEntry:
        if self.is_full(now):
            raise StoreBufferError("FIFO store buffer overflow; check is_full first")
        # FIFO ordering: an entry can only be released after every older
        # entry has been released, so the release time is the running
        # maximum of completion times in insertion order.
        previous_release = self._releases[-1] if self._releases else now
        self._purge(now)
        release = max(completion_time, previous_release)
        entry = StoreBufferEntry(address=self._buffer_address(addr),
                                 completion_time=completion_time,
                                 release_time=release,
                                 speculative=speculative,
                                 checkpoint_id=checkpoint_id,
                                 insertion_order=self._insertions)
        self._record_insertion(entry, now)
        self._releases.append(release)
        return entry


class CoalescingStoreBuffer(StoreBufferBase):
    """Block-granularity, unordered store buffer (RMO / InvisiFence)."""

    def __init__(self, config: StoreBufferConfig) -> None:
        if config.kind is not StoreBufferKind.COALESCING_BLOCK:
            raise StoreBufferError(
                "CoalescingStoreBuffer requires a COALESCING_BLOCK configuration"
            )
        super().__init__(config)
        self.coalesced = 0
        self._entry_mask = block_mask(config.entry_bytes)

    def _buffer_address(self, addr: int) -> int:
        return addr & self._entry_mask

    def find(self, addr: int, now: int, speculative: bool) -> Optional[StoreBufferEntry]:
        """Find an existing live entry this store may coalesce into."""
        baddr = self._buffer_address(addr)
        for entry in self._entries:
            if entry.address == baddr and entry.speculative == speculative \
                    and entry.release_time > now:
                return entry
        return None

    def add_store(self, addr: int, now: int, completion_time: int,
                  speculative: bool = False,
                  checkpoint_id: Optional[int] = None) -> StoreBufferEntry:
        existing = self.find(addr, now, speculative)
        if existing is not None:
            # Coalesce: the entry's lifetime covers the latest completion.
            self.coalesced += 1
            existing.completion_time = max(existing.completion_time, completion_time)
            existing.release_time = max(existing.release_time, completion_time)
            if existing.release_time > self._max_release:
                self._max_release = existing.release_time
            return existing
        if self.is_full(now):
            raise StoreBufferError(
                "coalescing store buffer overflow; check is_full first"
            )
        self._purge(now)
        entry = StoreBufferEntry(address=self._buffer_address(addr),
                                 completion_time=completion_time,
                                 release_time=completion_time,
                                 speculative=speculative,
                                 checkpoint_id=checkpoint_id,
                                 insertion_order=self._insertions)
        self._record_insertion(entry, now)
        return entry


def make_store_buffer(config: StoreBufferConfig) -> StoreBufferBase:
    """Instantiate the store buffer matching ``config``."""
    if config.kind is StoreBufferKind.FIFO_WORD:
        return FIFOStoreBuffer(config)
    return CoalescingStoreBuffer(config)

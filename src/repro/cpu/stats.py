"""Per-core statistics and the paper's stall taxonomy.

The paper divides execution time into five components (Figure 9):

* ``busy``      -- cycles actively retiring instructions,
* ``other``     -- stall cycles unrelated to memory ordering (load misses,
                   atomic data misses, ...),
* ``sb_full``   -- cycles a store stalls retirement waiting for a free
                   store buffer entry,
* ``sb_drain``  -- cycles stalled waiting for the store buffer to drain
                   because of an ordering requirement (fences, atomics, and
                   under SC every load),
* ``violation`` -- cycles spent on speculative work that was later rolled
                   back due to an ordering violation.

The first four are *work classes*: when a speculation aborts, the work
classes accumulated since the checkpoint are rolled back and the elapsed
time is recorded as ``violation`` instead.  :meth:`CoreStats.snapshot` and
:meth:`CoreStats.rollback_to` implement exactly that.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict

#: The four classes that are reassigned to ``violation`` on an abort.
STALL_CLASSES = ("busy", "other", "sb_full", "sb_drain")

#: All runtime components reported in breakdowns.
BREAKDOWN_COMPONENTS = ("busy", "other", "sb_full", "sb_drain", "violation")

#: Every cumulative counter (everything except ``finish_time``, which is a
#: timestamp rather than an accumulator).  Used by phase attribution, which
#: differences full snapshots taken at phase boundaries.
COUNTER_FIELDS = BREAKDOWN_COMPONENTS + (
    "spec_cycles", "speculations", "commits", "aborts", "cov_commits",
    "cov_aborts", "forced_commits", "replayed_ops", "loads", "stores",
    "atomics", "fences", "instructions",
)


@dataclass
class CoreStats:
    """Cycle and event counters for one core."""

    # -- cycle breakdown ---------------------------------------------------
    busy: int = 0
    other: int = 0
    sb_full: int = 0
    sb_drain: int = 0
    violation: int = 0

    # -- speculation activity ----------------------------------------------
    spec_cycles: int = 0
    speculations: int = 0
    commits: int = 0
    aborts: int = 0
    cov_commits: int = 0
    cov_aborts: int = 0
    forced_commits: int = 0
    replayed_ops: int = 0

    # -- operation counts ---------------------------------------------------
    loads: int = 0
    stores: int = 0
    atomics: int = 0
    fences: int = 0
    instructions: int = 0

    #: time at which this core finished its trace.
    finish_time: int = 0

    def add_cycles(self, category: str, cycles: int) -> None:
        """Accumulate ``cycles`` into one of the breakdown components."""
        if cycles < 0:
            raise ValueError(f"negative cycle count for {category}: {cycles}")
        setattr(self, category, getattr(self, category) + cycles)

    def reset_measurement(self) -> None:
        """Zero every counter (used when a measurement warmup period ends).

        Cold-start cache misses dominate short synthetic traces; the paper's
        sampling methodology likewise measures only warmed-up execution.
        """
        for name in COUNTER_FIELDS:
            setattr(self, name, 0)

    # -- speculation rollback accounting ------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Capture the work classes (taken when a checkpoint is created)."""
        return {name: getattr(self, name) for name in STALL_CLASSES}

    def full_snapshot(self) -> Dict[str, int]:
        """Capture every cumulative counter (phase-boundary attribution)."""
        return {name: getattr(self, name) for name in COUNTER_FIELDS}

    @classmethod
    def from_delta(cls, before: Dict[str, int], after: Dict[str, int]) -> "CoreStats":
        """Stats accumulated between two :meth:`full_snapshot` captures."""
        return cls(**{name: after[name] - before[name] for name in COUNTER_FIELDS})

    def rollback_to(self, snapshot: Dict[str, int], elapsed: int) -> None:
        """Discard work since ``snapshot`` and charge ``elapsed`` to violation.

        ``elapsed`` is the wall-clock time between the checkpoint and the
        abort; all of it is accounted as violation cycles, and the work
        class counters are restored so no cycle is counted twice.
        """
        if elapsed < 0:
            raise ValueError("elapsed time since checkpoint cannot be negative")
        for name in STALL_CLASSES:
            setattr(self, name, snapshot[name])
        self.violation += elapsed

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form suitable for ``json.dumps``."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CoreStats":
        """Rebuild stats from :meth:`to_dict` output."""
        return cls(**data)

    # -- reporting ----------------------------------------------------------

    def total_accounted(self) -> int:
        """Sum of all breakdown components."""
        return sum(getattr(self, name) for name in BREAKDOWN_COMPONENTS)

    def breakdown(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in BREAKDOWN_COMPONENTS}

    def ordering_stall_cycles(self) -> int:
        """Cycles lost to memory ordering (the quantity Figure 1 plots)."""
        return self.sb_full + self.sb_drain + self.violation

    def merge(self, other: "CoreStats") -> None:
        """Accumulate another core's counters into this one (aggregation)."""
        for name in COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.finish_time = max(self.finish_time, other.finish_time)

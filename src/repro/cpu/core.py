"""The trace-driven core.

A :class:`Core` consumes one program-order trace.  It owns no ordering
logic itself: every operation is handed to the attached consistency
controller, which returns the time at which the operation finished
retiring.  The core then schedules itself to process the next operation at
that time.

Two step implementations exist and are proven equivalent by the
differential suite (``tests/test_differential.py``):

* the **reference path** (``batching=False``) schedules one heap event per
  operation, exactly as the original engine did;
* the **fast path** (``batching=True``, the default) consumes the trace's
  compiled struct-of-arrays form and batches runs of operations in a
  single event: after finishing an op at time *t*, if the next pending
  heap event is *strictly later* than *t*, no other event in the whole
  system can fire before this core's next step would, so the next op is
  processed inline ("run-until-interesting").  The queue clock and the
  processed-event count are advanced exactly as if the per-op event had
  been scheduled and popped, which keeps results bitwise identical.

The batch condition is exact rather than heuristic: cross-core
interactions (coherence transactions, conflict-triggered aborts, commit
checks) all travel through the event queue or happen synchronously inside
this core's own ``process_op`` call, so "no earlier-or-equal pending
event" really does mean "nothing can observe or perturb this core before
its next step".  Events scheduled *during* an inlined op (e.g. a deferred
abort on another core) are seen by the very next peek, ending the batch.

Speculative controllers can roll the core back: :meth:`Core.rollback`
resets the trace index to the checkpointed position, bumps the core's
generation counter (which cancels any in-flight step event), and
reschedules processing.  Rollback targets are plain trace indices, so they
map back to exact positions in the compiled arrays regardless of how ops
were batched.  Controllers can also schedule auxiliary callbacks (commit
checks, deferred aborts) through :meth:`Core.schedule_call`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from ..config import SystemConfig
from ..errors import SimulationError
from ..trace.trace import Trace
from .stats import COUNTER_FIELDS, CoreStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..coherence.memory_system import MemorySystem
    from ..consistency.base import ConsistencyController
    from ..engine.events import EventQueue

#: Upper bound on ops processed inline by one step event.  Scheduling the
#: next step through the heap is observably identical to inlining it (the
#: batch condition guarantees no other event can fire in between), so the
#: cap changes nothing except returning control to ``EventQueue.run``
#: periodically -- which is what keeps the simulator's ``max_events``
#: runaway backstop effective under the fast path (e.g. against a
#: controller that answers ``("wait", now + k)`` at trace end forever).
_MAX_INLINE_BATCH = 4096


class Core:
    """One simulated processor core."""

    def __init__(self, core_id: int, trace: Trace, config: SystemConfig,
                 mem: "MemorySystem", events: "EventQueue",
                 warmup_ops: int = 0,
                 phase_bounds: Optional[Sequence[int]] = None,
                 batching: bool = True) -> None:
        self.core_id = core_id
        self.trace = trace
        self.config = config
        self.mem = mem
        self.events = events
        self.stats = CoreStats()
        self.controller: Optional["ConsistencyController"] = None
        #: observability slot: ``None`` (telemetry off) or an *enabled*
        #: recorder (see :mod:`repro.obs`).  Set by ``build_system`` before
        #: the controller is attached, so controllers can capture it.
        self.obs = None
        #: True for the batched fast path, False for the one-event-per-op
        #: reference path (kept for differential equivalence testing).
        self.batching = batching
        compiled = trace.compiled()
        self._ops = compiled.ops
        self._instr_weights = compiled.instr_weights
        self._trace_len = compiled.length

        self._index = 0
        self._generation = 0
        self._finished = False
        self.finish_time: Optional[int] = None
        #: number of leading trace operations treated as cache/statistics
        #: warmup: when the core first retires past this index (while not
        #: speculating) every counter is reset.
        self.warmup_ops = max(0, min(warmup_ops, len(trace)))
        self._warmup_done = self.warmup_ops == 0
        #: cumulative phase end-indices into the trace (last == len(trace)).
        #: When set, the core snapshots its counters each time retirement
        #: first crosses a boundary, so per-phase stats can be recovered as
        #: snapshot deltas.  Rollbacks that re-enter an earlier phase discard
        #: the affected snapshots; they are re-taken on the re-crossing.
        self.phase_bounds: List[int] = list(phase_bounds or [])
        if self.phase_bounds:
            if sorted(set(self.phase_bounds)) != self.phase_bounds:
                raise SimulationError("phase bounds must be strictly increasing")
            if self.phase_bounds[0] <= 0 or self.phase_bounds[-1] != len(trace):
                raise SimulationError(
                    "phase bounds must be positive and end at the trace length"
                )
        self._inner_bounds = self.phase_bounds[:-1]
        self._phase_snaps: List[Optional[Dict[str, int]]] = \
            [None] * len(self._inner_bounds)
        self._next_bound = 0

    # -- wiring --------------------------------------------------------------

    def attach_controller(self, controller: "ConsistencyController") -> None:
        self.controller = controller
        self.mem.register_listener(self.core_id, controller)

    # -- trace position --------------------------------------------------------

    @property
    def trace_index(self) -> int:
        return self._index

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def remaining_ops(self) -> int:
        return max(0, len(self.trace) - self._index)

    # -- phase attribution -----------------------------------------------------

    def phase_stats(self) -> List[CoreStats]:
        """Per-phase counter deltas (empty without phase bounds).

        Only meaningful once the core has finished: the last phase is
        closed by the core's final counters, so end-of-trace work (store
        buffer drain, final speculation commit) is attributed to it.
        """
        if not self.phase_bounds:
            return []
        if not self._finished:
            raise SimulationError(
                f"phase stats requested before core {self.core_id} finished"
            )
        snaps = list(self._phase_snaps) + [self.stats.full_snapshot()]
        out: List[CoreStats] = []
        prev = {name: 0 for name in COUNTER_FIELDS}
        for snap in snaps:
            assert snap is not None  # all boundaries crossed once finished
            out.append(CoreStats.from_delta(prev, snap))
            prev = snap
        return out

    # -- scheduling --------------------------------------------------------------

    def start(self, at: int = 0) -> None:
        """Schedule the first processing step."""
        if self.controller is None:
            raise SimulationError(f"core {self.core_id} has no controller attached")
        # Re-resolve the compiled form in case the trace was mutated between
        # construction and start (compiled() is cached, so this is free in
        # the normal build-then-run flow).
        compiled = self.trace.compiled()
        self._ops = compiled.ops
        self._instr_weights = compiled.instr_weights
        self._trace_len = compiled.length
        self._schedule_step(at)

    def schedule_call(self, time: int, callback: Callable[[int], None]) -> None:
        """Schedule a controller callback (commit check, deferred abort, ...)."""
        self.events.schedule(time, callback)

    def _schedule_step(self, time: int) -> None:
        self.events.schedule_step(time, self, self._generation)

    def rollback(self, trace_index: int, now: int) -> None:
        """Reset the trace position after an abort and resume at ``now``."""
        if trace_index < 0 or trace_index > len(self.trace):
            raise SimulationError(
                f"rollback to invalid trace index {trace_index} on core {self.core_id}"
            )
        self.stats.replayed_ops += max(0, self._index - trace_index)
        while self._next_bound > 0 and trace_index < self._inner_bounds[self._next_bound - 1]:
            self._next_bound -= 1
            self._phase_snaps[self._next_bound] = None
        self._index = trace_index
        self._generation += 1
        self._finished = False
        self.finish_time = None
        self._schedule_step(now)

    # -- the per-op step -----------------------------------------------------------

    def _step(self, now: int, generation: int) -> None:
        if self.batching:
            self._step_fast(now, generation)
        else:
            self._step_reference(now, generation)

    def _pre_op(self) -> None:
        """Warmup reset and phase-boundary snapshots for the op at ``_index``."""
        if not self._warmup_done and self._index >= self.warmup_ops:
            self.stats.reset_measurement()
            self.controller.on_measurement_reset()
            self._warmup_done = True
            # Boundaries crossed during warmup delimit phases whose measured
            # contribution is (by definition) zero.
            for i in range(self._next_bound):
                self._phase_snaps[i] = {name: 0 for name in COUNTER_FIELDS}
        while self._next_bound < len(self._inner_bounds) \
                and self._index >= self._inner_bounds[self._next_bound]:
            self._phase_snaps[self._next_bound] = self.stats.full_snapshot()
            self._next_bound += 1

    def _step_fast(self, now: int, generation: int) -> None:
        """Batched step: process ops inline until another event is due."""
        if generation != self._generation or self._finished:
            return
        assert self.controller is not None
        process_op = self.controller.process_op
        events = self.events
        ops = self._ops
        weights = self._instr_weights
        trace_len = self._trace_len
        stats = self.stats
        budget = _MAX_INLINE_BATCH
        while True:
            if not self._warmup_done or self._next_bound < len(self._inner_bounds):
                self._pre_op()
            index = self._index
            if index >= trace_len:
                wake = self._handle_trace_end(now)
                if wake is None:
                    return
                # The trace-end wait is itself batchable: if nothing else
                # fires before the wake time, continue inline.
                head = events.next_time()
                budget -= 1
                limit = events.run_until
                if budget > 0 and (head is None or head > wake) \
                        and (limit is None or wake <= limit):
                    events.note_inline(wake)
                    now = wake
                    continue
                self._schedule_step(wake)
                return
            finish = process_op(ops[index], now)
            if finish < now:
                raise SimulationError(
                    f"controller returned a finish time in the past on core {self.core_id}"
                )
            self._index = index + 1
            stats.instructions += weights[index]
            # Inline peek of the next live event (events._heap is re-read
            # each iteration because compaction may rebind it).
            heap = events._heap
            if heap:
                head_event = heap[0]
                head = events.next_time() if head_event.cancelled \
                    else head_event.time
            else:
                head = None
            budget -= 1
            limit = events.run_until
            if budget > 0 and (head is None or head > finish) \
                    and (limit is None or finish <= limit):
                # No event anywhere in the system fires before this core's
                # next step would (and the next step lies within the active
                # run(until=...) horizon, if any): process the next op
                # inline, keeping the clock and event count in lockstep
                # with the reference path.
                events.note_inline(finish)
                now = finish
                continue
            self._schedule_step(finish)
            return

    def _step_reference(self, now: int, generation: int) -> None:
        """Reference step: one heap event per operation (original engine)."""
        if generation != self._generation or self._finished:
            return
        assert self.controller is not None
        self._pre_op()
        if self._index >= self._trace_len:
            wake = self._handle_trace_end(now)
            if wake is not None:
                self._schedule_step(wake)
            return
        op = self._ops[self._index]
        finish = self.controller.process_op(op, now)
        if finish < now:
            raise SimulationError(
                f"controller returned a finish time in the past on core {self.core_id}"
            )
        self.stats.instructions += self._instr_weights[self._index]
        self._index += 1
        self._schedule_step(finish)

    def _handle_trace_end(self, now: int) -> Optional[int]:
        """Finish the core or return the wake time to re-check at."""
        assert self.controller is not None
        status, time = self.controller.at_trace_end(now)
        if status == "done":
            self._finished = True
            self.finish_time = max(time, now)
            self.stats.finish_time = self.finish_time
            return None
        if status == "wait":
            if time <= now:
                raise SimulationError(
                    "controller asked to wait without advancing time at trace end"
                )
            return time
        raise SimulationError(f"unknown trace-end status {status!r}")  # pragma: no cover

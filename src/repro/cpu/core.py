"""The trace-driven core.

A :class:`Core` consumes one program-order trace.  It owns no ordering
logic itself: every operation is handed to the attached consistency
controller, which returns the time at which the operation finished
retiring.  The core then schedules itself to process the next operation at
that time.

Speculative controllers can roll the core back: :meth:`Core.rollback`
resets the trace index to the checkpointed position, bumps the core's
generation counter (which cancels any in-flight step event), and
reschedules processing.  Controllers can also schedule auxiliary callbacks
(commit checks, deferred aborts) through :meth:`Core.schedule_call`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from ..config import SystemConfig
from ..errors import SimulationError
from ..trace.trace import Trace
from .stats import COUNTER_FIELDS, CoreStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..coherence.memory_system import MemorySystem
    from ..consistency.base import ConsistencyController
    from ..engine.events import EventQueue


class Core:
    """One simulated processor core."""

    def __init__(self, core_id: int, trace: Trace, config: SystemConfig,
                 mem: "MemorySystem", events: "EventQueue",
                 warmup_ops: int = 0,
                 phase_bounds: Optional[Sequence[int]] = None) -> None:
        self.core_id = core_id
        self.trace = trace
        self.config = config
        self.mem = mem
        self.events = events
        self.stats = CoreStats()
        self.controller: Optional["ConsistencyController"] = None

        self._index = 0
        self._generation = 0
        self._finished = False
        self.finish_time: Optional[int] = None
        #: number of leading trace operations treated as cache/statistics
        #: warmup: when the core first retires past this index (while not
        #: speculating) every counter is reset.
        self.warmup_ops = max(0, min(warmup_ops, len(trace)))
        self._warmup_done = self.warmup_ops == 0
        #: cumulative phase end-indices into the trace (last == len(trace)).
        #: When set, the core snapshots its counters each time retirement
        #: first crosses a boundary, so per-phase stats can be recovered as
        #: snapshot deltas.  Rollbacks that re-enter an earlier phase discard
        #: the affected snapshots; they are re-taken on the re-crossing.
        self.phase_bounds: List[int] = list(phase_bounds or [])
        if self.phase_bounds:
            if sorted(set(self.phase_bounds)) != self.phase_bounds:
                raise SimulationError("phase bounds must be strictly increasing")
            if self.phase_bounds[0] <= 0 or self.phase_bounds[-1] != len(trace):
                raise SimulationError(
                    "phase bounds must be positive and end at the trace length"
                )
        self._inner_bounds = self.phase_bounds[:-1]
        self._phase_snaps: List[Optional[Dict[str, int]]] = \
            [None] * len(self._inner_bounds)
        self._next_bound = 0

    # -- wiring --------------------------------------------------------------

    def attach_controller(self, controller: "ConsistencyController") -> None:
        self.controller = controller
        self.mem.register_listener(self.core_id, controller)

    # -- trace position --------------------------------------------------------

    @property
    def trace_index(self) -> int:
        return self._index

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def remaining_ops(self) -> int:
        return max(0, len(self.trace) - self._index)

    # -- phase attribution -----------------------------------------------------

    def phase_stats(self) -> List[CoreStats]:
        """Per-phase counter deltas (empty without phase bounds).

        Only meaningful once the core has finished: the last phase is
        closed by the core's final counters, so end-of-trace work (store
        buffer drain, final speculation commit) is attributed to it.
        """
        if not self.phase_bounds:
            return []
        if not self._finished:
            raise SimulationError(
                f"phase stats requested before core {self.core_id} finished"
            )
        snaps = list(self._phase_snaps) + [self.stats.full_snapshot()]
        out: List[CoreStats] = []
        prev = {name: 0 for name in COUNTER_FIELDS}
        for snap in snaps:
            assert snap is not None  # all boundaries crossed once finished
            out.append(CoreStats.from_delta(prev, snap))
            prev = snap
        return out

    # -- scheduling --------------------------------------------------------------

    def start(self, at: int = 0) -> None:
        """Schedule the first processing step."""
        if self.controller is None:
            raise SimulationError(f"core {self.core_id} has no controller attached")
        self._schedule_step(at)

    def schedule_call(self, time: int, callback: Callable[[int], None]) -> None:
        """Schedule a controller callback (commit check, deferred abort, ...)."""
        self.events.schedule(time, callback)

    def _schedule_step(self, time: int) -> None:
        generation = self._generation
        self.events.schedule(time, lambda now, gen=generation: self._step(now, gen))

    def rollback(self, trace_index: int, now: int) -> None:
        """Reset the trace position after an abort and resume at ``now``."""
        if trace_index < 0 or trace_index > len(self.trace):
            raise SimulationError(
                f"rollback to invalid trace index {trace_index} on core {self.core_id}"
            )
        self.stats.replayed_ops += max(0, self._index - trace_index)
        while self._next_bound > 0 and trace_index < self._inner_bounds[self._next_bound - 1]:
            self._next_bound -= 1
            self._phase_snaps[self._next_bound] = None
        self._index = trace_index
        self._generation += 1
        self._finished = False
        self.finish_time = None
        self._schedule_step(now)

    # -- the per-op step -----------------------------------------------------------

    def _step(self, now: int, generation: int) -> None:
        if generation != self._generation or self._finished:
            return
        assert self.controller is not None
        if not self._warmup_done and self._index >= self.warmup_ops:
            self.stats.reset_measurement()
            self.controller.on_measurement_reset()
            self._warmup_done = True
            # Boundaries crossed during warmup delimit phases whose measured
            # contribution is (by definition) zero.
            for i in range(self._next_bound):
                self._phase_snaps[i] = {name: 0 for name in COUNTER_FIELDS}
        while self._next_bound < len(self._inner_bounds) \
                and self._index >= self._inner_bounds[self._next_bound]:
            self._phase_snaps[self._next_bound] = self.stats.full_snapshot()
            self._next_bound += 1
        if self._index >= len(self.trace):
            self._handle_trace_end(now)
            return
        op = self.trace[self._index]
        finish = self.controller.process_op(op, now)
        if finish < now:
            raise SimulationError(
                f"controller returned a finish time in the past on core {self.core_id}"
            )
        self._index += 1
        self.stats.instructions += op.cycles if not op.is_memory and op.kind.value == "compute" else 1
        self._schedule_step(finish)

    def _handle_trace_end(self, now: int) -> None:
        assert self.controller is not None
        status, time = self.controller.at_trace_end(now)
        if status == "done":
            self._finished = True
            self.finish_time = max(time, now)
            self.stats.finish_time = self.finish_time
        elif status == "wait":
            if time <= now:
                raise SimulationError(
                    "controller asked to wait without advancing time at trace end"
                )
            self._schedule_step(time)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown trace-end status {status!r}")

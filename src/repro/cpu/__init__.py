"""Processor-side models: store buffers, per-core statistics, and the core.

The core is a trace-driven retirement engine: it consumes a program-order
sequence of operations, delegating every ordering decision to a pluggable
consistency controller (conventional SC/TSO/RMO, InvisiFence selective or
continuous, or ASO).  Store buffers follow the two organisations of
Figure 2/6: a word-granularity FIFO (SC, TSO) and a block-granularity
coalescing buffer (RMO, InvisiFence).
"""

from .store_buffer import (
    CoalescingStoreBuffer,
    FIFOStoreBuffer,
    StoreBufferBase,
    StoreBufferEntry,
    make_store_buffer,
)
from .stats import CoreStats, STALL_CLASSES
from .core import Core

__all__ = [
    "StoreBufferBase",
    "StoreBufferEntry",
    "FIFOStoreBuffer",
    "CoalescingStoreBuffer",
    "make_store_buffer",
    "CoreStats",
    "STALL_CLASSES",
    "Core",
]

"""Kernel benchmarking: the data source of the perf trajectory.

``repro bench`` times the execution kernel itself (ops/sec per controller
kind), the campaign executor cold vs. cached, and scenario trace splicing,
and writes the results to ``BENCH_kernel.json`` in a documented schema so
successive PRs can be compared.  See :mod:`repro.bench.harness` for the
schema and :func:`check_against_baseline` for the CI regression gate.
"""

from .harness import (
    BENCH_SCHEMA_VERSION,
    BenchPreset,
    check_against_baseline,
    format_baseline_delta,
    format_bench_report,
    load_report,
    run_bench,
    write_report,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchPreset",
    "check_against_baseline",
    "format_baseline_delta",
    "format_bench_report",
    "load_report",
    "run_bench",
    "write_report",
]

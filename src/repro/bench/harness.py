"""The ``repro bench`` harness: time the kernel, write ``BENCH_kernel.json``.

Three subsystems are measured, each with best-of-``repeats`` wall-clock
timing (the minimum is robust against scheduler noise):

* **kernel** -- ``simulate()`` throughput in trace ops/sec for one workload
  under the three controller kinds (conventional ``sc``, selective
  ``invisi_sc``, continuous ``invisi_cont``), using the selected engine
  (``fast`` by default; ``reference`` times the retained pre-refactor
  execution path so before/after comparisons need no git checkout).
* **campaign** -- the campaign executor over a small (config x workload)
  sweep, cold (every cell simulated) and cached (every cell a disk hit).
  The executor is production plumbing and always runs the default fast
  kernel regardless of ``--engine``; ``preset.engine`` describes the
  kernel section only.
* **scenario** -- phase splicing: building one phase-structured scenario
  trace, which exercises the scenario engine and per-phase RNG streams
  (no simulation, so no engine applies).
* **geometries** -- the ``sc`` kernel at each of the preset's machine
  sizes (core counts resolved to tori by the geometry resolver), so a
  regression that only bites at scale -- e.g. in the interconnect or the
  directory -- cannot hide behind the small fixed-size kernel numbers.
* **studies** -- the unified all-studies campaign plan (every registered
  study's grid, deduplicated by :func:`repro.studies.compile_plan`, with
  the scaling study narrowed to the preset's ``geometry_cores``),
  executed cold (every unique cell simulated) and then cached (every
  cell a disk hit), so a regression in the study/plan/cache plumbing
  shows up even when the kernel itself is healthy.
* **batch** -- the vectorized batch tier on its showcase cell: the ``sc``
  kernel at one core on a quiescence-heavy cache-resident workload
  (:data:`BATCH_WORKLOAD`), timed at each lane width in
  :data:`BATCH_WIDTHS` under both ``fast`` and ``batch`` engines (byte
  identity re-asserted on every pair), plus the all-studies plan
  executed cold under ``engine="batch"`` -- the hostile direction, where
  the per-reason decline cooldowns must keep batch within noise of fast.

* **batch_multicore** -- the batch tier's coherence-epoch path: one
  contended-but-winnable 4-core ``sc`` cell (:data:`BATCH_MC_WORKLOAD`)
  timed under ``fast`` and ``batch`` with byte identity asserted, plus
  the per-reason ``batch.decline.*`` / ``batch.optout.*`` counters and
  bulk-retired op count from a recorded (untimed) batch run.  The
  speedup is gated within the fresh report at
  :data:`BATCH_MC_SPEEDUP_FLOOR` -- a ratio of two timings from the same
  process, so it survives slow CI machines that absolute ops/sec gates
  would trip on.

* **distributed** -- the work-queue tier: one study plan drained through
  a shared sqlite backend by one worker process, then by two cooperating
  worker processes (lease-claiming over the same file), with the two
  drained stores checked for byte identity.  This times the coordination
  overhead and the real two-worker speedup; the identity flag is what
  the baseline check gates (wall-clock parallel speedup is too
  machine-dependent to gate).

* **telemetry** -- the ``sc`` kernel with no recorder, with a (disabled)
  :class:`~repro.obs.NullRecorder` attached, and with a live
  :class:`~repro.obs.TraceRecorder`.  The first two must agree: the
  telemetry hooks are behind a single ``is not None`` test per site, so
  attaching a disabled recorder must cost nothing measurable.
  ``overhead_frac`` (null-recorder vs. off, from best-of minima) is gated
  by :func:`check_against_baseline` at ``telemetry_tolerance`` (2% by
  default); the traced numbers are informative only.

Output schema (``BENCH_kernel.json``, version 7; v6 lacked the
``batch_multicore`` section, v5 lacked ``distributed``, v4 lacked
``telemetry``, v3 lacked ``batch`` and the ``batch_ops_per_thread``
preset field, v2 lacked ``studies``, v1 also lacked ``geometries`` and
``geometry_cores``)::

    {
      "schema": 5,
      "preset": {"name", "workload", "num_cores", "ops_per_thread",
                 "seed", "repeats", "engine", "geometry_cores",
                 "batch_ops_per_thread"},
      "kernels": [{"config", "total_ops", "runtime_cycles",
                   "events_processed", "best_seconds", "ops_per_sec"}],
      "campaign": {"cells", "cold_seconds", "cached_seconds",
                   "cached_speedup"},
      "scenario": {"name", "num_threads", "ops_per_thread",
                   "best_seconds", "ops_per_sec"},
      "geometries": [{"num_cores", "mesh", "total_ops",
                      "best_seconds", "ops_per_sec"}],
      "studies": {"studies", "cells", "unique_jobs", "cold_seconds",
                  "cached_seconds", "cached_speedup"},
      "batch": {"workload", "config", "num_cores", "ops_per_thread",
                "widths": [{"width", "total_ops", "identical",
                            "fast_seconds", "fast_ops_per_sec",
                            "batch_seconds", "batch_ops_per_sec",
                            "speedup"}],
                "studies_cold_seconds"},
      "batch_multicore": {"workload", "config", "num_cores",
                          "ops_per_thread", "total_ops", "identical",
                          "fast_seconds", "fast_ops_per_sec",
                          "batch_seconds", "batch_ops_per_sec",
                          "speedup", "bulk_retired_ops",
                          "declines": {reason: count},
                          "optouts": {reason: count}},
      "distributed": {"study", "cells", "one_worker_seconds",
                      "two_worker_seconds", "speedup", "identical",
                      "one_worker_simulated", "two_worker_simulated"},
      "telemetry": {"config", "total_ops", "off_seconds",
                    "off_ops_per_sec", "null_seconds",
                    "null_ops_per_sec", "overhead_frac",
                    "traced_seconds", "traced_ops_per_sec"}
    }

``ops_per_sec`` is trace operations simulated (or spliced) per second of
wall clock.  :func:`check_against_baseline` compares the per-kernel,
per-geometry, and per-batch-width ``ops_per_sec`` of a fresh report
against a committed baseline file and reports regressions beyond a
tolerance; the CI ``bench`` job fails on it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Tuple

from ..campaign import CampaignExecutor, Job, ResultCache
from ..engine.batch.lanes import simulate_batch
from ..engine.simulator import simulate
from ..experiments.common import ExperimentSettings, make_config
from ..obs import NullRecorder, TraceRecorder
from ..workloads.registry import build_trace
from ..workloads.spec import WorkloadSpec

#: bump on any change to the report layout so stale baselines are rejected.
BENCH_SCHEMA_VERSION = 7

#: study drained by the distributed section (six configs, one workload).
DISTRIBUTED_STUDY = "figure8"

#: configuration short-names covering the three controller kinds.
KERNEL_CONFIGS = ("sc", "invisi_sc", "invisi_cont")

#: scenario used for the splicing benchmark.
SCENARIO_NAME = "false-sharing-storm"

#: lane widths timed by the batch section.
BATCH_WIDTHS = (1, 3, 8)

#: The batch section's showcase workload: long compute/hit runs with a
#: cache-resident footprint, so most of the trace retires as vectorized
#: quiescent stretches.  The preset workloads deliberately stress misses
#: and contention; this one represents the quiescence-heavy cells the
#: batch tier exists for.
BATCH_WORKLOAD = WorkloadSpec(
    name="quiescent",
    description="quiescence-heavy cache-resident kernel (batch showcase)",
    load_fraction=0.45, store_fraction=0.15, compute_fraction=0.40,
    compute_run_mean=2.0,
    sync_interval=1_000_000.0, critical_section_len=1.0,
    num_locks=4, blocks_per_lock=1, lock_affinity=1.0,
    private_blocks=192, shared_blocks=256, shared_fraction=0.02,
    locality=0.995, reuse_window=64,
    store_burst_prob=0.0, migratory_fraction=0.0,
    lockfree_atomic_prob=0.0,
)

#: cores of the multicore batch showcase cell, independent of the preset's
#: kernel-section core count so small and default presets exercise the
#: same cross-core epoch geometry.
BATCH_MC_CORES = 4

#: minimum fast/batch speedup the multicore cell must show.  Gated within
#: the fresh report (a ratio of two same-process timings), so it holds on
#: slow CI machines where absolute ops/sec floors would be meaningless.
BATCH_MC_SPEEDUP_FLOOR = 1.5

#: The multicore batch showcase: the quiescent kernel shape plus a small
#: genuinely shared region, so the four cores exchange real coherence
#: traffic (the epoch tracker's horizon declines are non-zero) while each
#: still runs long cache-resident stretches between conflicts --
#: contended enough to exercise the cross-core machinery, winnable enough
#: that bulk retirement dominates.
BATCH_MC_WORKLOAD = WorkloadSpec(
    name="quiescent-mc",
    description="contended-but-winnable multicore cell (epoch showcase)",
    load_fraction=0.45, store_fraction=0.15, compute_fraction=0.40,
    compute_run_mean=2.0,
    sync_interval=1_000_000.0, critical_section_len=1.0,
    num_locks=4, blocks_per_lock=1, lock_affinity=1.0,
    private_blocks=192, shared_blocks=64, shared_fraction=0.02,
    locality=0.995, reuse_window=64,
    store_burst_prob=0.0, migratory_fraction=0.0,
    lockfree_atomic_prob=0.0,
)


@dataclass(frozen=True)
class BenchPreset:
    """Scale of one bench run."""

    name: str = "default"
    workload: str = "apache"
    num_cores: int = 4
    ops_per_thread: int = 2000
    seed: int = 3
    repeats: int = 3
    engine: str = "fast"
    #: machine sizes timed by the per-geometry section.
    geometry_cores: Tuple[int, ...] = (4, 8, 16)
    #: ops per thread for the batch section's showcase cell (longer than
    #: the kernel section so the lane's static passes amortize the way
    #: they do in real campaigns).
    batch_ops_per_thread: int = 16000

    @classmethod
    def small(cls, engine: str = "fast") -> "BenchPreset":
        """CI-sized preset: fast enough for a smoke job."""
        return cls(name="small", num_cores=2, ops_per_thread=400, repeats=2,
                   engine=engine, geometry_cores=(2, 4),
                   batch_ops_per_thread=4000)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "workload": self.workload,
            "num_cores": self.num_cores,
            "ops_per_thread": self.ops_per_thread,
            "seed": self.seed,
            "repeats": self.repeats,
            "engine": self.engine,
            "geometry_cores": list(self.geometry_cores),
            "batch_ops_per_thread": self.batch_ops_per_thread,
        }


def _best_of(repeats: int, fn: Callable[[], Any]) -> Tuple[float, Any]:
    """Minimum wall-clock over ``repeats`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _bench_kernels(preset: BenchPreset,
                   settings: ExperimentSettings) -> List[Dict[str, Any]]:
    trace = build_trace(preset.workload, num_threads=preset.num_cores,
                        ops_per_thread=preset.ops_per_thread, seed=preset.seed)
    total_ops = trace.total_ops()
    kernels: List[Dict[str, Any]] = []
    for name in KERNEL_CONFIGS:
        config = make_config(name, settings)
        best, result = _best_of(
            preset.repeats, lambda: simulate(config, trace, engine=preset.engine))
        kernels.append({
            "config": name,
            "total_ops": total_ops,
            "runtime_cycles": result.runtime,
            "events_processed": result.events_processed,
            "best_seconds": best,
            "ops_per_sec": total_ops / best if best > 0 else 0.0,
        })
    return kernels


def _bench_campaign(preset: BenchPreset, settings: ExperimentSettings,
                    cache_dir: Path) -> Dict[str, Any]:
    cells = [Job(name, preset.workload, preset.seed)
             for name in ("sc", "invisi_sc")]
    cold_executor = CampaignExecutor(settings, jobs=1)
    cold, _ = _best_of(preset.repeats, lambda: cold_executor.run(cells))
    cached_executor = CampaignExecutor(settings, jobs=1,
                                       cache=ResultCache(cache_dir))
    cached_executor.run(cells)  # warm the cache
    cached, _ = _best_of(preset.repeats, lambda: cached_executor.run(cells))
    return {
        "cells": len(cells),
        "cold_seconds": cold,
        "cached_seconds": cached,
        "cached_speedup": cold / cached if cached > 0 else 0.0,
    }


def _bench_geometries(preset: BenchPreset) -> List[Dict[str, Any]]:
    """Time the ``sc`` kernel at each of the preset's machine sizes."""
    geometries: List[Dict[str, Any]] = []
    for num_cores in preset.geometry_cores:
        settings = ExperimentSettings(
            num_cores=num_cores, ops_per_thread=preset.ops_per_thread,
            seeds=(preset.seed,), workloads=(preset.workload,),
            warmup_fraction=0.0)
        config = make_config("sc", settings)
        trace = build_trace(preset.workload, num_threads=num_cores,
                            ops_per_thread=preset.ops_per_thread,
                            seed=preset.seed)
        total_ops = trace.total_ops()
        best, _ = _best_of(
            preset.repeats, lambda: simulate(config, trace, engine=preset.engine))
        geometries.append({
            "num_cores": num_cores,
            "mesh": f"{config.interconnect.mesh_width}x"
                    f"{config.interconnect.mesh_height}",
            "total_ops": total_ops,
            "best_seconds": best,
            "ops_per_sec": total_ops / best if best > 0 else 0.0,
        })
    return geometries


def _bench_studies(preset: BenchPreset, settings: ExperimentSettings,
                   cache_dir: Path) -> Dict[str, Any]:
    """Time the unified all-studies plan, cold then fully cached.

    The scaling study is narrowed to the preset's ``geometry_cores`` so the
    section scales with the preset like the geometry section does.  The
    cached measurement uses a fresh runner per repeat, so every cell is a
    disk hit rather than an in-process memo hit.
    """
    from ..experiments.scaling import scaling_study
    from ..studies import DEFAULT_STUDY_REGISTRY, compile_plan

    specs = [scaling_study(core_counts=preset.geometry_cores)
             if spec.name == "scaling" else spec
             for spec in DEFAULT_STUDY_REGISTRY.specs()]
    plan = compile_plan(specs, settings)
    cache = ResultCache(Path(cache_dir) / "studies-cache")

    start = time.perf_counter()
    plan.execute(plan.runner(jobs=1, cache=cache))
    cold = time.perf_counter() - start
    cached, _ = _best_of(
        preset.repeats,
        lambda: plan.execute(plan.runner(jobs=1, cache=cache)))
    return {
        "studies": len(specs),
        "cells": plan.total_cells,
        "unique_jobs": len(plan.unique_cells),
        "cold_seconds": cold,
        "cached_seconds": cached,
        "cached_speedup": cold / cached if cached > 0 else 0.0,
    }


def _bench_batch(preset: BenchPreset) -> Dict[str, Any]:
    """Time the batch tier against the fast kernel on its showcase cell.

    One ``sc`` core running :data:`BATCH_WORKLOAD`: quiescent stretches
    dominate, so this is where the vectorized tier's speedup lives (its
    hostile direction -- dense multicore event traffic -- is covered by
    ``studies_cold_seconds``, which runs the whole heterogeneous study
    plan under ``engine="batch"``; the per-reason decline cooldowns keep
    that within noise of fast).  Byte identity is asserted on every timed
    pair, so the
    bench doubles as an end-to-end differential check at real scale.
    """
    ops = preset.batch_ops_per_thread
    settings = ExperimentSettings(
        num_cores=1, ops_per_thread=ops, seeds=(preset.seed,),
        warmup_fraction=0.2)
    config = make_config("sc", settings)
    traces = [build_trace(BATCH_WORKLOAD, num_threads=1, ops_per_thread=ops,
                          seed=preset.seed + i)
              for i in range(max(BATCH_WIDTHS))]
    for trace in traces:
        # Warm the compile/array caches: both engines reuse them, and the
        # section times steady-state simulation, not trace building.
        trace[0].compiled().arrays()

    widths: List[Dict[str, Any]] = []
    for width in BATCH_WIDTHS:
        lane = traces[:width]
        fast_best, fast_results = _best_of(
            preset.repeats,
            lambda: [simulate(config, trace, warmup_fraction=0.2,
                              engine="fast") for trace in lane])
        batch_best, batch_results = _best_of(
            preset.repeats,
            lambda: simulate_batch(config, lane, warmup_fraction=0.2))
        identical = all(a.to_json() == b.to_json()
                        for a, b in zip(fast_results, batch_results))
        total_ops = width * ops
        widths.append({
            "width": width,
            "total_ops": total_ops,
            "identical": identical,
            "fast_seconds": fast_best,
            "fast_ops_per_sec": total_ops / fast_best if fast_best > 0 else 0.0,
            "batch_seconds": batch_best,
            "batch_ops_per_sec": total_ops / batch_best
            if batch_best > 0 else 0.0,
            "speedup": fast_best / batch_best if batch_best > 0 else 0.0,
        })

    # The hostile direction: the full heterogeneous study plan (multicore,
    # contention-heavy cells) executed cold with the batch engine.
    from ..experiments.scaling import scaling_study
    from ..studies import DEFAULT_STUDY_REGISTRY, compile_plan

    plan_settings = ExperimentSettings(
        num_cores=preset.num_cores, ops_per_thread=preset.ops_per_thread,
        seeds=(preset.seed,), workloads=(preset.workload,),
        warmup_fraction=0.0)
    specs = [scaling_study(core_counts=preset.geometry_cores)
             if spec.name == "scaling" else spec
             for spec in DEFAULT_STUDY_REGISTRY.specs()]
    plan = compile_plan(specs, plan_settings)
    start = time.perf_counter()
    plan.execute(plan.runner(jobs=1, cache=None, engine="batch"))
    studies_cold = time.perf_counter() - start

    return {
        "workload": BATCH_WORKLOAD.name,
        "config": "sc",
        "num_cores": 1,
        "ops_per_thread": ops,
        "widths": widths,
        "studies_cold_seconds": studies_cold,
    }


def _bench_batch_multicore(preset: BenchPreset) -> Dict[str, Any]:
    """Time the coherence-epoch path on one contended 4-core cell.

    Fast-vs-batch best-of pair on :data:`BATCH_MC_WORKLOAD` at
    :data:`BATCH_MC_CORES` cores, byte identity asserted on the timed
    results.  A separate untimed batch run with a live recorder collects
    the per-reason ``batch.decline.*`` / ``batch.optout.*`` counters and
    the bulk-retired op count, so a regression that silently stops
    multicore bulk retirement (speedup drifting toward 1x) is
    diagnosable straight from the report.
    """
    ops = preset.batch_ops_per_thread
    settings = ExperimentSettings(
        num_cores=BATCH_MC_CORES, ops_per_thread=ops, seeds=(preset.seed,),
        warmup_fraction=0.2)
    config = make_config("sc", settings)
    trace = build_trace(BATCH_MC_WORKLOAD, num_threads=BATCH_MC_CORES,
                        ops_per_thread=ops, seed=preset.seed)
    for thread in range(BATCH_MC_CORES):
        # Warm the compile/array caches (see _bench_batch).
        trace[thread].compiled().arrays()
    fast_best, fast_result = _best_of(
        preset.repeats,
        lambda: simulate(config, trace, warmup_fraction=0.2, engine="fast"))
    batch_best, batch_result = _best_of(
        preset.repeats,
        lambda: simulate(config, trace, warmup_fraction=0.2, engine="batch"))
    # Counters from one dedicated recorded run: the timed runs stay
    # recorder-free, and best-of repeats would sum counters across runs.
    recorder = TraceRecorder()
    simulate(config, trace, warmup_fraction=0.2, engine="batch",
             recorder=recorder)
    declines = {name.split(".", 2)[2]: count
                for name, count in sorted(recorder.counters.items())
                if name.startswith("batch.decline.")}
    optouts = {name.split(".", 2)[2]: count
               for name, count in sorted(recorder.counters.items())
               if name.startswith("batch.optout.")}
    total_ops = trace.total_ops()
    return {
        "workload": BATCH_MC_WORKLOAD.name,
        "config": "sc",
        "num_cores": BATCH_MC_CORES,
        "ops_per_thread": ops,
        "total_ops": total_ops,
        "identical": fast_result.to_json() == batch_result.to_json(),
        "fast_seconds": fast_best,
        "fast_ops_per_sec": total_ops / fast_best if fast_best > 0 else 0.0,
        "batch_seconds": batch_best,
        "batch_ops_per_sec": total_ops / batch_best
        if batch_best > 0 else 0.0,
        "speedup": fast_best / batch_best if batch_best > 0 else 0.0,
        "bulk_retired_ops": recorder.counters.get("batch.retired", 0),
        "declines": declines,
        "optouts": optouts,
    }


def _distributed_drain(task: Tuple[ExperimentSettings, str, str]) -> int:
    """Drain :data:`DISTRIBUTED_STUDY` through a shared backend.

    Runs in a worker subprocess: recompiles the plan from the study name
    (exactly what ``repro worker`` does), opens the shared sqlite URL,
    and drains whatever cells its peers have not claimed.  Returns the
    number of cells this worker simulated.
    """
    settings, url, worker_id = task
    from ..api import compile_study_plan, open_cache
    from ..campaign.queue import QueueWorker

    plan = compile_study_plan([DISTRIBUTED_STUDY], settings)
    worker = QueueWorker(plan, open_cache(url), worker_id=worker_id,
                         poll_interval=0.01, max_wait=120.0)
    return worker.drain().simulated


def _sqlite_entries(path: Path) -> Dict[str, str]:
    """Every stored (key, body) row of a sqlite backend file."""
    import sqlite3

    conn = sqlite3.connect(path)
    try:
        return dict(conn.execute("SELECT key, body FROM entries"))
    finally:
        conn.close()


def _bench_distributed(preset: BenchPreset, settings: ExperimentSettings,
                       cache_dir: Path) -> Dict[str, Any]:
    """Time a 1-worker vs 2-worker drain of one plan over shared sqlite.

    Each drain starts from a fresh backend file, so both timings are
    fully cold and include the lease-claim round trips.  The two-worker
    drain uses two real processes (the GIL would serialize threads), and
    the two drained stores are then compared row for row: determinism
    says they must be byte-identical no matter how the workers raced.
    That ``identical`` flag -- plus the claim-partition invariant that
    the two workers' simulated counts sum to the plan's unique cells --
    is what :func:`check_against_baseline` gates; the parallel speedup is
    reported but not gated, since it depends on free cores.
    """
    import multiprocessing

    from ..api import compile_study_plan

    plan = compile_study_plan([DISTRIBUTED_STUDY], settings)
    cells = len(plan.unique_cells)
    one_path = Path(cache_dir) / "distributed-one.sqlite"
    two_path = Path(cache_dir) / "distributed-two.sqlite"

    with multiprocessing.Pool(1) as pool:
        start = time.perf_counter()
        one_counts = pool.map(_distributed_drain,
                              [(settings, f"sqlite://{one_path}",
                                "bench-solo")])
        one_seconds = time.perf_counter() - start
    with multiprocessing.Pool(2) as pool:
        start = time.perf_counter()
        two_counts = pool.map(_distributed_drain,
                              [(settings, f"sqlite://{two_path}",
                                f"bench-w{i}") for i in range(2)])
        two_seconds = time.perf_counter() - start

    return {
        "study": DISTRIBUTED_STUDY,
        "cells": cells,
        "one_worker_simulated": one_counts[0],
        "two_worker_simulated": two_counts,
        "one_worker_seconds": one_seconds,
        "two_worker_seconds": two_seconds,
        "speedup": one_seconds / two_seconds if two_seconds > 0 else 0.0,
        "identical": _sqlite_entries(one_path) == _sqlite_entries(two_path),
    }


def _bench_scenario(preset: BenchPreset) -> Dict[str, Any]:
    best, trace = _best_of(
        preset.repeats,
        lambda: build_trace(SCENARIO_NAME, num_threads=preset.num_cores,
                            ops_per_thread=preset.ops_per_thread,
                            seed=preset.seed))
    total_ops = trace.total_ops()
    return {
        "name": SCENARIO_NAME,
        "num_threads": preset.num_cores,
        "ops_per_thread": preset.ops_per_thread,
        "best_seconds": best,
        "ops_per_sec": total_ops / best if best > 0 else 0.0,
    }


def _bench_telemetry(preset: BenchPreset,
                     settings: ExperimentSettings) -> Dict[str, Any]:
    """Measure the cost of the telemetry hooks on the hot path.

    Three timings of the same ``sc`` cell: recorder off (``None``), a
    disabled :class:`NullRecorder` attached, and a live
    :class:`TraceRecorder`.  The off and null numbers must coincide:
    every hook site collapses to one ``is not None`` test when telemetry
    is disabled.

    ``overhead_frac`` -- the number the CI gate holds under
    ``telemetry_tolerance`` -- is estimated to survive noisy shared
    machines, where a single off-vs-null ratio jitters by several percent
    on millisecond-scale runs.  The section runs at a floor of 2000
    ops/thread regardless of the preset, and takes the *minimum* over
    three independent blocks of the per-block ratio of interleaved
    best-of minima: scheduler noise only ever inflates one block's ratio,
    while a real per-event cost inflates every block, so the minimum
    rejects the former and cannot hide the latter.
    """
    ops = max(2000, preset.ops_per_thread)
    tele_settings = settings if ops == preset.ops_per_thread \
        else ExperimentSettings(
            num_cores=preset.num_cores, ops_per_thread=ops,
            seeds=(preset.seed,), workloads=(preset.workload,),
            warmup_fraction=0.0)
    trace = build_trace(preset.workload, num_threads=preset.num_cores,
                        ops_per_thread=ops, seed=preset.seed)
    total_ops = trace.total_ops()
    config = make_config("sc", tele_settings)
    per_block = max(3, preset.repeats)

    off_best = null_best = float("inf")
    overhead = float("inf")
    for _ in range(3):
        block_off = block_null = float("inf")
        for _ in range(per_block):
            start = time.perf_counter()
            simulate(config, trace, engine=preset.engine)
            block_off = min(block_off, time.perf_counter() - start)
            start = time.perf_counter()
            simulate(config, trace, engine=preset.engine,
                     recorder=NullRecorder())
            block_null = min(block_null, time.perf_counter() - start)
        if block_off > 0:
            overhead = min(overhead, (block_null - block_off) / block_off)
        off_best = min(off_best, block_off)
        null_best = min(null_best, block_null)
    traced_best, _ = _best_of(
        per_block, lambda: simulate(config, trace, engine=preset.engine,
                                    recorder=TraceRecorder()))
    return {
        "config": "sc",
        "total_ops": total_ops,
        "off_seconds": off_best,
        "off_ops_per_sec": total_ops / off_best if off_best > 0 else 0.0,
        "null_seconds": null_best,
        "null_ops_per_sec": total_ops / null_best if null_best > 0 else 0.0,
        "overhead_frac": overhead if overhead != float("inf") else 0.0,
        "traced_seconds": traced_best,
        "traced_ops_per_sec": total_ops / traced_best
        if traced_best > 0 else 0.0,
    }


def run_bench(preset: BenchPreset, cache_dir: Path) -> Dict[str, Any]:
    """Run the full bench suite; returns the report (see module docstring).

    ``cache_dir`` holds the throwaway result cache used by the campaign
    cached-path measurement; callers normally pass a temporary directory.
    """
    settings = ExperimentSettings(
        num_cores=preset.num_cores, ops_per_thread=preset.ops_per_thread,
        seeds=(preset.seed,), workloads=(preset.workload,),
        warmup_fraction=0.0)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "preset": preset.to_dict(),
        "kernels": _bench_kernels(preset, settings),
        "campaign": _bench_campaign(preset, settings, cache_dir),
        "scenario": _bench_scenario(preset),
        "geometries": _bench_geometries(preset),
        "studies": _bench_studies(preset, settings, cache_dir),
        "batch": _bench_batch(preset),
        "batch_multicore": _bench_batch_multicore(preset),
        "distributed": _bench_distributed(preset, settings, cache_dir),
        "telemetry": _bench_telemetry(preset, settings),
    }


def format_bench_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a bench report."""
    preset = report["preset"]
    lines = [
        f"repro bench ({preset['name']} preset, engine={preset['engine']}): "
        f"{preset['workload']} x {preset['num_cores']} cores x "
        f"{preset['ops_per_thread']} ops/thread, best of {preset['repeats']}",
    ]
    for kernel in report["kernels"]:
        lines.append(
            f"  kernel {kernel['config']:<12} {kernel['ops_per_sec']:>12,.0f} ops/s "
            f"({kernel['best_seconds'] * 1000:.1f} ms, "
            f"{kernel['events_processed']} events)")
    campaign = report["campaign"]
    lines.append(
        f"  campaign {campaign['cells']} cells: cold "
        f"{campaign['cold_seconds'] * 1000:.1f} ms, cached "
        f"{campaign['cached_seconds'] * 1000:.1f} ms "
        f"({campaign['cached_speedup']:.1f}x)")
    scenario = report["scenario"]
    lines.append(
        f"  scenario {scenario['name']}: splice "
        f"{scenario['ops_per_sec']:>12,.0f} ops/s "
        f"({scenario['best_seconds'] * 1000:.1f} ms)")
    for geometry in report.get("geometries", ()):
        lines.append(
            f"  geometry {geometry['num_cores']:>3} cores "
            f"({geometry['mesh']:>3} torus) {geometry['ops_per_sec']:>12,.0f} "
            f"ops/s ({geometry['best_seconds'] * 1000:.1f} ms)")
    studies = report.get("studies")
    if studies:
        lines.append(
            f"  studies plan {studies['studies']} studies, "
            f"{studies['cells']} cells -> {studies['unique_jobs']} unique: "
            f"cold {studies['cold_seconds'] * 1000:.1f} ms, cached "
            f"{studies['cached_seconds'] * 1000:.1f} ms "
            f"({studies['cached_speedup']:.1f}x)")
    batch = report.get("batch")
    if batch:
        for width in batch["widths"]:
            check = "" if width["identical"] else "  IDENTITY MISMATCH"
            lines.append(
                f"  batch width {width['width']:>2} "
                f"({batch['config']} 1-core {batch['workload']}): "
                f"{width['batch_ops_per_sec']:>12,.0f} ops/s vs fast "
                f"{width['fast_ops_per_sec']:>12,.0f} "
                f"({width['speedup']:.2f}x){check}")
        lines.append(
            f"  batch all-studies cold: "
            f"{batch['studies_cold_seconds'] * 1000:.1f} ms")
    multicore = report.get("batch_multicore")
    if multicore:
        check = "" if multicore["identical"] else "  IDENTITY MISMATCH"
        declined = sum(multicore["declines"].values())
        lines.append(
            f"  batch {multicore['num_cores']}-core {multicore['workload']}: "
            f"{multicore['batch_ops_per_sec']:>12,.0f} ops/s vs fast "
            f"{multicore['fast_ops_per_sec']:>12,.0f} "
            f"({multicore['speedup']:.2f}x, "
            f"{multicore['bulk_retired_ops']} bulk ops, "
            f"{declined} declines){check}")
    distributed = report.get("distributed")
    if distributed:
        check = "" if distributed["identical"] else "  IDENTITY MISMATCH"
        split = "+".join(str(n) for n in distributed["two_worker_simulated"])
        lines.append(
            f"  distributed {distributed['study']} "
            f"({distributed['cells']} cells, sqlite queue): 1 worker "
            f"{distributed['one_worker_seconds'] * 1000:.1f} ms, 2 workers "
            f"{distributed['two_worker_seconds'] * 1000:.1f} ms "
            f"({distributed['speedup']:.2f}x, split {split}){check}")
    telemetry = report.get("telemetry")
    if telemetry:
        lines.append(
            f"  telemetry off {telemetry['off_ops_per_sec']:>12,.0f} ops/s, "
            f"null recorder {telemetry['null_ops_per_sec']:>12,.0f} "
            f"({telemetry['overhead_frac']:+.1%} overhead), traced "
            f"{telemetry['traced_ops_per_sec']:>12,.0f}")
    return "\n".join(lines)


def format_baseline_delta(report: Dict[str, Any],
                          baseline: Dict[str, Any]) -> str:
    """Per-section delta table of a report vs. a baseline.

    Printed by ``repro bench --check`` even when the check passes, so
    every CI run shows where throughput moved, not just whether it fell
    off a cliff.  Positive deltas are speedups.
    """
    rows: List[Tuple[str, float, float]] = []
    base_kernels = {k["config"]: k for k in baseline.get("kernels", [])}
    for kernel in report.get("kernels", []):
        base = base_kernels.get(kernel["config"])
        if base:
            rows.append((f"kernel {kernel['config']}",
                         kernel["ops_per_sec"], base["ops_per_sec"]))
    scenario, base_scenario = report.get("scenario"), baseline.get("scenario")
    if scenario and base_scenario:
        rows.append(("scenario splice", scenario["ops_per_sec"],
                     base_scenario["ops_per_sec"]))
    base_geometries = {g["num_cores"]: g
                       for g in baseline.get("geometries", [])}
    for geometry in report.get("geometries", []):
        base = base_geometries.get(geometry["num_cores"])
        if base:
            rows.append((f"geometry {geometry['num_cores']} cores",
                         geometry["ops_per_sec"], base["ops_per_sec"]))
    base_widths = {w["width"]: w for w in
                   baseline.get("batch", {}).get("widths", [])}
    for width in report.get("batch", {}).get("widths", []):
        base = base_widths.get(width["width"])
        if base:
            rows.append((f"batch width {width['width']}",
                         width["batch_ops_per_sec"],
                         base["batch_ops_per_sec"]))
    multicore = report.get("batch_multicore")
    base_multicore = baseline.get("batch_multicore")
    if multicore and base_multicore:
        rows.append((f"batch {multicore['num_cores']}-core",
                     multicore["batch_ops_per_sec"],
                     base_multicore["batch_ops_per_sec"]))
    telemetry = report.get("telemetry")
    base_telemetry = baseline.get("telemetry")
    if telemetry and base_telemetry:
        rows.append(("telemetry null recorder",
                     telemetry["null_ops_per_sec"],
                     base_telemetry["null_ops_per_sec"]))

    lines = [f"  {'section':<24} {'current':>14} {'baseline':>14} {'delta':>8}"]
    for label, current, base in rows:
        delta = (current - base) / base if base > 0 else 0.0
        lines.append(f"  {label:<24} {current:>14,.0f} {base:>14,.0f} "
                     f"{delta:>+8.1%}")
    if telemetry:
        base_frac = (f"{base_telemetry['overhead_frac']:>+14.2%}"
                     if base_telemetry else f"{'n/a':>14}")
        lines.append(f"  {'telemetry overhead':<24} "
                     f"{telemetry['overhead_frac']:>+14.2%} {base_frac}")
    return "\n".join(lines)


def check_against_baseline(report: Dict[str, Any], baseline: Dict[str, Any],
                           tolerance: float = 0.30,
                           telemetry_tolerance: float = 0.02) -> List[str]:
    """Compare kernel throughput against a baseline report.

    Returns a list of human-readable regression messages; empty means the
    report is within ``tolerance`` (fractional allowed slowdown) of the
    baseline on every kernel.  Schema mismatches and preset mismatches
    (engine, workload, scale, seed) are reported as failures rather than
    silently compared.

    The telemetry section is gated within the fresh report itself: its
    ``overhead_frac`` (disabled-recorder run vs. recorder-off run, both
    best-of minima from the same process) must not exceed
    ``telemetry_tolerance``.  Comparing within one run rather than across
    runs keeps the 2% gate meaningful on noisy CI machines.
    """
    failures: List[str] = []
    if baseline.get("schema") != report.get("schema"):
        return [f"baseline schema {baseline.get('schema')!r} does not match "
                f"report schema {report.get('schema')!r}"]
    # Throughput numbers are only comparable at the same scale and engine.
    report_preset = report.get("preset", {})
    baseline_preset = baseline.get("preset", {})
    for field in ("engine", "workload", "num_cores", "ops_per_thread", "seed",
                  "geometry_cores", "batch_ops_per_thread"):
        if report_preset.get(field) != baseline_preset.get(field):
            failures.append(
                f"preset mismatch on {field!r}: report "
                f"{report_preset.get(field)!r} vs baseline "
                f"{baseline_preset.get(field)!r} (throughput not comparable)")
    if failures:
        return failures

    def compare(section: str, fresh: Dict[str, Any], base: Dict[str, Any],
                label: str) -> None:
        floor = base["ops_per_sec"] * (1.0 - tolerance)
        if fresh["ops_per_sec"] < floor:
            failures.append(
                f"{section} {label}: {fresh['ops_per_sec']:,.0f} ops/s is "
                f"below {floor:,.0f} (baseline {base['ops_per_sec']:,.0f} "
                f"- {tolerance:.0%} tolerance)")

    base_kernels = {k["config"]: k for k in baseline.get("kernels", [])}
    for kernel in report["kernels"]:
        name = kernel["config"]
        base = base_kernels.get(name)
        if base is None:
            failures.append(f"kernel {name}: missing from baseline")
            continue
        compare("kernel", kernel, base, name)
    base_geometries = {g["num_cores"]: g for g in baseline.get("geometries", [])}
    for geometry in report.get("geometries", []):
        cores = geometry["num_cores"]
        base = base_geometries.get(cores)
        if base is None:
            failures.append(f"geometry {cores} cores: missing from baseline")
            continue
        compare("geometry", geometry, base, f"{cores} cores")
    base_widths = {w["width"]: w for w in
                   baseline.get("batch", {}).get("widths", [])}
    for width in report.get("batch", {}).get("widths", []):
        if not width["identical"]:
            failures.append(
                f"batch width {width['width']}: batch and fast results "
                f"are not byte-identical")
        base = base_widths.get(width["width"])
        if base is None:
            failures.append(
                f"batch width {width['width']}: missing from baseline")
            continue
        floor = base["batch_ops_per_sec"] * (1.0 - tolerance)
        if width["batch_ops_per_sec"] < floor:
            failures.append(
                f"batch width {width['width']}: "
                f"{width['batch_ops_per_sec']:,.0f} ops/s is below "
                f"{floor:,.0f} (baseline {base['batch_ops_per_sec']:,.0f} "
                f"- {tolerance:.0%} tolerance)")
    multicore = report.get("batch_multicore")
    if multicore is None:
        failures.append("batch_multicore section missing from report")
    else:
        # Gated within the fresh report: identity is determinism, and the
        # fast/batch speedup is a same-process timing ratio, so both gates
        # are meaningful regardless of how slow the machine is.
        if not multicore["identical"]:
            failures.append(
                f"batch_multicore: batch and fast results on "
                f"{multicore['workload']} at {multicore['num_cores']} cores "
                f"are not byte-identical")
        if multicore["speedup"] < BATCH_MC_SPEEDUP_FLOOR:
            failures.append(
                f"batch_multicore: speedup {multicore['speedup']:.2f}x is "
                f"below the {BATCH_MC_SPEEDUP_FLOOR:.1f}x floor (fast "
                f"{multicore['fast_ops_per_sec']:,.0f} ops/s vs batch "
                f"{multicore['batch_ops_per_sec']:,.0f})")
        if multicore["bulk_retired_ops"] <= 0:
            failures.append(
                "batch_multicore: no ops were bulk-retired (the epoch "
                "path never fired)")
    distributed = report.get("distributed")
    if distributed is None:
        failures.append("distributed section missing from report")
    else:
        # Gated within the fresh report (wall-clock parallel speedup is
        # machine-dependent): the two drained stores must be
        # byte-identical, and the lease protocol must have partitioned
        # the plan -- every cell simulated by exactly one worker.
        if not distributed["identical"]:
            failures.append(
                f"distributed: 1-worker and 2-worker drains of "
                f"{distributed['study']} are not byte-identical")
        if sum(distributed["two_worker_simulated"]) != distributed["cells"]:
            failures.append(
                f"distributed: two-worker drain simulated "
                f"{distributed['two_worker_simulated']} cells, expected a "
                f"partition of {distributed['cells']}")
    telemetry = report.get("telemetry")
    if telemetry is None:
        failures.append("telemetry section missing from report")
    elif telemetry["overhead_frac"] > telemetry_tolerance:
        failures.append(
            f"telemetry: disabled-recorder overhead "
            f"{telemetry['overhead_frac']:.2%} exceeds "
            f"{telemetry_tolerance:.0%} (off "
            f"{telemetry['off_ops_per_sec']:,.0f} ops/s vs null recorder "
            f"{telemetry['null_ops_per_sec']:,.0f})")
    return failures


def load_report(path: Path) -> Dict[str, Any]:
    """Read a bench report / baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_report(report: Dict[str, Any], path: Path) -> None:
    """Write a bench report with stable key order."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

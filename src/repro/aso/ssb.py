"""The Scalable Store Buffer (SSB).

The SSB holds every store of a speculative atomic sequence, in program
order, at per-store granularity.  Because it never forwards values to
loads (forwarding happens from the L1), it avoids the associative-search
scaling limit of a conventional FIFO store buffer and can therefore be
large (the paper quotes roughly 10 KB, i.e. hundreds of stores).

For the simulator the SSB behaves like a word-granularity FIFO store
buffer with a large capacity plus a commit-drain cost: committing a
sequence of ``n`` stores occupies the cache's external interface for
``n * drain_cycles_per_store`` cycles.
"""

from __future__ import annotations

from ..config import StoreBufferConfig, StoreBufferKind
from ..cpu.store_buffer import FIFOStoreBuffer

#: Default SSB capacity in stores (roughly the paper's 10 KB SSB).
DEFAULT_SSB_ENTRIES = 256


class ScalableStoreBuffer(FIFOStoreBuffer):
    """A large per-store FIFO used by ASO."""

    def __init__(self, entries: int = DEFAULT_SSB_ENTRIES,
                 drain_cycles_per_store: int = 2) -> None:
        config = StoreBufferConfig(kind=StoreBufferKind.FIFO_WORD,
                                   entries=entries, entry_bytes=8)
        super().__init__(config)
        self.drain_cycles_per_store = drain_cycles_per_store
        self.commit_drains = 0
        self.committed_stores = 0

    def speculative_store_count(self, now: int) -> int:
        """Number of live speculative entries (the cost driver of commit)."""
        return sum(1 for e in self._live(now) if e.speculative)

    def commit_drain_latency(self, now: int) -> int:
        """Cycles needed to drain the current speculative stores to the L2."""
        count = self.speculative_store_count(now)
        self.commit_drains += 1
        self.committed_stores += count
        return count * self.drain_cycles_per_store

"""Atomic Sequence Ordering (ASO) baseline (Wenisch et al., ISCA 2007).

ASO is the closest prior proposal in the speculative-retirement lineage and
the paper's experimental comparison point (Section 6.4, Figure 11).  Like
InvisiFence-Selective it speculates only on would-be ordering stalls, but
it differs in three modelled respects:

* speculative stores are held per-store in a large FIFO **Scalable Store
  Buffer** (SSB) rather than per-block in a small coalescing buffer,
* commit drains the SSB into the L2 (a latency proportional to the number
  of buffered stores) instead of a constant-time flash clear, and
* checkpoints are taken periodically during speculation, so a violation
  discards only the work since the last checkpoint covering the
  conflicting access.
"""

from .ssb import ScalableStoreBuffer
from .controller import ASOController

__all__ = ["ScalableStoreBuffer", "ASOController"]

"""The ASO consistency controller (ASOsc).

ASO speculates selectively under sequential consistency, exactly like
InvisiFence-Selective configured for SC, but with the design differences
described in the package docstring: a per-store SSB, a drain-to-L2 commit,
and periodic checkpoints that bound the work discarded by a violation.

The commit drain is modelled as overlapped with subsequent execution
(ASO supports multiple in-flight sequences precisely to hide this
latency); its cost shows up indirectly through the SSB occupancy it
maintains.  The periodic checkpoints are what give ASO its small
performance edge over single-checkpoint InvisiFence in Figure 11.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import ConsistencyModel
from ..core.selective import InvisiFenceSelective
from ..errors import ConfigurationError
from .ssb import ScalableStoreBuffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cpu.core import Core

#: maximum number of simultaneously live checkpoints (atomic sequences).
MAX_ASO_CHECKPOINTS = 16


class ASOController(InvisiFenceSelective):
    """Atomic Sequence Ordering with periodic checkpointing."""

    def __init__(self, core: "Core") -> None:
        super().__init__(core)
        if self.config.consistency is not ConsistencyModel.SC:
            raise ConfigurationError(
                "the ASO baseline is modelled for SC (ASOsc), as in the paper"
            )
        # Replace the coalescing buffer with the Scalable Store Buffer.
        self.sb = ScalableStoreBuffer(
            drain_cycles_per_store=self.spec_config.aso_drain_cycles_per_store
        )
        self._sb_coalescing = False
        self._ops_since_checkpoint = 0

    # -- periodic checkpoints -------------------------------------------------

    def _note_ops(self, count: int) -> None:
        super()._note_ops(count)
        if not self.speculating:
            return
        self._ops_since_checkpoint += count
        if (self._ops_since_checkpoint >= self.spec_config.aso_checkpoint_interval
                and len(self._checkpoints) < MAX_ASO_CHECKPOINTS):
            self.begin_speculation(self.core.events.now)
            self._ops_since_checkpoint = 0

    def _maybe_take_second_checkpoint(self, now: int) -> None:
        # Periodic checkpointing replaces the two-checkpoint threshold rule.
        return

    def begin_speculation(self, now: int):
        checkpoint = super().begin_speculation(now)
        if len(self._checkpoints) == 1:
            self._ops_since_checkpoint = 0
        return checkpoint

    # -- commit: drain the SSB into the L2 ---------------------------------------

    def commit_all(self, now: int, cov: bool = False) -> None:
        if self.speculating:
            # The drain occupies the cache's external interface; it is
            # overlapped with execution, so it does not stall the core, but
            # it is recorded for analysis.
            self.sb.commit_drain_latency(now)
        super().commit_all(now, cov=cov)

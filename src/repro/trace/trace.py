"""Trace containers.

A :class:`Trace` is one thread's program-order operation sequence; a
:class:`MultiThreadedTrace` bundles one trace per core plus bookkeeping used
by the experiment drivers (workload name, generator seed).

Phase-structured traces (produced by the scenario engine) additionally
carry ``phases``: an ordered tuple of ``(name, ops_per_thread)`` pairs
describing how each thread's stream splits into consecutive phases.  Phase
boundaries are positional -- operation indices, identical across threads --
so the core model can attribute stall cycles to the phase that incurred
them without any per-op tagging.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import TraceError
from .compiled import CompiledTrace
from .ops import MemOp, OpKind

#: One phase of a phase-structured trace: (phase name, ops per thread).
PhaseMark = Tuple[str, int]


class Trace:
    """One thread's program-order sequence of operations."""

    def __init__(self, ops: Optional[Iterable[MemOp]] = None,
                 thread_id: int = 0) -> None:
        self._ops: List[MemOp] = list(ops) if ops is not None else []
        self.thread_id = thread_id
        self._compiled: Optional[CompiledTrace] = None

    def append(self, op: MemOp) -> None:
        self._ops.append(op)
        self._compiled = None

    def extend(self, ops: Iterable[MemOp]) -> None:
        self._ops.extend(ops)
        self._compiled = None

    def compiled(self) -> CompiledTrace:
        """The struct-of-arrays execution form (built once, cached).

        The cache is invalidated by :meth:`append`/:meth:`extend`, so the
        arrays always describe the current operation list.
        """
        if self._compiled is None or self._compiled.length != len(self._ops):
            self._compiled = CompiledTrace(self._ops)
        return self._compiled

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[MemOp]:
        return iter(self._ops)

    def __getitem__(self, index: int) -> MemOp:
        return self._ops[index]

    @property
    def ops(self) -> Sequence[MemOp]:
        return self._ops

    # -- summary statistics ------------------------------------------------

    def count(self, kind: OpKind) -> int:
        return sum(1 for op in self._ops if op.kind is kind)

    def instruction_weight(self) -> int:
        """Total abstracted instruction count (compute bundles weighted)."""
        total = 0
        for op in self._ops:
            total += op.cycles if op.kind is OpKind.COMPUTE else 1
        return total

    def footprint(self, block_bytes: int) -> int:
        """Number of distinct cache blocks touched by this trace."""
        blocks = set()
        for op in self._ops:
            if op.is_memory:
                blocks.add(op.address // block_bytes)
        return len(blocks)

    def mix(self) -> Dict[str, float]:
        """Fraction of operations of each kind (by op count)."""
        if not self._ops:
            return {kind.value: 0.0 for kind in OpKind}
        total = len(self._ops)
        return {
            kind.value: self.count(kind) / total for kind in OpKind
        }


class MultiThreadedTrace:
    """A bundle of per-core traces produced by a workload generator."""

    def __init__(self, traces: Sequence[Trace], name: str = "anonymous",
                 seed: Optional[int] = None,
                 phases: Optional[Sequence[PhaseMark]] = None) -> None:
        if not traces:
            raise TraceError("a multi-threaded trace needs at least one thread")
        self._traces = list(traces)
        for index, trace in enumerate(self._traces):
            trace.thread_id = index
        self.name = name
        self.seed = seed
        self.phases: Optional[Tuple[PhaseMark, ...]] = None
        if phases is not None:
            marks = tuple((str(n), int(count)) for n, count in phases)
            if not marks:
                raise TraceError("a phase-structured trace needs at least one phase")
            if any(count <= 0 for _, count in marks):
                raise TraceError("phase lengths must be positive")
            total = sum(count for _, count in marks)
            for trace in self._traces:
                if len(trace) != total:
                    raise TraceError(
                        f"thread {trace.thread_id} has {len(trace)} ops but the "
                        f"phase layout describes {total}"
                    )
            self.phases = marks

    @property
    def phase_names(self) -> Optional[Tuple[str, ...]]:
        if self.phases is None:
            return None
        return tuple(name for name, _ in self.phases)

    @property
    def phase_bounds(self) -> Optional[Tuple[int, ...]]:
        """Cumulative per-thread end indices of each phase."""
        if self.phases is None:
            return None
        bounds: List[int] = []
        total = 0
        for _, count in self.phases:
            total += count
            bounds.append(total)
        return tuple(bounds)

    @property
    def num_threads(self) -> int:
        return len(self._traces)

    def __len__(self) -> int:
        return self.num_threads

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces)

    def __getitem__(self, thread: int) -> Trace:
        return self._traces[thread]

    @property
    def traces(self) -> Sequence[Trace]:
        return self._traces

    def total_ops(self) -> int:
        return sum(len(t) for t in self._traces)

    def total_instruction_weight(self) -> int:
        return sum(t.instruction_weight() for t in self._traces)

    def shared_blocks(self, block_bytes: int) -> int:
        """Number of blocks touched by more than one thread."""
        seen: Dict[int, int] = {}
        for trace in self._traces:
            thread_blocks = set()
            for op in trace:
                if op.is_memory:
                    thread_blocks.add(op.address // block_bytes)
            for block in thread_blocks:
                seen[block] = seen.get(block, 0) + 1
        return sum(1 for count in seen.values() if count > 1)

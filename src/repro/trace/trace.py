"""Trace containers.

A :class:`Trace` is one thread's program-order operation sequence; a
:class:`MultiThreadedTrace` bundles one trace per core plus bookkeeping used
by the experiment drivers (workload name, generator seed).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..errors import TraceError
from .ops import MemOp, OpKind


class Trace:
    """One thread's program-order sequence of operations."""

    def __init__(self, ops: Optional[Iterable[MemOp]] = None,
                 thread_id: int = 0) -> None:
        self._ops: List[MemOp] = list(ops) if ops is not None else []
        self.thread_id = thread_id

    def append(self, op: MemOp) -> None:
        self._ops.append(op)

    def extend(self, ops: Iterable[MemOp]) -> None:
        self._ops.extend(ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[MemOp]:
        return iter(self._ops)

    def __getitem__(self, index: int) -> MemOp:
        return self._ops[index]

    @property
    def ops(self) -> Sequence[MemOp]:
        return self._ops

    # -- summary statistics ------------------------------------------------

    def count(self, kind: OpKind) -> int:
        return sum(1 for op in self._ops if op.kind is kind)

    def instruction_weight(self) -> int:
        """Total abstracted instruction count (compute bundles weighted)."""
        total = 0
        for op in self._ops:
            total += op.cycles if op.kind is OpKind.COMPUTE else 1
        return total

    def footprint(self, block_bytes: int) -> int:
        """Number of distinct cache blocks touched by this trace."""
        blocks = set()
        for op in self._ops:
            if op.is_memory:
                blocks.add(op.address // block_bytes)
        return len(blocks)

    def mix(self) -> Dict[str, float]:
        """Fraction of operations of each kind (by op count)."""
        if not self._ops:
            return {kind.value: 0.0 for kind in OpKind}
        total = len(self._ops)
        return {
            kind.value: self.count(kind) / total for kind in OpKind
        }


class MultiThreadedTrace:
    """A bundle of per-core traces produced by a workload generator."""

    def __init__(self, traces: Sequence[Trace], name: str = "anonymous",
                 seed: Optional[int] = None) -> None:
        if not traces:
            raise TraceError("a multi-threaded trace needs at least one thread")
        self._traces = list(traces)
        for index, trace in enumerate(self._traces):
            trace.thread_id = index
        self.name = name
        self.seed = seed

    @property
    def num_threads(self) -> int:
        return len(self._traces)

    def __len__(self) -> int:
        return self.num_threads

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces)

    def __getitem__(self, thread: int) -> Trace:
        return self._traces[thread]

    @property
    def traces(self) -> Sequence[Trace]:
        return self._traces

    def total_ops(self) -> int:
        return sum(len(t) for t in self._traces)

    def total_instruction_weight(self) -> int:
        return sum(t.instruction_weight() for t in self._traces)

    def shared_blocks(self, block_bytes: int) -> int:
        """Number of blocks touched by more than one thread."""
        seen: Dict[int, int] = {}
        for trace in self._traces:
            thread_blocks = set()
            for op in trace:
                if op.is_memory:
                    thread_blocks.add(op.address // block_bytes)
            for block in thread_blocks:
                seen[block] = seen.get(block, 0) + 1
        return sum(1 for count in seen.values() if count > 1)

"""Memory-operation records.

A :class:`MemOp` is one retired operation in a core's program-order trace.
The five kinds mirror the instruction classes whose retirement behaviour
Figure 2 of the paper distinguishes:

* ``LOAD`` and ``STORE`` -- ordinary memory accesses.
* ``ATOMIC`` -- an atomic read-modify-write (e.g. compare-and-swap); treated
  as a load and a store to the same address that must be made visible
  atomically.
* ``FENCE`` -- a full memory ordering fence (MEMBAR #Sync-style).
* ``COMPUTE`` -- a bundle of non-memory instructions whose only effect is to
  occupy the core for a given number of cycles.

Operations carry an optional ``label`` used by workload generators to tag
their role (lock acquire/release, private/shared data, ...); labels are for
analysis only and never influence timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..errors import TraceError


class OpKind(Enum):
    """Classes of trace operations."""

    LOAD = "load"
    STORE = "store"
    ATOMIC = "atomic"
    FENCE = "fence"
    COMPUTE = "compute"

    @property
    def is_memory(self) -> bool:
        """True for operations that access the memory system."""
        return self in (OpKind.LOAD, OpKind.STORE, OpKind.ATOMIC)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class MemOp:
    """One operation in a program-order trace."""

    kind: OpKind
    #: byte address for memory operations; ignored for FENCE/COMPUTE.
    address: int = 0
    #: access size in bytes for memory operations.
    size: int = 8
    #: busy cycles for COMPUTE bundles (number of abstracted instructions).
    cycles: int = 1
    #: optional analysis tag, e.g. "lock_acquire" or "shared".
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind.is_memory:
            if self.address < 0:
                raise TraceError("memory operations need a non-negative address")
            if self.size <= 0:
                raise TraceError("memory operations need a positive size")
        if self.kind is OpKind.COMPUTE and self.cycles <= 0:
            raise TraceError("compute bundles must take at least one cycle")

    @property
    def is_memory(self) -> bool:
        return self.kind.is_memory

    @property
    def reads(self) -> bool:
        return self.kind in (OpKind.LOAD, OpKind.ATOMIC)

    @property
    def writes(self) -> bool:
        return self.kind in (OpKind.STORE, OpKind.ATOMIC)

    def describe(self) -> str:
        """Human-readable one-line description (for debugging and reports)."""
        if self.kind is OpKind.COMPUTE:
            body = f"{self.cycles} cycles"
        elif self.kind is OpKind.FENCE:
            body = "full fence"
        else:
            body = f"addr={self.address:#x} size={self.size}"
        tag = f" [{self.label}]" if self.label else ""
        return f"{self.kind.value}: {body}{tag}"


# -- concise constructors used throughout tests and generators -------------

def load(address: int, size: int = 8, label: Optional[str] = None) -> MemOp:
    """Construct a LOAD operation."""
    return MemOp(OpKind.LOAD, address=address, size=size, label=label)


def store(address: int, size: int = 8, label: Optional[str] = None) -> MemOp:
    """Construct a STORE operation."""
    return MemOp(OpKind.STORE, address=address, size=size, label=label)


def atomic(address: int, size: int = 8, label: Optional[str] = None) -> MemOp:
    """Construct an ATOMIC read-modify-write operation."""
    return MemOp(OpKind.ATOMIC, address=address, size=size, label=label)


def fence(label: Optional[str] = None) -> MemOp:
    """Construct a full memory FENCE."""
    return MemOp(OpKind.FENCE, label=label)


def compute(cycles: int, label: Optional[str] = None) -> MemOp:
    """Construct a COMPUTE bundle occupying ``cycles`` cycles."""
    return MemOp(OpKind.COMPUTE, cycles=cycles, label=label)

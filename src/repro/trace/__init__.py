"""Trace representation: per-thread sequences of retired memory operations.

The simulator is trace driven: each core consumes a :class:`Trace`, a
program-order sequence of :class:`MemOp` records (loads, stores, atomic
read-modify-writes, memory fences, and compute bundles that stand in for
non-memory instructions).
"""

from .compiled import CompiledTrace
from .ops import MemOp, OpKind, atomic, compute, fence, load, store
from .trace import Trace, MultiThreadedTrace
from .serialization import load_trace, save_trace

__all__ = [
    "CompiledTrace",
    "MemOp",
    "OpKind",
    "load",
    "store",
    "atomic",
    "fence",
    "compute",
    "Trace",
    "MultiThreadedTrace",
    "save_trace",
    "load_trace",
]

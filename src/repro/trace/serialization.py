"""Trace (de)serialization.

Traces are stored as compact JSON-lines files: one header object followed by
one array per operation.  The format is intended for debugging, sharing
small reproducer traces, and round-trip testing; the experiment drivers
normally regenerate traces from workload specifications instead.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..errors import TraceError
from .ops import MemOp, OpKind
from .trace import MultiThreadedTrace, Trace

_FORMAT_VERSION = 1

_KIND_CODES = {
    OpKind.LOAD: "L",
    OpKind.STORE: "S",
    OpKind.ATOMIC: "A",
    OpKind.FENCE: "F",
    OpKind.COMPUTE: "C",
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


def _encode_op(op: MemOp) -> list:
    if op.kind is OpKind.COMPUTE:
        record = [_KIND_CODES[op.kind], op.cycles]
    elif op.kind is OpKind.FENCE:
        record = [_KIND_CODES[op.kind]]
    else:
        record = [_KIND_CODES[op.kind], op.address, op.size]
    if op.label:
        record.append(op.label)
    return record


def _decode_op(record: list) -> MemOp:
    if not record:
        raise TraceError("empty operation record")
    kind = _CODE_KINDS.get(record[0])
    if kind is None:
        raise TraceError(f"unknown operation code {record[0]!r}")
    if kind is OpKind.COMPUTE:
        label = record[2] if len(record) > 2 else None
        return MemOp(kind, cycles=int(record[1]), label=label)
    if kind is OpKind.FENCE:
        label = record[1] if len(record) > 1 else None
        return MemOp(kind, label=label)
    label = record[3] if len(record) > 3 else None
    return MemOp(kind, address=int(record[1]), size=int(record[2]), label=label)


def save_trace(trace: MultiThreadedTrace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` in the JSON-lines trace format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "version": _FORMAT_VERSION,
            "name": trace.name,
            "seed": trace.seed,
            "threads": trace.num_threads,
            "ops_per_thread": [len(t) for t in trace],
        }
        if trace.phases is not None:
            header["phases"] = [[name, count] for name, count in trace.phases]
        handle.write(json.dumps(header) + "\n")
        for thread in trace:
            for op in thread:
                handle.write(json.dumps(_encode_op(op)) + "\n")


def load_trace(path: Union[str, Path]) -> MultiThreadedTrace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise TraceError(f"{path} is empty")
        header = json.loads(header_line)
        if header.get("version") != _FORMAT_VERSION:
            raise TraceError(
                f"unsupported trace format version {header.get('version')!r}"
            )
        counts: List[int] = header["ops_per_thread"]
        traces: List[Trace] = []
        for thread_id, count in enumerate(counts):
            ops = []
            for _ in range(count):
                line = handle.readline()
                if not line:
                    raise TraceError(f"{path} truncated while reading thread {thread_id}")
                ops.append(_decode_op(json.loads(line)))
            traces.append(Trace(ops, thread_id=thread_id))
    phases = header.get("phases")
    if phases is not None:
        phases = [(name, int(count)) for name, count in phases]
    return MultiThreadedTrace(traces, name=header.get("name", path.stem),
                              seed=header.get("seed"), phases=phases)

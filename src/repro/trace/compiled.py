"""Compiled trace: a struct-of-arrays view of one thread's operations.

The authoring and serialization API stays :class:`~repro.trace.ops.MemOp`
(a frozen dataclass); :class:`CompiledTrace` is the execution-kernel form
built once per trace.  Each per-op attribute lives in its own flat list
indexed by trace position, so the core's inner loop reads plain ints
instead of dataclass attributes, enum members, and properties:

* ``kinds``         -- integer opcodes (:data:`OP_LOAD` ... :data:`OP_COMPUTE`),
* ``addresses``     -- byte addresses (0 for FENCE/COMPUTE),
* ``sizes``         -- access sizes in bytes,
* ``cycles``        -- busy cycles (1 except for COMPUTE bundles),
* ``instr_weights`` -- abstracted instruction count each op retires
  (``cycles`` for COMPUTE, 1 otherwise) -- precomputed because the core
  charges it on every single op,
* ``is_memory``     -- per-op memory-access flags.

``ops`` keeps the authored :class:`MemOp` objects (shared, not copied), so
controllers still receive the authoring objects and :meth:`view` can hand
back a ``MemOp`` for any index -- e.g. when mapping a rollback target back
to the exact operation it re-executes.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

import numpy as np

from .ops import MemOp, OpKind

#: Monotone id source for :attr:`TraceArrays.token` (process-wide).
_ARRAY_TOKENS = itertools.count(1)

#: Integer opcodes, stable across the project (serialization-independent).
OP_LOAD = 0
OP_STORE = 1
OP_ATOMIC = 2
OP_FENCE = 3
OP_COMPUTE = 4

#: OpKind -> integer opcode.
OPCODES = {
    OpKind.LOAD: OP_LOAD,
    OpKind.STORE: OP_STORE,
    OpKind.ATOMIC: OP_ATOMIC,
    OpKind.FENCE: OP_FENCE,
    OpKind.COMPUTE: OP_COMPUTE,
}

#: Integer opcode -> OpKind.
KIND_FOR_OPCODE = {code: kind for kind, code in OPCODES.items()}


class TraceArrays:
    """Read-only numpy views over one :class:`CompiledTrace`.

    Built lazily by :meth:`CompiledTrace.arrays` for the batch engine's
    2-D lane stacking; each field mirrors the corresponding flat list.
    """

    __slots__ = ("length", "kinds", "addresses", "sizes", "cycles",
                 "instr_weights", "is_memory", "token")

    def __init__(self, compiled: "CompiledTrace") -> None:
        self.length = compiled.length
        #: unique build id.  Batch lane profiles pin the token of every
        #: ``TraceArrays`` they consumed; a core whose trace re-compiled
        #: (any mutation discards the compiled form, and with it these
        #: arrays) sees a token mismatch and opts out of bulk retirement
        #: even when the mutated trace happens to keep the same length.
        self.token = next(_ARRAY_TOKENS)
        self.kinds = np.asarray(compiled.kinds, dtype=np.int8)
        self.addresses = np.asarray(compiled.addresses, dtype=np.int64)
        self.sizes = np.asarray(compiled.sizes, dtype=np.int64)
        self.cycles = np.asarray(compiled.cycles, dtype=np.int64)
        self.instr_weights = np.asarray(compiled.instr_weights,
                                        dtype=np.int64)
        self.is_memory = np.asarray(compiled.is_memory, dtype=np.bool_)


class CompiledTrace:
    """Struct-of-arrays form of one program-order trace."""

    __slots__ = ("ops", "length", "kinds", "addresses", "sizes", "cycles",
                 "instr_weights", "is_memory", "_arrays")

    def __init__(self, ops: Sequence[MemOp]) -> None:
        self.ops: List[MemOp] = list(ops)
        self.length = len(self.ops)
        self.kinds: List[int] = [OPCODES[op.kind] for op in self.ops]
        self.addresses: List[int] = [op.address for op in self.ops]
        self.sizes: List[int] = [op.size for op in self.ops]
        self.cycles: List[int] = [op.cycles for op in self.ops]
        self.is_memory: List[bool] = [op.kind.is_memory for op in self.ops]
        self.instr_weights: List[int] = [
            op.cycles if (not op.kind.is_memory and op.kind is OpKind.COMPUTE)
            else 1
            for op in self.ops
        ]
        self._arrays: Optional[TraceArrays] = None

    def __len__(self) -> int:
        return self.length

    def view(self, index: int) -> MemOp:
        """The authored :class:`MemOp` at ``index`` (shared object)."""
        return self.ops[index]

    def arrays(self) -> TraceArrays:
        """Numpy views of the per-op columns, built once and cached.

        The cache lives on this :class:`CompiledTrace` instance, so trace
        mutation (``Trace.append``/``extend``), which discards the compiled
        form, discards the arrays with it -- a stale-arrays bug cannot
        outlive the compiled trace that spawned them.
        """
        if self._arrays is None or self._arrays.length != self.length:
            self._arrays = TraceArrays(self)
        return self._arrays

"""Benchmark: regenerate Figure 12 (continuous speculation and commit-on-violate)."""

from conftest import emit
from repro.experiments.figure12 import run_figure12


def test_figure12(benchmark, settings, runner):
    result = benchmark.pedantic(run_figure12, args=(settings, runner),
                                iterations=1, rounds=1)
    emit(result.format())

    cont = result.average_total("invisi_cont")
    cov = result.average_total("invisi_cont_cov")
    invisi_rmo = result.average_total("invisi_rmo")

    # Qualitative shape (paper Sections 6.5/6.6):
    # * continuous speculation beats conventional SC on average,
    assert cont < 100.0
    # * but it pays a violation penalty that commit-on-violate removes,
    cont_violation = sum(result.violation_cycles(w, "invisi_cont")
                         for w in settings.workloads)
    cov_violation = sum(result.violation_cycles(w, "invisi_cont_cov")
                        for w in settings.workloads)
    assert cont_violation > 0.0
    assert cov_violation < 0.5 * cont_violation
    assert cov <= cont
    # * and selective speculation enforcing RMO remains the best or tied-best
    #   InvisiFence configuration.
    assert invisi_rmo <= cont + 1.0
    assert invisi_rmo <= cov + 6.0

    for workload in settings.workloads:
        assert abs(result.total(workload, "sc") - 100.0) < 1e-6
        assert result.total(workload, "invisi_cont_cov") <= result.total(workload, "invisi_cont") + 2.0

"""Benchmark: raw simulator throughput (not a paper figure).

Times the simulation of one apache trace under the three kinds of
controller, so performance regressions in the engine itself are visible
independently of the figure harness.
"""

import pytest

from repro.config import ConsistencyModel, SpeculationConfig, SpeculationMode, paper_config
from repro.engine.simulator import simulate
from repro.workloads.registry import build_trace

_CORES = 4
_OPS = 2000


@pytest.fixture(scope="module")
def trace():
    return build_trace("apache", num_threads=_CORES, ops_per_thread=_OPS, seed=3)


def _config(mode: SpeculationMode):
    if mode is SpeculationMode.NONE:
        spec = SpeculationConfig()
    elif mode is SpeculationMode.CONTINUOUS:
        spec = SpeculationConfig(mode=mode, num_checkpoints=2)
    else:
        spec = SpeculationConfig(mode=mode)
    return paper_config(ConsistencyModel.SC, spec, num_cores=_CORES)


def test_conventional_sc_throughput(benchmark, trace):
    result = benchmark(simulate, _config(SpeculationMode.NONE), trace)
    assert result.runtime > 0


def test_invisifence_selective_throughput(benchmark, trace):
    result = benchmark(simulate, _config(SpeculationMode.SELECTIVE), trace)
    assert result.runtime > 0


def test_invisifence_continuous_throughput(benchmark, trace):
    result = benchmark(simulate, _config(SpeculationMode.CONTINUOUS), trace)
    assert result.runtime > 0

"""Benchmark: raw simulator throughput (not a paper figure).

Times the simulation of one apache trace under the three kinds of
controller, so performance regressions in the engine itself are visible
independently of the figure harness; the campaign benchmarks time the
same cells through the executor cold (every cell simulated) and cached
(every cell a disk hit), so executor overhead and cache regressions show
up in the perf trajectory too.

The ``*_throughput`` benchmarks time the default compiled/batched fast
kernel; the ``*_reference_throughput`` ones time the retained
one-event-per-op reference path, so the fast-path gain stays measurable
in every run.  (The reference path shares the data-structure
optimisations -- O(1) store-buffer timing queries, lazy cache sets, the
latency matrix -- so the fast/reference ratio *understates* the speedup
over the pre-refactor kernel.)  ``repro bench`` writes the same
measurements to ``BENCH_kernel.json`` for the committed perf trajectory.
"""

import pytest

from repro.campaign import CampaignExecutor, ResultCache, expand_jobs
from repro.config import ConsistencyModel, SpeculationConfig, SpeculationMode, paper_config
from repro.engine.simulator import simulate
from repro.experiments.common import ExperimentSettings
from repro.workloads.registry import build_trace

_CORES = 4
_OPS = 2000


@pytest.fixture(scope="module")
def trace():
    return build_trace("apache", num_threads=_CORES, ops_per_thread=_OPS, seed=3)


def _config(mode: SpeculationMode):
    if mode is SpeculationMode.NONE:
        spec = SpeculationConfig()
    elif mode is SpeculationMode.CONTINUOUS:
        spec = SpeculationConfig(mode=mode, num_checkpoints=2)
    else:
        spec = SpeculationConfig(mode=mode)
    return paper_config(ConsistencyModel.SC, spec, num_cores=_CORES)


def test_conventional_sc_throughput(benchmark, trace):
    result = benchmark(simulate, _config(SpeculationMode.NONE), trace)
    assert result.runtime > 0


def test_invisifence_selective_throughput(benchmark, trace):
    result = benchmark(simulate, _config(SpeculationMode.SELECTIVE), trace)
    assert result.runtime > 0


def test_invisifence_continuous_throughput(benchmark, trace):
    result = benchmark(simulate, _config(SpeculationMode.CONTINUOUS), trace)
    assert result.runtime > 0


# -- retained reference engine (differential baseline) ------------------------


def test_conventional_sc_reference_throughput(benchmark, trace):
    result = benchmark(simulate, _config(SpeculationMode.NONE), trace,
                       engine="reference")
    assert result.runtime > 0


def test_invisifence_selective_reference_throughput(benchmark, trace):
    result = benchmark(simulate, _config(SpeculationMode.SELECTIVE), trace,
                       engine="reference")
    assert result.runtime > 0


def test_invisifence_continuous_reference_throughput(benchmark, trace):
    result = benchmark(simulate, _config(SpeculationMode.CONTINUOUS), trace,
                       engine="reference")
    assert result.runtime > 0


# -- campaign executor: cold vs cached ---------------------------------------

_SWEEP_SETTINGS = ExperimentSettings.quick(num_cores=_CORES, ops_per_thread=_OPS,
                                           workloads=("apache",), seeds=(3,))
_SWEEP_CELLS = expand_jobs(("sc", "invisi_sc"), ("apache",), (3,))


def test_campaign_cold_throughput(benchmark):
    """Every round simulates every cell (no cache attached)."""
    executor = CampaignExecutor(_SWEEP_SETTINGS, jobs=1)
    results = benchmark(executor.run, _SWEEP_CELLS)
    assert executor.last_report.simulated == len(_SWEEP_CELLS)
    assert all(result.runtime > 0 for result in results)


def test_campaign_cached_throughput(benchmark, tmp_path):
    """Every round serves every cell from the on-disk result cache."""
    executor = CampaignExecutor(_SWEEP_SETTINGS, jobs=1,
                                cache=ResultCache(tmp_path / "cache"))
    executor.run(_SWEEP_CELLS)  # warm the cache
    results = benchmark(executor.run, _SWEEP_CELLS)
    assert executor.last_report.simulated == 0
    assert executor.last_report.cache_hits == len(_SWEEP_CELLS)
    assert all(result.runtime > 0 for result in results)

"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one figure of the paper.  All modules
share one :class:`ExperimentRunner` (session scope) so that configurations
appearing in several figures (e.g. the conventional SC baseline) are only
simulated once per benchmark session.

Scale is controlled by environment variables so the same harness serves
both a quick CI-style run and a fuller reproduction:

* ``REPRO_BENCH_CORES``   (default 8)
* ``REPRO_BENCH_OPS``     (default 4000 operations per thread)
* ``REPRO_BENCH_SEEDS``   (default "1", comma-separated list)
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentRunner, ExperimentSettings
from repro.workloads.presets import workload_names


def _settings_from_env() -> ExperimentSettings:
    cores = int(os.environ.get("REPRO_BENCH_CORES", "8"))
    ops = int(os.environ.get("REPRO_BENCH_OPS", "4000"))
    seeds = tuple(int(s) for s in os.environ.get("REPRO_BENCH_SEEDS", "1").split(","))
    return ExperimentSettings(num_cores=cores, ops_per_thread=ops, seeds=seeds,
                              workloads=tuple(workload_names()))


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return _settings_from_env()


@pytest.fixture(scope="session")
def runner(settings) -> ExperimentRunner:
    return ExperimentRunner(settings)


def emit(text: str) -> None:
    """Print a figure table so it appears in the benchmark output."""
    print()
    print(text)

"""Benchmark: regenerate Figure 8 (speedups over conventional SC)."""

from conftest import emit
from repro.experiments.figure8 import run_figure8


def test_figure8(benchmark, settings, runner):
    result = benchmark.pedantic(run_figure8, args=(settings, runner),
                                iterations=1, rounds=1)
    emit(result.format())

    # Qualitative shape (paper Section 6.2/6.3): relaxing the model helps,
    # and every InvisiFence-Selective variant at least matches conventional
    # RMO, with Invisi_rmo the best configuration on average.
    assert result.average_speedup("tso") > 1.05
    assert result.average_speedup("rmo") >= result.average_speedup("tso")
    assert result.average_speedup("invisi_sc") >= result.average_speedup("rmo") * 0.98
    assert result.average_speedup("invisi_rmo") >= result.average_speedup("invisi_sc") * 0.99
    assert result.average_speedup("invisi_rmo") >= result.average_speedup("rmo")

    for workload in settings.workloads:
        speedups = result.speedups[workload]
        assert speedups["sc"] == 1.0
        # InvisiFence never loses badly to the conventional implementation of
        # the same model (performance-transparent ordering).
        assert speedups["invisi_sc"] >= 0.95
        assert speedups["invisi_rmo"] >= speedups["rmo"] * 0.95

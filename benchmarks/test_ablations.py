"""Benchmarks: the paper's sensitivity studies (Section 6.1 / 6.6).

These are not numbered figures, but the paper leans on both results: an
eight-entry coalescing store buffer is enough for single-checkpoint
InvisiFence, and the commit-on-violate timeout is generous enough that its
exact value barely matters once it covers a store-miss latency.
"""

from conftest import emit
from repro.experiments.ablation import run_cov_timeout_ablation, run_store_buffer_ablation


def test_store_buffer_capacity_ablation(benchmark, settings, runner):
    result = benchmark.pedantic(
        run_store_buffer_ablation, args=(settings,),
        kwargs={"workload": "apache", "runner": runner,
                "sizes": (1, 2, 4, 8, 32)},
        iterations=1, rounds=1)
    emit(result.format())

    relative = result.relative_runtime()
    # A one-entry buffer is clearly insufficient; eight entries perform within
    # a few percent of the largest buffer in the sweep (the paper's claim --
    # our synthetic apache carries a somewhat higher store-miss rate, so the
    # tolerance is a little wider than the paper's "close to unbounded").
    assert relative[1] > relative[8] + 0.10
    assert relative[8] <= 1.10
    assert result.smallest_sufficient_capacity(tolerance=0.10) <= 8
    # Capacity pressure shows up as SB-full cycles for the tiny buffer.
    assert result.sb_full[1] >= result.sb_full[32]


def test_cov_timeout_ablation(benchmark, settings, runner):
    result = benchmark.pedantic(
        run_cov_timeout_ablation, args=(settings,),
        kwargs={"workload": "apache", "runner": runner,
                "timeouts": (0, 250, 4000, 16000)},
        iterations=1, rounds=1)
    emit(result.format())

    # The abort-immediately baseline discards work; a 4000-cycle deferral
    # window removes most violation cycles (Section 6.6), and growing it
    # further changes little.
    aborts_baseline, _, violation_baseline = result.outcomes[0]
    _, cov_commits_4k, violation_4k = result.outcomes[4000]
    assert violation_4k <= violation_baseline
    assert cov_commits_4k > 0
    assert result.cycles[4000] <= result.cycles[0] * 1.02
    assert abs(result.cycles[16000] - result.cycles[4000]) <= 0.1 * result.cycles[4000]

"""Benchmark: regenerate Figure 9 (runtime breakdowns normalised to SC)."""

from conftest import emit
from repro.experiments.figure9 import run_figure9


def test_figure9(benchmark, settings, runner):
    result = benchmark.pedantic(run_figure9, args=(settings, runner),
                                iterations=1, rounds=1)
    emit(result.format())

    for workload in settings.workloads:
        # The baseline bar is 100% by construction.
        assert abs(result.total(workload, "sc") - 100.0) < 1e-6
        # Conventional relaxed models shorten the bar.
        assert result.total(workload, "rmo") <= result.total(workload, "tso") * 1.02
        assert result.total(workload, "tso") <= 100.0 + 1e-6
        # InvisiFence removes nearly all SB-full / SB-drain time relative to
        # the conventional implementation of the same model.
        for invisi, conventional in (("invisi_sc", "sc"), ("invisi_tso", "tso"),
                                     ("invisi_rmo", "rmo")):
            inv = result.breakdowns[workload][invisi]
            conv = result.breakdowns[workload][conventional]
            inv_stalls = inv["sb_full"] + inv["sb_drain"]
            conv_stalls = conv["sb_full"] + conv["sb_drain"]
            assert inv_stalls <= max(1.0, 0.5 * conv_stalls), (workload, invisi)
            # The violation component stays small for selective speculation.
            assert inv["violation"] <= 12.0, (workload, invisi)
        # And the InvisiFence bar is never taller than the conventional bar.
        assert result.total(workload, "invisi_rmo") <= result.total(workload, "rmo") * 1.02

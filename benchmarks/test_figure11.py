"""Benchmark: regenerate Figure 11 (ASO vs InvisiFence, 1 and 2 checkpoints)."""

from conftest import emit
from repro.experiments.figure11 import run_figure11


def test_figure11(benchmark, settings, runner):
    result = benchmark.pedantic(run_figure11, args=(settings, runner),
                                iterations=1, rounds=1)
    emit(result.format())

    # Qualitative shape (paper Section 6.4): the three configurations are
    # close -- ASO and InvisiFence-Selective both eliminate essentially all
    # ordering stalls; ASO's periodic checkpoints give it at most a small
    # edge over single-checkpoint InvisiFence, and a second checkpoint closes
    # that gap.
    aso = result.average_total("aso_sc")
    one = result.average_total("invisi_sc")
    two = result.average_total("invisi_sc_2ckpt")
    assert abs(aso - 100.0) < 1e-6
    assert one < 125.0, "single-checkpoint InvisiFence should be close to ASO"
    assert two <= one + 2.0, "a second checkpoint should not hurt"

    for workload in settings.workloads:
        values = result.breakdowns[workload]
        for config in ("aso_sc", "invisi_sc", "invisi_sc_2ckpt"):
            stalls = values[config]["sb_full"] + values[config]["sb_drain"]
            # All three are store-wait-free designs.
            assert stalls < 20.0, (workload, config)

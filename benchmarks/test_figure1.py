"""Benchmark: regenerate Figure 1 (ordering stalls in conventional SC/TSO/RMO)."""

from conftest import emit
from repro.experiments.figure1 import run_figure1


def test_figure1(benchmark, settings, runner):
    result = benchmark.pedantic(run_figure1, args=(settings, runner),
                                iterations=1, rounds=1)
    emit(result.format())

    # Qualitative shape (paper Figure 1): ordering stalls shrink as the
    # consistency model is relaxed, and the synchronisation-heavy web
    # workloads stall far more under RMO than the scientific codes.
    for workload in settings.workloads:
        sc = result.total(workload, "sc")
        tso = result.total(workload, "tso")
        rmo = result.total(workload, "rmo")
        assert sc > tso, f"{workload}: SC should stall more than TSO"
        assert tso >= rmo * 0.9, f"{workload}: TSO should stall at least as much as RMO"
        assert sc > 5.0, f"{workload}: SC ordering stalls should be significant"
    assert result.total("apache", "rmo") > result.total("barnes", "rmo")
    assert result.total("apache", "rmo") > result.total("ocean", "rmo")
    # Scientific workloads show only a few percent of ordering stalls under RMO.
    assert result.total("barnes", "rmo") < 10.0
    assert result.total("ocean", "rmo") < 10.0

"""Benchmark: regenerate Figure 10 (% of cycles spent speculating)."""

from conftest import emit
from repro.experiments.figure10 import run_figure10


def test_figure10(benchmark, settings, runner):
    result = benchmark.pedantic(run_figure10, args=(settings, runner),
                                iterations=1, rounds=1)
    emit(result.format())

    # Qualitative shape (paper Figure 10 / Figure 4): the weaker the enforced
    # model, the less time InvisiFence-Selective spends speculating.
    assert result.average("invisi_rmo") < result.average("invisi_tso") + 1.0
    assert result.average("invisi_tso") <= result.average("invisi_sc") + 1.0
    assert result.average("invisi_sc") > result.average("invisi_rmo")

    for workload in settings.workloads:
        values = result.speculation_pct[workload]
        for config, pct in values.items():
            assert 0.0 <= pct <= 100.0, (workload, config)
        assert values["invisi_rmo"] <= values["invisi_sc"] + 1.0

    # The scientific workloads barely speculate when enforcing RMO.
    assert result.speculation_pct["barnes"]["invisi_rmo"] < 20.0
    assert result.speculation_pct["dss-db2"]["invisi_rmo"] < 20.0

#!/usr/bin/env python
"""Memory-ordering cost of a web-server workload across consistency models.

Reproduces the motivation of the paper's introduction (Figure 1) on the
apache-like synthetic workload: how much execution time do conventional
implementations of SC, TSO, and RMO lose to store-buffer drains and
capacity stalls, and how much of that does InvisiFence recover for each
enforced model?

Run with::

    python examples/web_server_ordering.py [workload]

where ``workload`` is one of apache, zeus, oltp-oracle, oltp-db2, dss-db2,
barnes, ocean (default: apache).
"""

import sys

from repro import ConsistencyModel, SpeculationConfig, SpeculationMode, build_trace, paper_config, simulate
from repro.stats import format_table

NUM_CORES = 8
OPS_PER_THREAD = 4000

CONFIGS = [
    ("sc", ConsistencyModel.SC, None),
    ("tso", ConsistencyModel.TSO, None),
    ("rmo", ConsistencyModel.RMO, None),
    ("invisi_sc", ConsistencyModel.SC, SpeculationMode.SELECTIVE),
    ("invisi_tso", ConsistencyModel.TSO, SpeculationMode.SELECTIVE),
    ("invisi_rmo", ConsistencyModel.RMO, SpeculationMode.SELECTIVE),
]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "apache"
    trace = build_trace(workload, num_threads=NUM_CORES,
                        ops_per_thread=OPS_PER_THREAD, seed=7)
    print(f"workload: {workload} ({trace.total_ops()} operations, "
          f"{NUM_CORES} cores)")

    results = {}
    for name, model, mode in CONFIGS:
        speculation = (SpeculationConfig(mode=mode) if mode is not None
                       else SpeculationConfig())
        config = paper_config(model, speculation, num_cores=NUM_CORES)
        results[name] = simulate(config, trace, warmup_fraction=0.2)

    baseline = results["sc"]
    baseline_cycles = sum(baseline.breakdown().values())
    rows = []
    for name, result in results.items():
        values = result.breakdown()
        scale = 100.0 / baseline_cycles
        ordering = (values["sb_full"] + values["sb_drain"]) * scale
        rows.append([
            name,
            f"{result.speedup_over(baseline):.2f}x",
            round(sum(values.values()) * scale, 1),
            round(values["busy"] * scale, 1),
            round(values["other"] * scale, 1),
            round(ordering, 1),
            round(values["violation"] * scale, 1),
        ])
    print()
    print(format_table(
        ["config", "speedup", "runtime %", "busy %", "other %", "ordering %",
         "violation %"],
        rows,
        title=f"Runtime components, % of conventional SC runtime ({workload})"))

    print()
    print("Reading the table: conventional implementations lose the 'ordering' "
          "column to fences, atomics and store-buffer capacity; the InvisiFence "
          "rows convert almost all of it back into useful time at the cost of a "
          "small 'violation' column.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: run one workload under conventional SC and under InvisiFence.

This is the smallest end-to-end use of the library's public API:

1. generate a synthetic multithreaded workload trace,
2. simulate it on a conventional sequentially consistent multiprocessor,
3. simulate the same trace with InvisiFence-Selective enforcing SC,
4. compare runtime breakdowns and report the speedup.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ConsistencyModel,
    SpeculationConfig,
    SpeculationMode,
    build_trace,
    paper_config,
    simulate,
)
from repro.stats import format_table

NUM_CORES = 8
OPS_PER_THREAD = 4000


def main() -> None:
    # 1. A web-server-like workload (frequent locking, bursty stores).
    trace = build_trace("apache", num_threads=NUM_CORES,
                        ops_per_thread=OPS_PER_THREAD, seed=42)
    print(f"workload: {trace.name}, {trace.num_threads} threads, "
          f"{trace.total_ops()} operations")

    # 2. Conventional SC baseline (Figure 6 machine parameters).
    sc_config = paper_config(ConsistencyModel.SC, num_cores=NUM_CORES)
    sc = simulate(sc_config, trace, warmup_fraction=0.2)

    # 3. The same machine with InvisiFence-Selective enforcing SC.
    invisi_config = paper_config(
        ConsistencyModel.SC,
        SpeculationConfig(mode=SpeculationMode.SELECTIVE),
        num_cores=NUM_CORES,
    )
    invisi = simulate(invisi_config, trace, warmup_fraction=0.2)

    # 4. Compare.
    rows = []
    for name, result in (("conventional SC", sc), ("InvisiFence (SC)", invisi)):
        breakdown = result.breakdown(normalize=True)
        rows.append([
            name,
            round(result.cycles_per_core()),
            f"{100 * breakdown['busy']:.1f}%",
            f"{100 * breakdown['other']:.1f}%",
            f"{100 * (breakdown['sb_full'] + breakdown['sb_drain']):.1f}%",
            f"{100 * breakdown['violation']:.1f}%",
        ])
    print()
    print(format_table(
        ["configuration", "cycles/core", "busy", "other", "ordering stalls",
         "violation"],
        rows, title="Runtime breakdown"))

    speculative = invisi.aggregate()
    print()
    print(f"speedup of InvisiFence over conventional SC: "
          f"{invisi.speedup_over(sc):.2f}x")
    print(f"speculation episodes: {speculative.speculations}, "
          f"commits: {speculative.commits}, aborts: {speculative.aborts}")
    print(f"fraction of cycles spent speculating: "
          f"{100 * invisi.speculation_fraction():.1f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Continuous versus selective speculation, and the commit-on-violate policy.

Reproduces the Section 6.5/6.6 study (Figure 12) on one workload: continuous
speculation decouples consistency enforcement from the core but spends far
more time vulnerable to violations; the commit-on-violate policy defers the
conflicting request long enough to commit, recovering most of the lost
cycles.

Run with::

    python examples/continuous_vs_selective.py [workload]
"""

import sys

from repro import (
    ConsistencyModel,
    SpeculationConfig,
    SpeculationMode,
    ViolationPolicy,
    build_trace,
    paper_config,
    simulate,
)
from repro.stats import format_table

NUM_CORES = 8
OPS_PER_THREAD = 4000


def build_configs():
    return {
        "sc (conventional)": paper_config(ConsistencyModel.SC, num_cores=NUM_CORES),
        "rmo (conventional)": paper_config(ConsistencyModel.RMO, num_cores=NUM_CORES),
        "invisi selective (rmo)": paper_config(
            ConsistencyModel.RMO,
            SpeculationConfig(mode=SpeculationMode.SELECTIVE),
            num_cores=NUM_CORES),
        "invisi continuous (abort)": paper_config(
            ConsistencyModel.SC,
            SpeculationConfig(mode=SpeculationMode.CONTINUOUS, num_checkpoints=2),
            num_cores=NUM_CORES),
        "invisi continuous (CoV)": paper_config(
            ConsistencyModel.SC,
            SpeculationConfig(mode=SpeculationMode.CONTINUOUS, num_checkpoints=2,
                              violation_policy=ViolationPolicy.COMMIT_ON_VIOLATE),
            num_cores=NUM_CORES),
    }


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "apache"
    trace = build_trace(workload, num_threads=NUM_CORES,
                        ops_per_thread=OPS_PER_THREAD, seed=13)
    print(f"workload: {workload}, {NUM_CORES} cores, "
          f"{trace.total_ops()} operations")

    results = {name: simulate(config, trace, warmup_fraction=0.2)
               for name, config in build_configs().items()}
    baseline = results["sc (conventional)"]

    rows = []
    for name, result in results.items():
        stats = result.aggregate()
        accounted = max(1, stats.total_accounted())
        rows.append([
            name,
            f"{result.speedup_over(baseline):.2f}x",
            f"{100 * result.speculation_fraction():.0f}%",
            stats.speculations,
            stats.aborts,
            stats.cov_commits,
            f"{100 * stats.violation / accounted:.1f}%",
        ])
    print()
    print(format_table(
        ["configuration", "speedup vs SC", "time speculating", "episodes",
         "aborts", "CoV commits", "violation cycles"],
        rows, title="Continuous vs selective speculation"))

    print()
    print("Continuous speculation keeps every instruction inside a speculative "
          "chunk (close to 100% of cycles), so it aborts far more often than "
          "selective speculation.  Deferring the conflicting request "
          "(commit-on-violate) converts most of those aborts into commits.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A hand-built lock hand-off scenario: violations made visible.

Instead of a generated workload, this example builds an explicit four-core
trace in which every core repeatedly acquires the same spinlock, update a
shared counter protected by it, and release the lock.  It then shows, step
by step, what each design does with the resulting coherence traffic:

* conventional RMO stalls at every acquire fence and atomic miss,
* InvisiFence-Selective speculates past them and occasionally rolls back
  when the other core's acquire invalidates a speculatively accessed block,
* the commit-on-violate policy defers that invalidation instead.

This is also a template for writing custom traces against the public API.

Run with::

    python examples/lock_contention.py
"""

from repro import (
    ConsistencyModel,
    SpeculationConfig,
    SpeculationMode,
    Trace,
    MultiThreadedTrace,
    ViolationPolicy,
    atomic,
    compute,
    fence,
    load,
    paper_config,
    simulate,
    store,
)
from repro.stats import format_table

LOCK = 0x10000          # the spinlock word
COUNTER = 0x20000       # shared data protected by the lock
PRIVATE_BASE = 0x100000

CRITICAL_SECTIONS = 60
THINK_TIME = 40


def critical_section(core_id: int, iteration: int):
    """One acquire / update / release round plus private 'think' work.

    The think time varies per core and per iteration so the two cores drift
    in and out of phase; perfectly regular rounds would settle into a
    lock-step pattern in which acquires always land just after the other
    core committed, hiding the violations this example wants to show.
    """
    private = PRIVATE_BASE + core_id * 0x100000 + iteration * 64
    think = THINK_TIME + (core_id * 131 + iteration * 37) % 150
    return [
        atomic(LOCK, label="lock_acquire"),
        fence(label="acquire_fence"),
        load(COUNTER, label="critical_read"),
        store(COUNTER, label="critical_write"),
        store(LOCK, label="lock_release"),
        load(private, label="private"),
        store(private, label="private"),
        compute(think),
    ]


def build_trace(num_cores: int = 4) -> MultiThreadedTrace:
    traces = []
    for core_id in range(num_cores):
        ops = []
        # Stagger the cores slightly so acquires interleave.
        ops.append(compute(1 + 17 * core_id))
        for i in range(CRITICAL_SECTIONS):
            ops.extend(critical_section(core_id, i))
        traces.append(Trace(ops, thread_id=core_id))
    return MultiThreadedTrace(traces, name="lock-contention")


def main() -> None:
    trace = build_trace()
    configs = {
        "rmo (conventional)": paper_config(ConsistencyModel.RMO, num_cores=4),
        "invisi_rmo (abort)": paper_config(
            ConsistencyModel.RMO, SpeculationConfig(mode=SpeculationMode.SELECTIVE),
            num_cores=4),
        "invisi_rmo (commit-on-violate)": paper_config(
            ConsistencyModel.RMO,
            SpeculationConfig(mode=SpeculationMode.SELECTIVE,
                              violation_policy=ViolationPolicy.COMMIT_ON_VIOLATE),
            num_cores=4),
    }

    results = {name: simulate(config, trace) for name, config in configs.items()}
    baseline = results["rmo (conventional)"]

    rows = []
    for name, result in results.items():
        stats = result.aggregate()
        rows.append([
            name,
            round(result.cycles_per_core()),
            f"{result.speedup_over(baseline):.2f}x",
            stats.sb_drain,
            stats.speculations,
            stats.aborts,
            stats.cov_commits,
            stats.violation,
        ])
    print(format_table(
        ["configuration", "cycles/core", "speedup", "SB-drain cycles",
         "episodes", "aborts", "CoV commits", "violation cycles"],
        rows, title=f"Four cores contending on one lock "
                    f"({CRITICAL_SECTIONS} critical sections each)"))

    print()
    print("Conventional RMO pays a store-buffer drain at every acquire fence "
          "and a full miss latency whenever the lock or counter was last "
          "written by the other core.  InvisiFence hides those stalls; the "
          "contended lock block occasionally triggers a violation, which the "
          "commit-on-violate policy resolves without discarding work.")


if __name__ == "__main__":
    main()

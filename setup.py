"""Setuptools entry point.

Kept alongside ``pyproject.toml`` (which holds all project metadata) so
that ``pip install -e .`` works in offline environments whose setuptools
predates native wheel support (the legacy ``setup.py develop`` code path
needs this file).
"""

from setuptools import setup

setup()

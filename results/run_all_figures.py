"""Run every figure experiment and write the formatted tables to disk.

This is the script used to produce results/full_run.txt (the numbers quoted
in EXPERIMENTS.md).  Scale is controlled by the constants below.

The whole figure suite runs through one shared campaign: every
(configuration, workload, seed) cell any figure needs is prefetched up
front -- in parallel with ``--jobs N`` and served from the persistent
result cache (results/cache/) when already simulated -- and the figure
drivers then only format memoized results.
"""
import argparse, time
from repro.campaign import ResultCache
from repro.experiments import (CONFIG_NAMES, ExperimentSettings, ExperimentRunner,
                               run_figure1, run_figure8, run_figure9, run_figure10,
                               run_figure11, run_figure12, run_scaling,
                               run_scenarios, figure2_table, figure4_table,
                               figure5_table, figure6_table, figure7_table)
from repro.scenarios import scenario_names

NUM_CORES = 16
OPS_PER_THREAD = 6000
SEEDS = (1,)

def main(out_path, jobs=1, cache_dir="results/cache"):
    settings = ExperimentSettings(num_cores=NUM_CORES, ops_per_thread=OPS_PER_THREAD,
                                  seeds=SEEDS)
    cache = ResultCache(cache_dir) if cache_dir else None
    runner = ExperimentRunner(settings, jobs=jobs, cache=cache)
    sections = []
    start = time.time()
    # The union of every figure's configurations is the full registry; one
    # prefetch call fans all missing cells out over the worker pool.
    runner.prefetch(CONFIG_NAMES)
    print(f"campaign: {runner.executor.last_report.describe(cache)} "
          f"in {time.time()-start:.0f}s (jobs={jobs})", flush=True)
    for name, fn in [("figure1", run_figure1), ("figure8", run_figure8),
                     ("figure9", run_figure9), ("figure10", run_figure10),
                     ("figure11", run_figure11), ("figure12", run_figure12)]:
        t0 = time.time()
        result = fn(settings, runner)
        sections.append(result.format())
        print(f"{name} done in {time.time()-t0:.0f}s", flush=True)
    t0 = time.time()
    scenario_result = run_scenarios(settings, runner,
                                    scenarios=scenario_names())
    sections.append(scenario_result.format())
    print(f"scenarios done in {time.time()-t0:.0f}s", flush=True)
    t0 = time.time()
    # The machine-scaling study sweeps geometry (4..64 cores), so it runs
    # its own per-core-count campaigns against the same shared cache.
    scaling_result = run_scaling(settings, jobs=jobs, cache=cache)
    sections.append(scaling_result.format())
    print(f"scaling done in {time.time()-t0:.0f}s "
          f"({scaling_result.report.describe(cache)})", flush=True)
    fig10 = run_figure10(settings, runner)
    sections.append(figure2_table())
    sections.append(figure4_table(fig10))
    sections.append(figure5_table())
    sections.append(figure6_table())
    sections.append(figure7_table())
    text = ("InvisiFence reproduction -- full experiment run\n"
            f"cores={NUM_CORES} ops/thread={OPS_PER_THREAD} seeds={SEEDS} "
            f"warmup={settings.warmup_fraction}\n\n"
            + "\n\n".join(sections) + "\n")
    with open(out_path, "w") as handle:
        handle.write(text)
    print(f"total {time.time()-start:.0f}s -> {out_path}")

if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("out", nargs="?", default="results/full_run.txt")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for missing cells")
    parser.add_argument("--cache-dir", default="results/cache",
                        help="result cache directory ('' disables caching)")
    args = parser.parse_args()
    main(args.out, jobs=args.jobs, cache_dir=args.cache_dir)

"""Run every registered study and write the formatted tables to disk.

This is the script used to produce ``results/full_run.txt`` (regenerated,
not committed -- see EXPERIMENTS.md for how to interpret and rebuild it).
Scale is controlled by the constants below; ``--quick`` drops to a smoke
scale for sanity checks.

The whole suite runs through **one** deduplicated campaign plan: every
study's grid (figures 1/8/9/10/11/12, both ablations, scaling, scenarios)
is unioned by repro.studies.compile_plan, shared cells (e.g. the
conventional-SC baseline that figures 8/9/10/12 normalise against) are
simulated exactly once -- in parallel with ``--jobs N`` and served from
the persistent result cache (results/cache/) when already simulated --
and the study builders then only format memoized results.  Each study
also emits JSON + CSV artifacts next to this script.
"""
import argparse
import time

import repro.experiments  # noqa: F401  (imports register the studies)
from repro import compile_study_plan, open_cache, run_study
from repro.experiments import (ExperimentSettings, figure2_table, figure4_table,
                               figure5_table, figure6_table, figure7_table)
from repro.studies import DEFAULT_STUDY_REGISTRY

NUM_CORES = 16
OPS_PER_THREAD = 6000
SEEDS = (1,)

#: presentation order (the classic figure order, then the newer studies).
STUDY_ORDER = ("figure1", "figure8", "figure9", "figure10", "figure11",
               "figure12", "scenarios", "scaling", "ablation-sb",
               "ablation-cov")

def main(out_path, jobs=1, cache_url="results/cache", quick=False,
         artifacts_dir="results"):
    settings = ExperimentSettings(
        num_cores=4 if quick else NUM_CORES,
        ops_per_thread=800 if quick else OPS_PER_THREAD,
        seeds=SEEDS)
    cache = open_cache(cache_url) if cache_url else None
    specs = [DEFAULT_STUDY_REGISTRY.get(name) for name in STUDY_ORDER]
    leftover = [s for s in DEFAULT_STUDY_REGISTRY.specs() if s.name not in STUDY_ORDER]
    specs.extend(leftover)  # user-registered studies ride along

    # One prefetch: the union of every study's cells, deduplicated, fanned
    # out over the worker pool, and persisted in the shared cache.
    plan = compile_study_plan(specs, settings)
    study_runner = plan.runner(jobs=jobs, cache=cache)
    start = time.time()
    report = plan.execute(study_runner)
    print(f"campaign: {plan.describe()}; {report.describe(cache)} "
          f"in {time.time()-start:.0f}s (jobs={jobs})", flush=True)

    sections = []
    results = {}
    for spec in specs:
        t0 = time.time()
        result = run_study(spec, settings, study_runner=study_runner,
                           out_dir=artifacts_dir)
        results[spec.name] = result
        sections.append(result.format())
        print(f"{spec.name} done in {time.time()-t0:.0f}s", flush=True)
    sections.append(figure2_table())
    sections.append(figure4_table(results["figure10"]))
    sections.append(figure5_table())
    sections.append(figure6_table())
    sections.append(figure7_table())
    text = ("InvisiFence reproduction -- full experiment run\n"
            f"cores={settings.num_cores} ops/thread={settings.ops_per_thread} "
            f"seeds={settings.seeds} warmup={settings.warmup_fraction}\n\n"
            + "\n\n".join(sections) + "\n")
    with open(out_path, "w") as handle:
        handle.write(text)
    print(f"total {time.time()-start:.0f}s -> {out_path} "
          f"(+ JSON/CSV artifacts under {artifacts_dir}/)")

if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("out", nargs="?", default="results/full_run.txt")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for missing cells")
    parser.add_argument("--cache", "--cache-dir", dest="cache",
                        default="results/cache",
                        help="result cache URL (dir://PATH, sqlite://FILE) or "
                             "directory path ('' disables caching)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke scale (4 cores, 800 ops) instead of the "
                             "full 16-core run")
    parser.add_argument("--artifacts-dir", default="results",
                        help="where per-study JSON/CSV artifacts are written")
    args = parser.parse_args()
    main(args.out, jobs=args.jobs, cache_url=args.cache, quick=args.quick,
         artifacts_dir=args.artifacts_dir)

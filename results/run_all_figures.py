"""Run every figure experiment and write the formatted tables to disk.

This is the script used to produce results/full_run.txt (the numbers quoted
in EXPERIMENTS.md).  Scale is controlled by the constants below.
"""
import sys, time
from repro.experiments import (ExperimentSettings, ExperimentRunner, run_figure1,
                               run_figure8, run_figure9, run_figure10, run_figure11,
                               run_figure12, figure2_table, figure4_table,
                               figure5_table, figure6_table, figure7_table)

NUM_CORES = 16
OPS_PER_THREAD = 6000
SEEDS = (1,)

def main(out_path):
    settings = ExperimentSettings(num_cores=NUM_CORES, ops_per_thread=OPS_PER_THREAD,
                                  seeds=SEEDS)
    runner = ExperimentRunner(settings)
    sections = []
    start = time.time()
    for name, fn in [("figure1", run_figure1), ("figure8", run_figure8),
                     ("figure9", run_figure9), ("figure10", run_figure10),
                     ("figure11", run_figure11), ("figure12", run_figure12)]:
        t0 = time.time()
        result = fn(settings, runner)
        sections.append(result.format())
        print(f"{name} done in {time.time()-t0:.0f}s", flush=True)
    fig10 = run_figure10(settings, runner)
    sections.append(figure2_table())
    sections.append(figure4_table(fig10))
    sections.append(figure5_table())
    sections.append(figure6_table())
    sections.append(figure7_table())
    text = ("InvisiFence reproduction -- full experiment run\n"
            f"cores={NUM_CORES} ops/thread={OPS_PER_THREAD} seeds={SEEDS} "
            f"warmup={settings.warmup_fraction}\n\n"
            + "\n\n".join(sections) + "\n")
    with open(out_path, "w") as handle:
        handle.write(text)
    print(f"total {time.time()-start:.0f}s -> {out_path}")

if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "results/full_run.txt")

"""Tests for the ablation/sensitivity experiment drivers (tiny scale)."""

import pytest

from repro.experiments.ablation import (
    run_cov_timeout_ablation,
    run_store_buffer_ablation,
)
from repro.experiments.common import ExperimentRunner, ExperimentSettings

SETTINGS = ExperimentSettings.quick(num_cores=4, ops_per_thread=600,
                                    workloads=("apache",))


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(SETTINGS)


class TestStoreBufferAblation:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return run_store_buffer_ablation(SETTINGS, workload="apache",
                                         sizes=(1, 4, 16), runner=runner)

    def test_all_sizes_present(self, result):
        assert set(result.cycles) == {1, 4, 16}

    def test_relative_runtime_anchored_at_largest(self, result):
        relative = result.relative_runtime()
        assert relative[16] == pytest.approx(1.0)
        assert all(value >= 0.9 for value in relative.values())

    def test_tiny_buffer_not_faster_than_large(self, result):
        assert result.cycles[1] >= result.cycles[16] * 0.99

    def test_smallest_sufficient_capacity_bounded(self, result):
        assert result.smallest_sufficient_capacity(tolerance=0.10) in (1, 4, 16)

    def test_format_output(self, result):
        text = result.format()
        assert "store-buffer capacity" in text
        assert "SB entries" in text


class TestCovTimeoutAblation:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return run_cov_timeout_ablation(SETTINGS, workload="apache",
                                        timeouts=(0, 2000), runner=runner)

    def test_rows_present(self, result):
        assert set(result.cycles) == {0, 2000}
        assert set(result.outcomes) == {0, 2000}

    def test_baseline_is_abort_policy(self, result):
        aborts, cov_commits, _ = result.outcomes[0]
        assert cov_commits >= 0
        # With the abort policy no deferral-driven commits are counted as
        # CoV unless the forward-progress guard engaged.
        assert aborts >= 0

    def test_cov_never_increases_violation(self, result):
        _, _, violation_abort = result.outcomes[0]
        _, _, violation_cov = result.outcomes[2000]
        assert violation_cov <= violation_abort

    def test_format_output(self, result):
        text = result.format()
        assert "commit-on-violate timeout" in text
        assert "abort-immediately" in text

"""Directed tests for INVISIFENCE-CONTINUOUS."""

import pytest

from repro.config import ConsistencyModel, SpeculationConfig, SpeculationMode
from repro.errors import ConfigurationError
from repro.trace.ops import atomic, compute, fence, load, store
from tests.conftest import block_addr, continuous_config, make_system, run_ops, run_system, tiny_config

A = block_addr(1000)
B = block_addr(2000)
SHARED = block_addr(500)


def single_core(ops, config):
    result = run_ops([ops, [compute(1)]], config)
    return result, result.core_stats[0]


class TestConfiguration:
    def test_requires_two_checkpoints(self):
        spec = SpeculationConfig(mode=SpeculationMode.CONTINUOUS, num_checkpoints=1)
        config = tiny_config(ConsistencyModel.SC, spec)
        with pytest.raises(ConfigurationError):
            make_system([[compute(1)], [compute(1)]], config)


class TestChunking:
    def test_everything_executes_speculatively(self):
        config = continuous_config(min_chunk_size=20)
        ops = [load(block_addr(4000 + i)) for i in range(30)] + [compute(100)]
        result, stats = single_core(ops, config)
        assert stats.speculations >= 1
        # Nearly the whole execution is covered by speculation.
        assert stats.spec_cycles > 0.5 * stats.finish_time

    def test_chunks_commit_incrementally(self):
        config = continuous_config(min_chunk_size=10)
        ops = []
        for i in range(80):
            ops.append(load(block_addr(4000 + i)))
            ops.append(compute(2))
        result, stats = single_core(ops, config)
        # Many chunks committed, not just the final one at trace end.
        assert stats.commits >= 3

    def test_fences_and_atomics_never_stall(self):
        config = continuous_config(min_chunk_size=10)
        ops = []
        for i in range(10):
            ops.extend([store(block_addr(4000 + i)), fence(), atomic(block_addr(100)),
                        compute(5)])
        ops.append(compute(5000))
        result, stats = single_core(ops, config)
        assert stats.sb_drain == 0

    def test_at_most_two_checkpoints_in_flight(self):
        config = continuous_config(min_chunk_size=5)
        ops = [load(block_addr(4000 + i)) for i in range(60)]
        system = make_system([ops, [compute(1)]], config)
        controller = system.cores[0].controller
        max_seen = 0
        original = controller.process_op

        def wrapped(op, now):
            nonlocal max_seen
            result = original(op, now)
            max_seen = max(max_seen, controller.checkpoints_in_use)
            return result

        controller.process_op = wrapped
        run_system(system)
        assert max_seen <= 2

    def test_continuous_beats_conventional_sc_on_sync_heavy_trace(self):
        ops = []
        for i in range(15):
            ops.extend([store(block_addr(4000 + i)), load(block_addr(6000 + i)),
                        atomic(block_addr(100)), compute(5)])
        conventional = run_ops([list(ops), [compute(1)]],
                               tiny_config(ConsistencyModel.SC))
        continuous = run_ops([list(ops), [compute(1)]], continuous_config())
        assert (continuous.core_stats[0].finish_time
                < conventional.core_stats[0].finish_time)


class TestViolations:
    def _conflict_ops(self):
        core0 = [load(SHARED)] + [compute(20)] * 40 + [load(B)]
        core1 = [compute(200), store(SHARED), compute(10)]
        return [core0, core1]

    def test_conflict_aborts_and_replays(self):
        config = continuous_config(num_cores=2, min_chunk_size=200,
                                   memory_latency=600, hop_latency=50)
        result = run_ops(self._conflict_ops(), config)
        stats = result.core_stats[0]
        assert stats.aborts >= 1
        assert stats.violation > 0

    def test_accounting_identity_despite_aborts(self):
        config = continuous_config(num_cores=2, min_chunk_size=200,
                                   memory_latency=600, hop_latency=50)
        result = run_ops(self._conflict_ops(), config)
        for stats in result.core_stats:
            assert stats.total_accounted() == stats.finish_time

    def test_conflict_on_active_chunk_only_keeps_older_chunk(self):
        # A conflict against a block touched only by the newest chunk should
        # not discard more work than that chunk.
        config = continuous_config(num_cores=2, min_chunk_size=10,
                                   memory_latency=600, hop_latency=50)
        core0 = [load(block_addr(4000 + i)) for i in range(30)]
        core0 += [load(SHARED)] + [compute(30)] * 20
        core1 = [compute(400), store(SHARED)]
        result = run_ops([core0, core1], config)
        stats = result.core_stats[0]
        if stats.aborts:
            assert stats.replayed_ops < 40


class TestTraceEnd:
    def test_final_chunk_commits_at_trace_end(self):
        config = continuous_config(min_chunk_size=1000)
        ops = [load(block_addr(4000 + i)) for i in range(10)]
        system = make_system([ops, [compute(1)]], config)
        result = run_system(system)
        stats = result.core_stats[0]
        assert stats.commits >= 1
        l1 = system.memory.l1(0)
        assert not any(block.speculative for block in l1.blocks())

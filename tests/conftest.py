"""Shared fixtures and helpers for the test suite.

Most controller-level tests build a tiny system by hand: a list of
operations per core, a small machine configuration, and the
``build_system`` wiring.  The helpers here keep those tests short and
deterministic.
"""

from __future__ import annotations

from typing import Optional, Sequence

import pytest

from repro.config import (
    CacheConfig,
    ConsistencyModel,
    InterconnectConfig,
    SpeculationConfig,
    SpeculationMode,
    SystemConfig,
    ViolationPolicy,
)
from repro.engine.simulator import Simulator
from repro.engine.system import System, build_system
from repro.trace.ops import MemOp
from repro.trace.trace import MultiThreadedTrace, Trace


# ---------------------------------------------------------------------------
# Tiny machine configurations
# ---------------------------------------------------------------------------

def tiny_config(consistency: ConsistencyModel = ConsistencyModel.SC,
                speculation: Optional[SpeculationConfig] = None,
                num_cores: int = 2,
                l1_blocks: int = 64,
                l1_assoc: int = 2,
                hop_latency: int = 10,
                memory_latency: int = 40,
                store_prefetch_lead: int = 0) -> SystemConfig:
    """A small, fast machine with simple round-number latencies."""
    spec = speculation if speculation is not None else SpeculationConfig()
    mesh = 2
    while mesh * mesh < num_cores:
        mesh += 1
    return SystemConfig(
        num_cores=num_cores,
        consistency=consistency,
        speculation=spec,
        l1=CacheConfig(size_bytes=l1_blocks * 64, associativity=l1_assoc,
                       block_bytes=64, hit_latency=2),
        l2=CacheConfig(size_bytes=64 * 1024, associativity=8, block_bytes=64,
                       hit_latency=10),
        interconnect=InterconnectConfig(mesh_width=mesh, mesh_height=mesh,
                                        hop_latency=hop_latency),
        memory_latency=memory_latency,
        directory_latency=4,
        clean_writeback_latency=8,
        store_prefetch_lead=store_prefetch_lead,
    )


def selective_config(model: ConsistencyModel = ConsistencyModel.SC,
                     num_checkpoints: int = 1,
                     violation_policy: ViolationPolicy = ViolationPolicy.ABORT,
                     cov_timeout: int = 4000,
                     **kwargs) -> SystemConfig:
    """Tiny config running InvisiFence-Selective."""
    spec = SpeculationConfig(mode=SpeculationMode.SELECTIVE,
                             num_checkpoints=num_checkpoints,
                             violation_policy=violation_policy,
                             cov_timeout=cov_timeout)
    return tiny_config(model, spec, **kwargs)


def continuous_config(violation_policy: ViolationPolicy = ViolationPolicy.ABORT,
                      min_chunk_size: int = 20,
                      cov_timeout: int = 4000,
                      **kwargs) -> SystemConfig:
    """Tiny config running InvisiFence-Continuous."""
    spec = SpeculationConfig(mode=SpeculationMode.CONTINUOUS,
                             num_checkpoints=2,
                             min_chunk_size=min_chunk_size,
                             violation_policy=violation_policy,
                             cov_timeout=cov_timeout)
    return tiny_config(ConsistencyModel.SC, spec, **kwargs)


def aso_config(**kwargs) -> SystemConfig:
    """Tiny config running the ASO baseline."""
    spec = SpeculationConfig(mode=SpeculationMode.ASO, num_checkpoints=2,
                             aso_checkpoint_interval=16)
    return tiny_config(ConsistencyModel.SC, spec, **kwargs)


# ---------------------------------------------------------------------------
# Trace and system construction helpers
# ---------------------------------------------------------------------------

def make_trace(ops_by_core: Sequence[Sequence[MemOp]],
               name: str = "test") -> MultiThreadedTrace:
    """Build a multi-threaded trace from per-core op lists."""
    traces = [Trace(list(ops), thread_id=i) for i, ops in enumerate(ops_by_core)]
    return MultiThreadedTrace(traces, name=name)


def make_system(ops_by_core: Sequence[Sequence[MemOp]],
                config: SystemConfig) -> System:
    """Wire a system for hand-written per-core op lists."""
    return build_system(config, make_trace(ops_by_core))


def run_system(system: System):
    """Run a hand-built system to completion and return the result."""
    return Simulator(system).run()


def run_ops(ops_by_core: Sequence[Sequence[MemOp]], config: SystemConfig):
    """Convenience: build and run in one step."""
    return run_system(make_system(ops_by_core, config))


# Block-aligned addresses used throughout the directed tests.
def block_addr(index: int) -> int:
    """The byte address of test block ``index`` (64-byte blocks)."""
    return index * 64


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def sc_config() -> SystemConfig:
    return tiny_config(ConsistencyModel.SC)


@pytest.fixture
def tso_config() -> SystemConfig:
    return tiny_config(ConsistencyModel.TSO)


@pytest.fixture
def rmo_config() -> SystemConfig:
    return tiny_config(ConsistencyModel.RMO)


@pytest.fixture
def invisi_sc_config() -> SystemConfig:
    return selective_config(ConsistencyModel.SC)


@pytest.fixture
def invisi_rmo_config() -> SystemConfig:
    return selective_config(ConsistencyModel.RMO)

"""Backend conformance, lease claiming, sharding, kernel-hash invalidation.

One parameterized suite runs every :class:`CacheBackend` implementation
through the same contract (round-trip, stats, leases), then backend-
specific tests pin the concurrent-writer safety of the sqlite shard, the
deterministic key routing of the sharded composite, the URL grammar, the
kernel-source invalidation scoping, and the byte-identity of a study
drained by two cooperating workers versus a serial run.
"""

import json
import multiprocessing
import threading

import pytest

from repro import compile_study_plan, open_cache
from repro.campaign import (
    CampaignExecutor,
    CacheStats,
    DirectoryBackend,
    QueueWorker,
    ResultCache,
    ShardedBackend,
    SqliteBackend,
    backend_from_url,
    cache_key,
    expand_jobs,
)
from repro.campaign.versions import (
    SOURCE_GROUPS,
    clear_fingerprint_cache,
    group_fingerprint,
    groups_for,
    kernel_versions,
)
from repro.engine.results import RunResult
from repro.engine.simulator import simulate
from repro.errors import ConfigurationError, ReproError
from repro.experiments.common import ExperimentSettings, make_config
from repro.workloads.registry import build_trace, resolve_spec

SETTINGS = ExperimentSettings.quick(num_cores=2, ops_per_thread=200,
                                    workloads=("apache",))

#: hex keys routed to different shards of a 3-way composite.
KEYS = ["%08x%s" % (n, "ab" * 28) for n in range(9)]


@pytest.fixture(scope="module")
def tiny_result():
    trace = build_trace("apache", num_threads=2, ops_per_thread=150, seed=7)
    return simulate(make_config("sc", SETTINGS), trace, warmup_fraction=0.2)


def _dir_backend(tmp):
    return DirectoryBackend(tmp / "store")


def _sqlite_backend(tmp):
    return SqliteBackend(tmp / "store.sqlite")


def _sharded_backend(tmp):
    return ShardedBackend([DirectoryBackend(tmp / "shard0"),
                           SqliteBackend(tmp / "shard1.sqlite"),
                           DirectoryBackend(tmp / "shard2")])


BACKENDS = {"dir": _dir_backend, "sqlite": _sqlite_backend,
            "sharded": _sharded_backend}


@pytest.fixture(params=sorted(BACKENDS))
def backend(request, tmp_path):
    return BACKENDS[request.param](tmp_path)


class TestBackendConformance:
    """Every backend satisfies the same storage + lease contract."""

    def test_round_trip(self, backend, tiny_result):
        key = KEYS[0]
        assert backend.get(key) is None
        assert not backend.contains(key)
        backend.put(key, tiny_result)
        assert backend.contains(key)
        loaded = backend.get(key)
        assert loaded is not None
        assert loaded.to_dict() == tiny_result.to_dict()
        assert len(backend) == 1

    def test_stats_tally_hits_misses_stores(self, backend, tiny_result):
        backend.get(KEYS[0])
        backend.put(KEYS[0], tiny_result)
        backend.get(KEYS[0])
        backend.get(KEYS[1])
        assert backend.stats == CacheStats(hits=1, misses=2, stores=1)

    def test_backend_stats_shape(self, backend):
        entries = backend.backend_stats()
        expected = len(backend.shards) if isinstance(backend, ShardedBackend) \
            else 1
        assert len(entries) == expected
        for label, stats in entries:
            assert isinstance(label, str) and isinstance(stats, CacheStats)

    def test_clear_removes_everything(self, backend, tiny_result):
        for key in KEYS[:3]:
            backend.put(key, tiny_result)
        assert backend.clear() == 3
        assert len(backend) == 0
        assert backend.get(KEYS[0]) is None

    def test_lease_claim_and_contention(self, backend):
        key = KEYS[2]
        assert backend.try_claim(key, "w1", ttl=60.0) == "new"
        assert backend.lease_owner(key) == "w1"
        # a live peer's lease cannot be taken...
        assert backend.try_claim(key, "w2", ttl=60.0) is None
        # ...but the holder may refresh its own claim.
        assert backend.try_claim(key, "w1", ttl=60.0) == "new"

    def test_expired_lease_is_taken_over(self, backend):
        key = KEYS[3]
        assert backend.try_claim(key, "crashed", ttl=0.0) == "new"
        assert backend.lease_owner(key) is None  # already expired
        assert backend.try_claim(key, "w2", ttl=60.0) == "expired"
        assert backend.lease_owner(key) == "w2"

    def test_put_clears_the_lease(self, backend, tiny_result):
        key = KEYS[4]
        backend.try_claim(key, "w1", ttl=60.0)
        backend.put(key, tiny_result)
        assert backend.lease_owner(key) is None
        assert backend.try_claim(key, "w2", ttl=60.0) == "new"

    def test_release(self, backend):
        key = KEYS[5]
        backend.try_claim(key, "w1", ttl=60.0)
        backend.release(key, "other")  # not the holder: no-op
        assert backend.lease_owner(key) == "w1"
        backend.release(key, "w1")
        assert backend.lease_owner(key) is None


class TestDirectoryBackend:
    def test_layout_matches_legacy_result_cache(self, tmp_path, tiny_result):
        """The dir backend reads/writes the exact pre-backend file layout."""
        legacy = ResultCache(tmp_path / "cache")
        legacy.put(KEYS[0], tiny_result)
        assert legacy.path_for(KEYS[0]).is_file()
        reopened = DirectoryBackend(tmp_path / "cache")
        assert reopened.get(KEYS[0]).to_dict() == tiny_result.to_dict()

    def test_corrupt_entry_is_a_miss(self, tmp_path, tiny_result):
        backend = DirectoryBackend(tmp_path / "cache")
        backend.put(KEYS[0], tiny_result)
        backend.path_for(KEYS[0]).write_text("{not json", encoding="utf-8")
        assert backend.get(KEYS[0]) is None
        assert backend.stats.misses == 1


def _sqlite_writer(args):
    path, text, start = args
    backend = SqliteBackend(path)
    result = RunResult.from_json(text)
    for n in range(start, start + 10):
        backend.put("%064x" % n, result)
    backend.put("f" * 64, result)  # every writer races on this one
    return backend.stats.stores


class TestSqliteBackend:
    def test_concurrent_writer_processes(self, tmp_path, tiny_result):
        """Four processes writing one shard file: no corruption, no loss."""
        path = tmp_path / "shared.sqlite"
        text = tiny_result.to_json()
        with multiprocessing.Pool(4) as pool:
            stores = pool.map(_sqlite_writer,
                              [(path, text, n * 10) for n in range(4)])
        assert stores == [11, 11, 11, 11]
        backend = SqliteBackend(path)
        assert len(backend) == 41  # 4 x 10 distinct + 1 contended
        assert backend.get("f" * 64).to_dict() == tiny_result.to_dict()
        for n in range(40):
            assert backend.contains("%064x" % n)

    def test_survives_reopen(self, tmp_path, tiny_result):
        path = tmp_path / "c.sqlite"
        SqliteBackend(path).put(KEYS[0], tiny_result)
        reopened = SqliteBackend(path)
        assert reopened.get(KEYS[0]).to_dict() == tiny_result.to_dict()


class TestShardedBackend:
    def test_routing_is_deterministic_and_total(self, tmp_path, tiny_result):
        backend = _sharded_backend(tmp_path)
        for key in KEYS:
            backend.put(key, tiny_result)
        assert len(backend) == len(KEYS)
        # each key lives in exactly the shard the router names.
        for key in KEYS:
            owner = backend.shard_for(key)
            assert owner.contains(key)
            assert sum(shard.contains(key)
                       for shard in backend.shards) == 1
        # a fresh composite over the same stores finds every entry.
        reopened = _sharded_backend(tmp_path)
        for key in KEYS:
            assert reopened.get(key).to_dict() == tiny_result.to_dict()

    def test_keys_spread_across_shards(self, tmp_path, tiny_result):
        backend = _sharded_backend(tmp_path)
        for key in KEYS:
            backend.put(key, tiny_result)
        assert all(len(shard) > 0 for shard in backend.shards)

    def test_non_hex_key_rejected(self, tmp_path):
        backend = _sharded_backend(tmp_path)
        with pytest.raises(ConfigurationError):
            backend.shard_for("not-a-content-hash")

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedBackend([])


class TestBackendUrls:
    def test_bare_path_is_a_directory_backend(self, tmp_path):
        backend = backend_from_url(tmp_path / "cache")
        assert isinstance(backend, DirectoryBackend)
        assert backend.root == tmp_path / "cache"

    def test_dir_url(self, tmp_path):
        backend = backend_from_url(f"dir://{tmp_path}/cache")
        assert isinstance(backend, DirectoryBackend)

    def test_sqlite_url(self, tmp_path):
        backend = backend_from_url(f"sqlite://{tmp_path}/c.sqlite")
        assert isinstance(backend, SqliteBackend)

    def test_sharded_urls(self, tmp_path):
        for url, inner in ((f"dir://{tmp_path}/c?shards=3", DirectoryBackend),
                           (f"sqlite://{tmp_path}/c.sqlite?shards=3",
                            SqliteBackend)):
            backend = backend_from_url(url)
            assert isinstance(backend, ShardedBackend)
            assert len(backend.shards) == 3
            assert all(isinstance(shard, inner) for shard in backend.shards)

    def test_bad_urls_rejected(self, tmp_path):
        for url in ("redis://somewhere/cache",
                    f"dir://{tmp_path}/c?shards=0",
                    f"dir://{tmp_path}/c?shards=many",
                    f"dir://{tmp_path}/c?mode=fast",
                    "dir://"):
            with pytest.raises(ConfigurationError):
                backend_from_url(url)


@pytest.fixture()
def scoped_groups(tmp_path, monkeypatch):
    """Repoint two source groups at temp files; restore + decache after."""
    base = tmp_path / "base_src.py"
    selective = tmp_path / "selective_src.py"
    base.write_text("BASE = 1\n", encoding="utf-8")
    selective.write_text("SELECTIVE = 1\n", encoding="utf-8")
    monkeypatch.setitem(SOURCE_GROUPS, "base", (base,))
    monkeypatch.setitem(SOURCE_GROUPS, "selective", (selective,))
    clear_fingerprint_cache()
    yield base, selective
    clear_fingerprint_cache()


class TestKernelVersionInvalidation:
    def test_groups_for_scopes_by_mode_and_spec(self):
        sc = make_config("sc", SETTINGS)
        invisi = make_config("invisi_sc", SETTINGS)
        workload = resolve_spec("apache", SETTINGS.ops_per_thread)
        scenario = resolve_spec("false-sharing-storm",
                                SETTINGS.ops_per_thread)
        assert groups_for(sc, workload) == ("base",)
        assert groups_for(invisi, workload) == ("base", "selective")
        assert groups_for(sc, scenario) == ("base", "scenarios")

    def test_kernel_versions_in_cache_key(self):
        sc = make_config("sc", SETTINGS)
        spec = resolve_spec("apache", SETTINGS.ops_per_thread)
        versions = kernel_versions(sc, spec)
        assert set(versions) == {"base"}
        assert cache_key(sc, spec, 1, 0.2) == \
            cache_key(sc, spec, 1, 0.2, versions=versions)
        assert cache_key(sc, spec, 1, 0.2) != \
            cache_key(sc, spec, 1, 0.2, versions={"base": "0" * 16})

    def test_editing_a_group_changes_only_dependent_keys(self, scoped_groups):
        base, selective = scoped_groups
        sc = make_config("sc", SETTINGS)
        invisi = make_config("invisi_sc", SETTINGS)
        spec = resolve_spec("apache", SETTINGS.ops_per_thread)
        sc_key = cache_key(sc, spec, 1, 0.2)
        invisi_key = cache_key(invisi, spec, 1, 0.2)

        # touch the selective controller: baseline keys survive.
        selective.write_text("SELECTIVE = 2\n", encoding="utf-8")
        clear_fingerprint_cache()
        assert cache_key(sc, spec, 1, 0.2) == sc_key
        assert cache_key(invisi, spec, 1, 0.2) != invisi_key

        # touch the shared substrate: every key changes.
        base.write_text("BASE = 2\n", encoding="utf-8")
        clear_fingerprint_cache()
        assert cache_key(sc, spec, 1, 0.2) != sc_key

    def test_refactor_only_resimulates_affected_cells(self, scoped_groups,
                                                      tmp_path):
        _, selective = scoped_groups
        cache_url = str(tmp_path / "cache")
        jobs = expand_jobs(("sc", "invisi_sc"), ("apache",), (1,))

        executor = CampaignExecutor(SETTINGS, cache=open_cache(cache_url))
        executor.run(jobs)
        assert executor.last_report.simulated == 2

        # unchanged sources: a fresh campaign is fully cache-served.
        executor = CampaignExecutor(SETTINGS, cache=open_cache(cache_url))
        executor.run(jobs)
        assert executor.last_report.cache_hits == 2

        # a selective-controller edit cold-starts only the invisi cell.
        selective.write_text("SELECTIVE = 3\n", encoding="utf-8")
        clear_fingerprint_cache()
        executor = CampaignExecutor(SETTINGS, cache=open_cache(cache_url))
        executor.run(jobs)
        assert executor.last_report.cache_hits == 1
        assert executor.last_report.simulated == 1

    def test_fingerprint_stable_within_process(self):
        assert group_fingerprint("base") == group_fingerprint("base")
        assert len(group_fingerprint("base")) == 16


def _drain(plan, url, worker_id, reports):
    cache = open_cache(url)  # each thread gets its own connection
    worker = QueueWorker(plan, cache, worker_id=worker_id,
                         poll_interval=0.01, max_wait=60.0)
    reports[worker_id] = worker.drain()


def _study_table(plan, cache):
    from repro import run_study

    runner = plan.runner(cache=cache)
    plan.execute(runner)
    spec = plan.specs[0]
    result = run_study(spec, plan.settings, study_runner=runner)
    return [{"name": t.name, "columns": list(t.columns), "rows": t.rows}
            for t in spec.tabulate(result)]


class TestDistributedDrain:
    def test_two_workers_match_serial_byte_for_byte(self, tmp_path):
        settings = ExperimentSettings.quick(num_cores=2, ops_per_thread=200,
                                            workloads=("apache", "barnes"))
        plan = compile_study_plan("figure8", settings)

        serial_url = f"sqlite://{tmp_path}/serial.sqlite"
        serial_table = _study_table(plan, open_cache(serial_url))

        shared_url = f"sqlite://{tmp_path}/shared.sqlite"
        reports = {}
        threads = [threading.Thread(target=_drain,
                                    args=(plan, shared_url, wid, reports))
                   for wid in ("w1", "w2")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # the plan was fully drained, with no duplicated simulation.
        total = sum(r.simulated for r in reports.values())
        assert total == len(plan.unique_cells)

        # cache entries are byte-identical to the serial run's.
        serial = SqliteBackend(tmp_path / "serial.sqlite")
        shared = SqliteBackend(tmp_path / "shared.sqlite")
        serial_rows = dict(serial._connect().execute(
            "SELECT key, body FROM entries"))
        shared_rows = dict(shared._connect().execute(
            "SELECT key, body FROM entries"))
        assert serial_rows == shared_rows

        # and a study run over the drained store simulates nothing while
        # producing the identical table.
        drained_cache = open_cache(shared_url)
        drained_table = _study_table(plan, drained_cache)
        assert json.dumps(drained_table, sort_keys=True) == \
            json.dumps(serial_table, sort_keys=True)
        assert drained_cache.stats.misses == 0

    def test_crashed_workers_cells_are_reissued(self, tmp_path, tiny_result):
        settings = ExperimentSettings.quick(num_cores=2, ops_per_thread=150,
                                            workloads=("apache",))
        plan = compile_study_plan("figure1", settings)
        url = f"sqlite://{tmp_path}/q.sqlite"
        cache = open_cache(url)

        # a "crashed" worker claimed every cell with an already-expired
        # TTL and never finished.
        stale = QueueWorker(plan, cache, worker_id="crashed",
                            lease_ttl=60.0)
        for key, _ in stale._payloads():
            assert cache.try_claim(key, "crashed", ttl=0.0) is not None

        worker = QueueWorker(plan, open_cache(url), worker_id="rescuer",
                             poll_interval=0.01, max_wait=60.0)
        report = worker.drain()
        assert report.simulated == len(plan.unique_cells)
        assert report.reissued == len(plan.unique_cells)

    def test_stuck_peer_lease_times_out(self, tmp_path):
        settings = ExperimentSettings.quick(num_cores=2, ops_per_thread=150,
                                            workloads=("apache",))
        plan = compile_study_plan("figure1", settings)
        url = f"sqlite://{tmp_path}/q.sqlite"
        cache = open_cache(url)
        probe = QueueWorker(plan, cache, worker_id="probe")
        key, _ = probe._payloads()[0]
        # a live peer holds one cell and never finishes it.
        assert cache.try_claim(key, "wedged", ttl=3600.0) == "new"

        worker = QueueWorker(plan, open_cache(url), worker_id="w1",
                             poll_interval=0.01, max_wait=0.2)
        with pytest.raises(ReproError, match="wedged"):
            worker.drain()
        # everything not held was still completed.
        assert worker.last_report.simulated == len(plan.unique_cells) - 1

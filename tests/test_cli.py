"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSimulateCommand:
    def test_simulate_prints_summary(self, capsys):
        code = main(["simulate", "--workload", "barnes", "--config", "invisi_sc",
                     "--cores", "2", "--ops", "400", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "simulation summary" in out
        assert "speedup vs sc" in out
        assert "violation" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "doom"])

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--config", "bogus"])


class TestFigureCommand:
    def test_figure_1_runs_at_tiny_scale(self, capsys):
        code = main(["figure", "1", "--cores", "2", "--ops", "300",
                     "--workloads", "barnes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 1" in out
        assert "barnes" in out

    def test_figure_10_runs_at_tiny_scale(self, capsys):
        code = main(["figure", "10", "--cores", "2", "--ops", "300",
                     "--workloads", "barnes", "--seeds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 10" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "3"])


class TestSweepCommand:
    def test_quick_sweep_populates_cache_then_hits(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code = main(["sweep", "--quick", "--jobs", "2", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "Campaign sweep" in out
        assert "2 simulated, 0 cache hits" in out

        code = main(["sweep", "--quick", "--jobs", "2", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 simulated, 2 cache hits" in out

    def test_no_cache_always_simulates(self, capsys):
        for _ in range(2):
            code = main(["sweep", "--quick", "--no-cache"])
            out = capsys.readouterr().out
            assert code == 0
            assert "2 simulated, 0 cache hits (no cache)" in out

    def test_explicit_cells(self, capsys, tmp_path):
        code = main(["sweep", "--configs", "sc,tso", "--workloads", "barnes",
                     "--seeds", "1,2", "--cores", "2", "--ops", "300",
                     "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 cells" in out
        assert out.count("tso") >= 2

    def test_unknown_config_rejected(self, capsys, tmp_path):
        code = main(["sweep", "--configs", "bogus", "--quick",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 2
        assert "unknown configuration 'bogus'" in capsys.readouterr().err

    def test_nonpositive_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--quick", "--jobs", "0"])


class TestFigureCampaignFlags:
    def test_figure_with_jobs_and_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        args = ["figure", "1", "--cores", "2", "--ops", "300",
                "--workloads", "barnes", "--jobs", "2", "--cache-dir", cache_dir]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "3 simulated, 0 cache hits" in out

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 simulated, 3 cache hits" in out
        assert "Figure 1" in out


class TestTablesCommand:
    def test_tables_print_all_descriptive_figures(self, capsys):
        code = main(["tables"])
        out = capsys.readouterr().out
        assert code == 0
        for token in ("Figure 2", "Figure 4", "Figure 5", "Figure 6", "Figure 7"):
            assert token in out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSimulateCommand:
    def test_simulate_prints_summary(self, capsys):
        code = main(["simulate", "--workload", "barnes", "--config", "invisi_sc",
                     "--cores", "2", "--ops", "400", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "simulation summary" in out
        assert "speedup vs sc" in out
        assert "violation" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "doom"])

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--config", "bogus"])


class TestFigureCommand:
    def test_figure_1_runs_at_tiny_scale(self, capsys):
        code = main(["figure", "1", "--cores", "2", "--ops", "300",
                     "--workloads", "barnes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 1" in out
        assert "barnes" in out

    def test_figure_10_runs_at_tiny_scale(self, capsys):
        code = main(["figure", "10", "--cores", "2", "--ops", "300",
                     "--workloads", "barnes", "--seeds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 10" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "3"])


class TestTablesCommand:
    def test_tables_print_all_descriptive_figures(self, capsys):
        code = main(["tables"])
        out = capsys.readouterr().out
        assert code == 0
        for token in ("Figure 2", "Figure 4", "Figure 5", "Figure 6", "Figure 7"):
            assert token in out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

"""Directed tests for the conventional SC / TSO / RMO controllers.

Each scenario constructs a tiny trace whose ordering behaviour under the
Figure 2 rules is known, runs it on a small machine, and checks how the
cycles were classified.
"""

from repro.config import ConsistencyModel
from repro.trace.ops import atomic, compute, fence, load, store
from tests.conftest import block_addr, run_ops, tiny_config

# Private (per-core) and shared addresses used by the scenarios.
A = block_addr(1000)
B = block_addr(2000)
C = block_addr(3000)


def single_core(ops, config):
    """Run ops on core 0 with an idle second core (the config needs 2+ cores)."""
    result = run_ops([ops, [compute(1)]], config)
    return result, result.core_stats[0]


class TestSC:
    def test_load_after_store_miss_stalls(self):
        config = tiny_config(ConsistencyModel.SC)
        result, stats = single_core([store(A), load(B)], config)
        assert stats.sb_drain > 0

    def test_load_with_empty_store_buffer_does_not_stall(self):
        config = tiny_config(ConsistencyModel.SC)
        # The compute bundle is long enough for the store to complete.
        result, stats = single_core([store(A), compute(2000), load(B)], config)
        assert stats.sb_drain == 0

    def test_atomic_drains_store_buffer(self):
        config = tiny_config(ConsistencyModel.SC)
        result, stats = single_core([store(A), atomic(B)], config)
        assert stats.sb_drain > 0

    def test_fence_is_free_under_sc(self):
        config = tiny_config(ConsistencyModel.SC)
        with_fence, stats_fence = single_core([store(A), fence(), compute(2000)],
                                              config)
        without, stats_plain = single_core([store(A), compute(1), compute(2000)],
                                           config)
        assert stats_fence.sb_drain == 0
        assert abs(stats_fence.finish_time - stats_plain.finish_time) <= 2

    def test_stores_do_not_stall_retirement(self):
        config = tiny_config(ConsistencyModel.SC)
        result, stats = single_core([store(A), store(B), store(C)], config)
        # Stores retire into the FIFO; only the end-of-trace drain waits.
        assert stats.busy == 3
        assert stats.sb_full == 0

    def test_store_burst_fills_fifo(self):
        config = tiny_config(ConsistencyModel.SC)
        # 70 word stores to distinct blocks overflow the 64-entry FIFO.
        ops = [store(block_addr(5000 + i)) for i in range(70)]
        result, stats = single_core(ops, config)
        assert stats.sb_full > 0


class TestTSO:
    def test_load_does_not_wait_for_store_buffer(self):
        config = tiny_config(ConsistencyModel.TSO)
        result, stats = single_core([store(A), load(B)], config)
        assert stats.sb_drain == 0

    def test_fence_drains_store_buffer(self):
        config = tiny_config(ConsistencyModel.TSO)
        result, stats = single_core([store(A), fence()], config)
        assert stats.sb_drain > 0

    def test_atomic_drains_store_buffer(self):
        config = tiny_config(ConsistencyModel.TSO)
        result, stats = single_core([store(A), atomic(B)], config)
        assert stats.sb_drain > 0

    def test_tso_faster_than_sc_on_load_after_store(self):
        ops = [store(A), load(B), load(C)]
        sc, sc_stats = single_core(ops, tiny_config(ConsistencyModel.SC))
        tso, tso_stats = single_core(ops, tiny_config(ConsistencyModel.TSO))
        assert tso_stats.finish_time < sc_stats.finish_time


class TestRMO:
    def test_fence_drains_store_buffer(self):
        config = tiny_config(ConsistencyModel.RMO)
        result, stats = single_core([store(A), fence()], config)
        assert stats.sb_drain > 0

    def test_fence_with_empty_buffer_is_free(self):
        config = tiny_config(ConsistencyModel.RMO)
        result, stats = single_core([fence(), fence()], config)
        assert stats.sb_drain == 0

    def test_atomic_does_not_drain_but_waits_for_own_block(self):
        config = tiny_config(ConsistencyModel.RMO)
        # Atomic to a block already held in Modified state: no stall at all.
        result, stats = single_core([store(A), compute(2000), store(A), atomic(A)],
                                    config)
        assert stats.sb_drain == 0

    def test_atomic_miss_stalls(self):
        config = tiny_config(ConsistencyModel.RMO)
        result, stats = single_core([atomic(B)], config)
        assert stats.sb_drain > 0

    def test_store_hits_bypass_store_buffer(self):
        config = tiny_config(ConsistencyModel.RMO)
        # Bring the block in with a store miss, wait, then store again: the
        # second store hits and a following fence finds an empty buffer.
        result, stats = single_core([store(A), compute(2000), store(A), fence()],
                                    config)
        assert stats.sb_drain == 0

    def test_coalescing_buffer_absorbs_block_bursts(self):
        # A burst writing every word of 6 blocks: the FIFO of TSO sees 48
        # stores, the coalescing buffer of RMO only 6 block entries.
        ops = []
        for i in range(6):
            base = block_addr(7000 + i)
            ops.extend(store(base + w * 8) for w in range(8))
        tso, tso_stats = single_core(list(ops), tiny_config(ConsistencyModel.TSO))
        rmo, rmo_stats = single_core(list(ops), tiny_config(ConsistencyModel.RMO))
        assert rmo_stats.sb_full == 0
        assert rmo_stats.finish_time <= tso_stats.finish_time


class TestOrderingAcrossModels:
    def test_ordering_stall_ranking_on_sync_heavy_trace(self):
        ops = []
        for i in range(20):
            ops.append(store(block_addr(8000 + i)))
            ops.append(atomic(block_addr(100)))
            ops.append(fence())
            ops.extend([load(block_addr(9000 + i)), compute(3)])
        results = {}
        for model in (ConsistencyModel.SC, ConsistencyModel.TSO, ConsistencyModel.RMO):
            result, stats = single_core(list(ops), tiny_config(model))
            results[model] = stats.ordering_stall_cycles()
        assert results[ConsistencyModel.SC] >= results[ConsistencyModel.TSO]
        assert results[ConsistencyModel.TSO] >= results[ConsistencyModel.RMO]

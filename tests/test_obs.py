"""The observability subsystem: recorders, exporters, hooks, and the CLI.

Covers the recorder protocol (``active`` normalization, the
zero-overhead-when-off contract's wiring side), the Chrome trace-event
export shape (``ph``/``ts``/``pid``/``tid``/``name`` on every event, the
metadata track names, abort spans carrying their rollback cause), the
schema-versioned ``telemetry.json`` payload, the batch engine's
introspection counters, :class:`~repro.campaign.cache.CacheStats`, and
the ``repro profile`` / ``--telemetry`` CLI surface.
"""

import json

import pytest

from repro.campaign import Job, ResultCache
from repro.campaign.cache import CacheStats
from repro.campaign.executor import CampaignExecutor
from repro.cli import main
from repro.engine.simulator import simulate
from repro.experiments.common import ExperimentSettings, make_config
from repro.obs import (
    COHERENCE_TID_BASE,
    NULL_RECORDER,
    NullRecorder,
    PID_CAMPAIGN,
    PID_SIM,
    TELEMETRY_SCHEMA_VERSION,
    TraceRecorder,
    active,
    chrome_trace,
    format_profile,
    telemetry_payload,
    write_chrome_trace,
    write_telemetry,
)
from repro.workloads.registry import build_trace

#: a small contended cell that reliably aborts under selective speculation.
_CONTENDED = dict(config="invisi_sc", workload="false-sharing-storm",
                  cores=4, ops=800, seed=3)


def _traced_contended_run():
    """One traced rollback-heavy run (module-scope cache would hide bugs)."""
    settings = ExperimentSettings(num_cores=_CONTENDED["cores"],
                                  ops_per_thread=_CONTENDED["ops"],
                                  seeds=(_CONTENDED["seed"],),
                                  warmup_fraction=0.0)
    trace = build_trace(_CONTENDED["workload"],
                        num_threads=_CONTENDED["cores"],
                        ops_per_thread=_CONTENDED["ops"],
                        seed=_CONTENDED["seed"])
    recorder = TraceRecorder()
    result = simulate(make_config(_CONTENDED["config"], settings), trace,
                      engine="fast", recorder=recorder)
    return recorder, result


class TestRecorderProtocol:
    def test_base_recorder_is_disabled_noop(self):
        rec = NullRecorder()
        assert not rec.enabled
        # Every protocol method is callable and silently does nothing.
        rec.count("x")
        rec.observe("x", 3)
        rec.span(1, 0, "s", 0, 5)
        rec.instant(1, 0, "i", 0)
        rec.sim_span(0, "s", 0, 5)
        rec.sim_instant(0, "i", 0)
        rec.wall_span(0, "s", 0.0, 1.0)
        rec.wall_instant(0, "i")

    def test_active_strips_none_and_disabled(self):
        assert active(None) is None
        assert active(NullRecorder()) is None
        assert active(NULL_RECORDER) is None
        rec = TraceRecorder()
        assert active(rec) is rec

    def test_counters_accumulate(self):
        rec = TraceRecorder()
        rec.count("a")
        rec.count("a", 4)
        assert rec.counters["a"] == 5

    def test_histograms_bucket_by_value(self):
        rec = TraceRecorder()
        for value in (3, 3, 7):
            rec.observe("len", value)
        assert rec.histograms["len"] == {3: 2, 7: 1}

    def test_sim_span_clamps_negative_duration(self):
        rec = TraceRecorder()
        rec.sim_span(0, "s", 10, 4)
        assert rec.spans[0].dur == 0

    def test_wall_span_is_relative_microseconds(self):
        rec = TraceRecorder()
        rec.wall_span(1, "job", rec.wall_origin + 1.0, rec.wall_origin + 3.0)
        span = rec.spans[0]
        assert span.pid == PID_CAMPAIGN
        assert span.ts == pytest.approx(1_000_000, abs=2)
        assert span.dur == pytest.approx(2_000_000, abs=2)


class TestChromeTraceExport:
    def test_every_event_has_required_keys(self):
        recorder, _ = _traced_contended_run()
        events = chrome_trace(recorder)["traceEvents"]
        assert events
        for event in events:
            for key in ("name", "ph", "pid", "tid"):
                assert key in event, event
            if event["ph"] != "M":
                assert "ts" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0 and event["ts"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_metadata_names_processes_and_threads(self):
        recorder, _ = _traced_contended_run()
        events = chrome_trace(recorder)["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e["pid"], e["tid"]): e["args"]["name"]
                 for e in meta}
        assert names[("process_name", PID_SIM, 0)].startswith("simulation")
        assert names[("thread_name", PID_SIM, 0)] == "core 0"
        dir_tid = COHERENCE_TID_BASE + 0
        assert names[("thread_name", PID_SIM, dir_tid)] == "directory/core 0"
        # Metadata precedes data events so viewers name tracks up front.
        first_data = next(i for i, e in enumerate(events) if e["ph"] != "M")
        assert all(e["ph"] == "M" for e in events[:first_data])

    def test_contended_run_emits_abort_span_with_cause(self):
        """The headline hook: rollbacks are visible, labeled, and sized."""
        recorder, result = _traced_contended_run()
        aborts = [span for span in recorder.spans
                  if span.name == "spec.episode" and span.args
                  and span.args.get("outcome") == "abort"]
        assert len(aborts) >= 1
        for span in aborts:
            assert span.args["cause"] in ("external-write", "external-read",
                                          "cov-timeout", "conflict")
            assert span.args["rolled_back"] >= 0
        assert result.aggregate().aborts > 0

    def test_spans_stay_within_the_run_and_nest_on_their_track(self):
        recorder, result = _traced_contended_run()
        episodes = [span for span in recorder.spans
                    if span.name == "spec.episode" and span.pid == PID_SIM]
        assert episodes
        by_track = {}
        for span in episodes:
            by_track.setdefault(span.tid, []).append(span)
        for spans in by_track.values():
            spans.sort(key=lambda s: (s.ts, s.ts + s.dur))
            for earlier, later in zip(spans, spans[1:]):
                # Episodes on one core never interleave: each closes
                # (commit or abort) before the next opens.
                assert earlier.ts + earlier.dur <= later.ts
            for span in spans:
                assert span.ts + span.dur <= result.runtime

    def test_written_trace_is_loadable_json(self, tmp_path):
        recorder, _ = _traced_contended_run()
        recorder.meta["config"] = _CONTENDED["config"]
        path = write_chrome_trace(recorder, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        other = payload["otherData"]
        assert other["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert other["config"] == _CONTENDED["config"]
        assert other["counters"]


class TestTelemetryPayload:
    def test_schema_and_sections(self):
        recorder, _ = _traced_contended_run()
        recorder.meta["engine"] = "fast"
        payload = telemetry_payload(recorder)
        assert payload["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert payload["meta"] == {"engine": "fast"}
        assert payload["counters"]["coherence.transactions"] > 0
        assert payload["spans"]["spec.episode"]["count"] > 0
        assert payload["instants"]
        assert json.dumps(payload)  # JSON-serializable end to end

    def test_histogram_summary_math(self):
        rec = TraceRecorder()
        for value in (2, 2, 8):
            rec.observe("x", value)
        summary = telemetry_payload(rec)["histograms"]["x"]
        assert summary == {"samples": 3, "min": 2, "max": 8,
                           "mean": pytest.approx(4.0),
                           "buckets": {"2": 2, "8": 1}}

    def test_format_profile_lists_all_sections(self):
        recorder, _ = _traced_contended_run()
        recorder.meta["config"] = "invisi_sc"
        text = format_profile(recorder)
        assert "profile: config=invisi_sc" in text
        assert "spans" in text and "spec.episode" in text
        assert "counters:" in text and "coherence.l1_hits" in text
        assert "histograms:" in text

    def test_format_profile_empty_recorder(self):
        assert "no telemetry" in format_profile(TraceRecorder())


class TestBatchIntrospection:
    def test_batch_engine_reports_stretches_and_declines(self):
        settings = ExperimentSettings(num_cores=1, ops_per_thread=2000,
                                      seeds=(3,), warmup_fraction=0.0)
        trace = build_trace("barnes", num_threads=1, ops_per_thread=2000,
                            seed=3)
        recorder = TraceRecorder()
        simulate(make_config("sc", settings), trace, engine="batch",
                 recorder=recorder)
        assert recorder.counters["batch.retired"] > 0
        assert "batch.stretch_len" in recorder.histograms
        assert any(name.startswith("batch.decline.")
                   for name in recorder.counters)


class TestCacheStats:
    def test_cache_tallies_hits_misses_stores(self, tmp_path):
        settings = ExperimentSettings(num_cores=2, ops_per_thread=120,
                                      seeds=(3,), warmup_fraction=0.0)
        cache = ResultCache(tmp_path / "cache")
        executor = CampaignExecutor(settings, jobs=1, cache=cache)
        jobs = [Job("sc", "apache", 3)]
        executor.run(jobs)
        assert cache.stats == CacheStats(hits=0, misses=1, stores=1)
        executor2 = CampaignExecutor(settings, jobs=1, cache=cache)
        executor2.run(jobs)
        assert cache.stats == CacheStats(hits=1, misses=1, stores=1)

    def test_since_returns_the_delta(self):
        before = CacheStats(hits=2, misses=5, stores=4)
        after = CacheStats(hits=3, misses=9, stores=6)
        assert after.since(before) == CacheStats(hits=1, misses=4, stores=2)

    def test_report_carries_stats_and_describe_mentions_stores(self, tmp_path):
        settings = ExperimentSettings(num_cores=2, ops_per_thread=120,
                                      seeds=(3,), warmup_fraction=0.0)
        cache = ResultCache(tmp_path / "cache")
        executor = CampaignExecutor(settings, jobs=1, cache=cache)
        executor.run([Job("sc", "apache", 3)])
        report = executor.last_report
        assert report.cache_stats == CacheStats(hits=0, misses=1, stores=1)
        assert "1 stored" in report.describe(cache)
        # The pinned prefix format is unchanged (CI greps depend on it).
        assert "1 simulated, 0 cache hits" in report.describe(cache)


class TestCLIProfile:
    def test_profile_writes_parseable_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        telemetry_path = tmp_path / "telemetry.json"
        code = main(["profile", "invisi_sc", "false-sharing-storm", "--small",
                     "--trace-out", str(trace_path),
                     "--telemetry-out", str(telemetry_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "[profile] wrote Chrome trace" in out
        payload = json.loads(trace_path.read_text())
        assert payload["traceEvents"]
        telemetry = json.loads(telemetry_path.read_text())
        assert telemetry["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert telemetry["meta"]["workload"] == "false-sharing-storm"

    def test_quiet_suppresses_progress_but_not_results(self, capsys):
        code = main(["-q", "profile", "sc", "apache", "--small"])
        assert code == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "[profile]" not in out

    def test_verbose_adds_event_tallies(self, capsys):
        code = main(["-v", "profile", "sc", "apache", "--small"])
        assert code == 0
        out = capsys.readouterr().out
        assert "spans," in out and "instants," in out

    def test_profile_rejects_unknown_config(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile", "warp-drive", "apache"])


class TestCLITelemetryFlag:
    def test_scenario_run_writes_telemetry_json(self, tmp_path, monkeypatch,
                                                capsys):
        monkeypatch.chdir(tmp_path)
        code = main(["scenario", "run", "false-sharing-storm", "--small",
                     "--configs", "sc", "--no-cache", "--telemetry"])
        assert code == 0
        payload = json.loads((tmp_path / "telemetry.json").read_text())
        assert payload["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert payload["counters"]["campaign.jobs"] == 1
        assert payload["spans"]["job"]["count"] == 1
        assert "[telemetry] wrote telemetry.json" in capsys.readouterr().out

    def test_study_run_writes_telemetry_next_to_artifacts(self, tmp_path,
                                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["-q", "study", "run", "figure8", "--quick", "--no-cache",
                     "--out-dir", str(tmp_path / "out"), "--telemetry"])
        assert code == 0
        payload = json.loads((tmp_path / "out" / "telemetry.json").read_text())
        assert payload["meta"]["studies"] == "figure8"
        assert payload["counters"]["campaign.simulated"] > 0

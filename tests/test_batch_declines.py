"""Per-reason decline coverage for the batch engine's ``_bulk_advance``.

Every decline path returns control to the exact kernel, so these tests
cannot (and do not) check results -- byte identity with the fast engine
is asserted alongside each trigger instead.  What they pin down is that
each reason actually fires on the scenario built to provoke it, and that
its ``batch.decline.<reason>`` counter names stay stable: the bench
report, the profile report, and the cooldown bookkeeping all key on
them.
"""

from repro.engine.simulator import simulate
from repro.engine.system import build_system
from repro.engine.batch.core import _COOLDOWN_BASE, _COOLDOWN_CAP
from repro.experiments.common import ExperimentSettings, make_config
from repro.obs.recorder import TraceRecorder
from repro.trace.ops import atomic, compute, load, store
from repro.trace.trace import MultiThreadedTrace, Trace
from repro.workloads.registry import build_trace
from repro.workloads.spec import WorkloadSpec

#: 4-core contended-but-winnable shape (mirrors the bench's multicore
#: showcase): enough cross-core traffic that the heap head and the epoch
#: bound truncate stretches, enough quiescence that attempts keep coming.
_MC_SPEC = WorkloadSpec(
    name="decline-mc",
    load_fraction=0.45, store_fraction=0.15, compute_fraction=0.40,
    compute_run_mean=2.0,
    sync_interval=1_000_000.0, critical_section_len=1.0,
    num_locks=4, blocks_per_lock=1, lock_affinity=1.0,
    private_blocks=192, shared_blocks=64, shared_fraction=0.02,
    locality=0.995, reuse_window=64,
    store_burst_prob=0.0, migratory_fraction=0.0,
    lockfree_atomic_prob=0.0,
)


def _config(name, cores, ops):
    return make_config(name, ExperimentSettings(
        num_cores=cores, ops_per_thread=ops, seeds=(3,),
        warmup_fraction=0.0))


def _run(config_name, trace):
    """Simulate under batch with a recorder; assert identity with fast."""
    cores = trace.num_threads
    config = _config(config_name, cores, trace.total_ops() // cores)
    recorder = TraceRecorder()
    batch = simulate(config, trace, engine="batch", recorder=recorder)
    fast = simulate(config, trace, engine="fast")
    assert batch.to_json() == fast.to_json()
    return recorder.counters


def _single(ops):
    return MultiThreadedTrace([Trace(ops)], name="crafted")


class TestDeclineReasons:
    def test_short_on_dense_atomics(self):
        """Atomics every couple of ops leave no room for _MIN_STRETCH."""
        ops = [load(0), load(0), atomic(0)] * 40
        counters = _run("sc", _single(ops))
        assert counters["batch.decline.short"] > 0

    def test_residency_on_cold_streaming_loads(self):
        """Never-repeated addresses keep the residency gather failing."""
        ops = [load(index * 64) for index in range(256)]
        counters = _run("sc", _single(ops))
        assert counters["batch.decline.residency"] > 0

    def test_stale_sb_on_back_to_back_stores(self):
        """A store close behind an in-flight store declines (FIFO order)."""
        ops = []
        for _ in range(30):
            ops += [store(0), compute(1), store(0)] + [compute(1)] * 12
        counters = _run("sc", _single(ops))
        assert counters["batch.decline.stale-sb"] > 0

    def test_coalescing_sb_waits_for_empty_buffer(self):
        """A coalescing buffer with live entries is declined outright."""
        ops = []
        for _ in range(30):
            ops += [store(0)] + [compute(1)] * 12
        counters = _run("rmo", _single(ops))
        assert counters["batch.decline.coalescing-sb"] > 0

    def test_head_cap_on_contended_multicore(self):
        """Another core's pending step truncates the B0 pre-cap."""
        trace = build_trace(_MC_SPEC, num_threads=4, ops_per_thread=4000,
                            seed=3)
        counters = _run("sc", trace)
        assert counters["batch.decline.head-cap"] > 0

    def test_horizon_on_contended_multicore(self):
        """Real finish times (stalls included) cross the epoch horizon."""
        trace = build_trace(_MC_SPEC, num_threads=4, ops_per_thread=4000,
                            seed=3)
        counters = _run("sc", trace)
        assert counters["batch.decline.horizon"] > 0

    def test_multicore_still_bulk_retires(self):
        """The declines above must not starve the epoch path entirely."""
        trace = build_trace(_MC_SPEC, num_threads=4, ops_per_thread=4000,
                            seed=3)
        counters = _run("sc", trace)
        assert counters["batch.retired"] > 0


class TestDeclineCooldowns:
    def _core(self):
        trace = build_trace("apache", num_threads=1, ops_per_thread=40,
                            seed=3)
        system = build_system(_config("sc", 1, 40), trace, engine="batch")
        return system.cores[0]

    def test_first_decline_is_free(self):
        """One decline costs nothing beyond its chain-exact pin."""
        core = self._core()
        assert core._decline("short", 7, 5) == 7
        assert core._cool == -1

    def test_consecutive_declines_back_off_exponentially(self):
        core = self._core()
        core._decline("short", 7, 0)
        assert core._decline("short", 7, 100) == 100 + _COOLDOWN_BASE
        assert core._decline("short", 7, 200) == 200 + 2 * _COOLDOWN_BASE
        assert core._cool == 200 + 2 * _COOLDOWN_BASE

    def test_backoff_is_capped(self):
        core = self._core()
        for _ in range(32):
            core._decline("short", 0, 0)
        assert core._backoff["short"] == _COOLDOWN_CAP

    def test_reasons_back_off_independently(self):
        core = self._core()
        core._decline("short", 0, 0)
        core._decline("short", 0, 0)
        # A different reason's first decline is still free.
        assert core._decline("residency", 3, 1) == 3

    def test_chain_pin_wins_when_further_out(self):
        core = self._core()
        core._decline("short", 0, 0)
        assert core._decline("short", 500, 10) == 500
        # The cooldown floor was still raised for cross-chain skipping.
        assert core._cool == 10 + _COOLDOWN_BASE


class TestStaleProfileOptOut:
    def test_recompiled_trace_opts_out_on_token(self):
        """A same-length recompile must drop the profile, not trust it."""
        trace = build_trace("apache", num_threads=1, ops_per_thread=40,
                            seed=3)
        recorder = TraceRecorder()
        system = build_system(_config("sc", 1, 40), trace, engine="batch",
                              recorder=recorder)
        core = system.cores[0]
        assert core._bp is not None
        # Force a rebuild of the compiled arrays at unchanged length --
        # the shape of hazard the per-step length check cannot see.
        core.trace._compiled = None
        core.trace.compiled().arrays()
        system.start()
        assert core._bp is None
        assert recorder.counters["batch.optout.stale-profile"] == 1

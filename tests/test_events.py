"""Tests for the discrete-event queue."""

import pytest

from repro.engine.events import CallbackEvent, EventQueue, StepEvent
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(30, lambda now: fired.append(("c", now)))
        queue.schedule(10, lambda now: fired.append(("a", now)))
        queue.schedule(20, lambda now: fired.append(("b", now)))
        queue.run()
        assert fired == [("a", 10), ("b", 20), ("c", 30)]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        fired = []
        for name in "abc":
            queue.schedule(5, lambda now, n=name: fired.append(n))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_now_tracks_last_popped_event(self):
        queue = EventQueue()
        queue.schedule(42, lambda now: None)
        queue.run()
        assert queue.now == 42

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.schedule(10, lambda now: None)
        queue.run()
        with pytest.raises(SimulationError):
            queue.schedule(5, lambda now: None)

    def test_events_scheduled_during_run_are_processed(self):
        queue = EventQueue()
        fired = []

        def chain(now):
            fired.append(now)
            if now < 30:
                queue.schedule(now + 10, chain)

        queue.schedule(10, chain)
        queue.run()
        assert fired == [10, 20, 30]


class TestCancellation:
    def test_cancelled_events_do_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(10, lambda now: fired.append("cancelled"))
        queue.schedule(20, lambda now: fired.append("kept"))
        event.cancel()
        queue.run()
        assert fired == ["kept"]

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.schedule(10, lambda now: None)
        queue.schedule(20, lambda now: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_empty(self):
        queue = EventQueue()
        assert queue.empty()
        event = queue.schedule(5, lambda now: None)
        assert not queue.empty()
        event.cancel()
        assert queue.empty()


class TestBoundedRun:
    def test_until_bound(self):
        queue = EventQueue()
        fired = []
        for t in (10, 20, 30):
            queue.schedule(t, lambda now: fired.append(now))
        count = queue.run(until=20)
        assert count == 2
        assert fired == [10, 20]
        queue.run()
        assert fired == [10, 20, 30]

    def test_max_events_bound(self):
        queue = EventQueue()
        fired = []
        for t in (10, 20, 30):
            queue.schedule(t, lambda now: fired.append(now))
        queue.run(max_events=1)
        assert fired == [10]

    def test_processed_counter(self):
        queue = EventQueue()
        for t in (1, 2, 3):
            queue.schedule(t, lambda now: None)
        queue.run()
        assert queue.processed == 3

    def test_pop_returns_none_when_empty(self):
        assert EventQueue().pop() is None


class TestTypedEvents:
    def test_schedule_produces_callback_events(self):
        queue = EventQueue()
        event = queue.schedule(5, lambda now: None)
        assert isinstance(event, CallbackEvent)
        assert event.kind == "call"

    def test_step_events_dispatch_to_the_core(self):
        calls = []

        class FakeCore:
            def _step(self, now, generation):
                calls.append((now, generation))

        queue = EventQueue()
        event = queue.schedule_step(7, FakeCore(), generation=3)
        assert isinstance(event, StepEvent)
        assert event.kind == "step"
        queue.run()
        assert calls == [(7, 3)]

    def test_step_events_interleave_with_callbacks_deterministically(self):
        order = []

        class FakeCore:
            def _step(self, now, generation):
                order.append(("step", now))

        queue = EventQueue()
        queue.schedule(10, lambda now: order.append(("call", now)))
        queue.schedule_step(10, FakeCore(), generation=0)
        queue.schedule(5, lambda now: order.append(("call", now)))
        queue.run()
        assert order == [("call", 5), ("call", 10), ("step", 10)]

    def test_step_event_cancel_via_generation_is_a_noop_fire(self):
        fired = []

        class FakeCore:
            _generation = 1

            def _step(self, now, generation):
                if generation == self._generation:
                    fired.append(now)

        core = FakeCore()
        queue = EventQueue()
        queue.schedule_step(5, core, generation=0)  # stale generation
        queue.schedule_step(6, core, generation=1)
        queue.run()
        assert fired == [6]


class TestInlineAccounting:
    def test_note_inline_advances_clock_and_count(self):
        queue = EventQueue()
        queue.schedule(10, lambda now: None)
        queue.run()
        queue.note_inline(25)
        assert queue.now == 25
        assert queue.processed == 2
        with pytest.raises(SimulationError):
            queue.schedule(20, lambda now: None)  # now in the past

    def test_run_count_includes_inline_ops(self):
        queue = EventQueue()

        def batched(now):
            queue.note_inline(now + 1)
            queue.note_inline(now + 2)

        queue.schedule(10, batched)
        assert queue.run() == 3


class TestHeapCompaction:
    def test_cancelled_events_do_not_accumulate_unboundedly(self):
        """Regression: heavy cancellation must keep the heap bounded."""
        queue = EventQueue()
        live = [queue.schedule(1_000_000 + i, lambda now: None)
                for i in range(10)]
        for i in range(10_000):
            queue.schedule(10 + i, lambda now: None).cancel()
        # Lazy deletion alone would leave ~10k dead entries; compaction
        # keeps the heap within a small factor of the live count.
        assert len(queue) == 10
        assert len(queue._heap) <= 2 * len(queue) + 8
        assert queue.compactions > 0
        assert all(not e.cancelled for e in (queue._peek(),))
        fired = []
        queue.schedule(5, lambda now: fired.append(now))
        queue.run()
        assert fired == [5]
        assert queue.empty()

    def test_compaction_preserves_pop_order(self):
        queue = EventQueue()
        fired = []
        events = [queue.schedule(t, lambda now, t=t: fired.append(t))
                  for t in range(100)]
        for event in events[::2]:
            event.cancel()
        queue.run()
        assert fired == list(range(1, 100, 2))

    def test_cancel_after_pop_does_not_corrupt_counters(self):
        queue = EventQueue()
        event = queue.schedule(5, lambda now: None)
        queue.run()
        event.cancel()
        assert len(queue) == 0
        assert queue.empty()

"""Tests for the discrete-event queue."""

import pytest

from repro.engine.events import EventQueue
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(30, lambda now: fired.append(("c", now)))
        queue.schedule(10, lambda now: fired.append(("a", now)))
        queue.schedule(20, lambda now: fired.append(("b", now)))
        queue.run()
        assert fired == [("a", 10), ("b", 20), ("c", 30)]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        fired = []
        for name in "abc":
            queue.schedule(5, lambda now, n=name: fired.append(n))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_now_tracks_last_popped_event(self):
        queue = EventQueue()
        queue.schedule(42, lambda now: None)
        queue.run()
        assert queue.now == 42

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.schedule(10, lambda now: None)
        queue.run()
        with pytest.raises(SimulationError):
            queue.schedule(5, lambda now: None)

    def test_events_scheduled_during_run_are_processed(self):
        queue = EventQueue()
        fired = []

        def chain(now):
            fired.append(now)
            if now < 30:
                queue.schedule(now + 10, chain)

        queue.schedule(10, chain)
        queue.run()
        assert fired == [10, 20, 30]


class TestCancellation:
    def test_cancelled_events_do_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(10, lambda now: fired.append("cancelled"))
        queue.schedule(20, lambda now: fired.append("kept"))
        event.cancel()
        queue.run()
        assert fired == ["kept"]

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.schedule(10, lambda now: None)
        queue.schedule(20, lambda now: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_empty(self):
        queue = EventQueue()
        assert queue.empty()
        event = queue.schedule(5, lambda now: None)
        assert not queue.empty()
        event.cancel()
        assert queue.empty()


class TestBoundedRun:
    def test_until_bound(self):
        queue = EventQueue()
        fired = []
        for t in (10, 20, 30):
            queue.schedule(t, lambda now: fired.append(now))
        count = queue.run(until=20)
        assert count == 2
        assert fired == [10, 20]
        queue.run()
        assert fired == [10, 20, 30]

    def test_max_events_bound(self):
        queue = EventQueue()
        fired = []
        for t in (10, 20, 30):
            queue.schedule(t, lambda now: fired.append(now))
        queue.run(max_events=1)
        assert fired == [10]

    def test_processed_counter(self):
        queue = EventQueue()
        for t in (1, 2, 3):
            queue.schedule(t, lambda now: None)
        queue.run()
        assert queue.processed == 3

    def test_pop_returns_none_when_empty(self):
        assert EventQueue().pop() is None

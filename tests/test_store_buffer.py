"""Tests for repro.cpu.store_buffer."""

import pytest

from repro.config import StoreBufferConfig, StoreBufferKind
from repro.cpu.store_buffer import (
    CoalescingStoreBuffer,
    FIFOStoreBuffer,
    make_store_buffer,
)
from repro.errors import StoreBufferError


def fifo(entries: int = 4) -> FIFOStoreBuffer:
    return FIFOStoreBuffer(StoreBufferConfig(StoreBufferKind.FIFO_WORD, entries, 8))


def coalescing(entries: int = 4) -> CoalescingStoreBuffer:
    return CoalescingStoreBuffer(
        StoreBufferConfig(StoreBufferKind.COALESCING_BLOCK, entries, 64))


class TestFactory:
    def test_make_fifo(self):
        sb = make_store_buffer(StoreBufferConfig(StoreBufferKind.FIFO_WORD, 64, 8))
        assert isinstance(sb, FIFOStoreBuffer)

    def test_make_coalescing(self):
        sb = make_store_buffer(
            StoreBufferConfig(StoreBufferKind.COALESCING_BLOCK, 8, 64))
        assert isinstance(sb, CoalescingStoreBuffer)

    def test_wrong_kind_rejected(self):
        with pytest.raises(StoreBufferError):
            FIFOStoreBuffer(StoreBufferConfig(StoreBufferKind.COALESCING_BLOCK, 8, 64))
        with pytest.raises(StoreBufferError):
            CoalescingStoreBuffer(StoreBufferConfig(StoreBufferKind.FIFO_WORD, 8, 8))


class TestFIFO:
    def test_empty_initially(self):
        sb = fifo()
        assert sb.is_empty(0)
        assert not sb.is_full(0)
        assert sb.drain_time(0) == 0

    def test_word_granularity_no_coalescing(self):
        sb = fifo(entries=4)
        # Two stores to different words of the same block take two entries.
        sb.add_store(0, now=0, completion_time=100)
        sb.add_store(8, now=0, completion_time=100)
        assert sb.occupancy(0) == 2

    def test_same_word_still_takes_new_entry(self):
        sb = fifo(entries=4)
        sb.add_store(0, now=0, completion_time=50)
        sb.add_store(0, now=0, completion_time=60)
        assert sb.occupancy(0) == 2

    def test_fifo_release_order_enforced(self):
        sb = fifo(entries=4)
        first = sb.add_store(0, now=0, completion_time=200)
        second = sb.add_store(8, now=0, completion_time=50)
        # The younger store cannot leave before the older one.
        assert second.release_time >= first.release_time
        assert sb.drain_time(0) == 200

    def test_release_times_monotonic(self):
        sb = fifo(entries=8)
        times = [300, 100, 250, 50, 400]
        releases = [sb.add_store(i * 8, 0, t).release_time for i, t in enumerate(times)]
        assert releases == sorted(releases)

    def test_capacity_and_free_slot(self):
        sb = fifo(entries=2)
        sb.add_store(0, now=0, completion_time=100)
        sb.add_store(8, now=0, completion_time=150)
        assert sb.is_full(0)
        assert sb.next_free_slot_time(0) == 100
        with pytest.raises(StoreBufferError):
            sb.add_store(16, now=0, completion_time=80)

    def test_entries_expire(self):
        sb = fifo(entries=2)
        sb.add_store(0, now=0, completion_time=100)
        assert sb.is_empty(100)
        assert not sb.is_full(150)

    def test_drain_time_after_partial_expiry(self):
        sb = fifo(entries=4)
        sb.add_store(0, now=0, completion_time=100)
        sb.add_store(8, now=0, completion_time=300)
        assert sb.drain_time(150) == 300

    def test_peak_occupancy_tracked(self):
        sb = fifo(entries=4)
        for i in range(3):
            sb.add_store(i * 8, 0, 1000)
        assert sb.peak_occupancy == 3
        assert sb.total_inserted == 3


class TestCoalescing:
    def test_block_granularity_coalescing(self):
        sb = coalescing(entries=4)
        sb.add_store(0, now=0, completion_time=100)
        sb.add_store(32, now=0, completion_time=120)   # same 64-byte block
        assert sb.occupancy(0) == 1
        assert sb.coalesced == 1

    def test_coalescing_extends_lifetime(self):
        sb = coalescing(entries=4)
        sb.add_store(0, now=0, completion_time=100)
        entry = sb.add_store(8, now=0, completion_time=250)
        assert entry.release_time == 250
        assert sb.drain_time(0) == 250

    def test_different_blocks_take_separate_entries(self):
        sb = coalescing(entries=4)
        sb.add_store(0, now=0, completion_time=100)
        sb.add_store(64, now=0, completion_time=100)
        assert sb.occupancy(0) == 2

    def test_unordered_release(self):
        sb = coalescing(entries=4)
        older = sb.add_store(0, now=0, completion_time=500)
        younger = sb.add_store(64, now=0, completion_time=50)
        # Coalescing buffers are unordered: the younger store may complete first.
        assert younger.release_time < older.release_time
        assert sb.occupancy(100) == 1

    def test_speculative_and_nonspeculative_never_merge(self):
        sb = coalescing(entries=4)
        sb.add_store(0, now=0, completion_time=100, speculative=False)
        sb.add_store(8, now=0, completion_time=100, speculative=True, checkpoint_id=1)
        assert sb.occupancy(0) == 2

    def test_capacity_enforced(self):
        sb = coalescing(entries=2)
        sb.add_store(0, 0, 100)
        sb.add_store(64, 0, 100)
        assert sb.is_full(0)
        with pytest.raises(StoreBufferError):
            sb.add_store(128, 0, 100)

    def test_has_block(self):
        sb = coalescing(entries=4)
        sb.add_store(64, 0, 100)
        assert sb.has_block(64 + 8, 0)
        assert not sb.has_block(128, 0)
        assert not sb.has_block(64, 200)   # expired


class TestSpeculativeBookkeeping:
    def test_flash_invalidate_speculative_only(self):
        sb = coalescing(entries=8)
        sb.add_store(0, 0, 1000, speculative=False)
        sb.add_store(64, 0, 1000, speculative=True, checkpoint_id=1)
        sb.add_store(128, 0, 1000, speculative=True, checkpoint_id=2)
        dropped = sb.flash_invalidate_speculative(0)
        assert dropped == 2
        assert sb.occupancy(0) == 1

    def test_flash_invalidate_specific_checkpoint(self):
        sb = coalescing(entries=8)
        sb.add_store(64, 0, 1000, speculative=True, checkpoint_id=1)
        sb.add_store(128, 0, 1000, speculative=True, checkpoint_id=2)
        dropped = sb.flash_invalidate_speculative(0, checkpoint_id=2)
        assert dropped == 1
        remaining = sb.entries(0)
        assert len(remaining) == 1 and remaining[0].checkpoint_id == 1

    def test_mark_all_non_speculative(self):
        sb = coalescing(entries=8)
        sb.add_store(64, 0, 1000, speculative=True, checkpoint_id=1)
        sb.mark_all_non_speculative(0)
        assert all(not e.speculative for e in sb.entries(0))
        # Nothing left to invalidate afterwards.
        assert sb.flash_invalidate_speculative(0) == 0

    def test_mark_specific_checkpoint_non_speculative(self):
        sb = coalescing(entries=8)
        sb.add_store(64, 0, 1000, speculative=True, checkpoint_id=1)
        sb.add_store(128, 0, 1000, speculative=True, checkpoint_id=2)
        sb.mark_all_non_speculative(0, checkpoint_id=1)
        specs = [e.checkpoint_id for e in sb.entries(0) if e.speculative]
        assert specs == [2]

    def test_drain_time_for_checkpoint(self):
        sb = coalescing(entries=8)
        sb.add_store(64, 0, 300, speculative=True, checkpoint_id=1)
        sb.add_store(128, 0, 700, speculative=True, checkpoint_id=2)
        assert sb.drain_time_for_checkpoint(1, 0) == 300
        assert sb.drain_time_for_checkpoint(2, 0) == 700
        assert sb.drain_time_for_checkpoint(99, 0) == 0

"""Tests for the ``repro bench`` harness and CLI (the perf trajectory)."""

import copy
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchPreset,
    check_against_baseline,
    format_baseline_delta,
    format_bench_report,
    load_report,
    run_bench,
    write_report,
)
from repro.bench.harness import BATCH_WIDTHS, KERNEL_CONFIGS, SCENARIO_NAME
from repro.cli import main

_PRESET = BenchPreset(name="test", workload="apache", num_cores=2,
                      ops_per_thread=120, seed=3, repeats=1,
                      batch_ops_per_thread=800)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("bench-cache")
    return run_bench(_PRESET, cache_dir=cache_dir)


class TestBenchReport:
    def test_schema_and_sections(self, report):
        assert report["schema"] == BENCH_SCHEMA_VERSION
        assert report["preset"]["workload"] == "apache"
        assert report["preset"]["engine"] == "fast"
        assert {k["config"] for k in report["kernels"]} == set(KERNEL_CONFIGS)
        assert report["scenario"]["name"] == SCENARIO_NAME

    def test_kernel_metrics_are_positive_and_consistent(self, report):
        for kernel in report["kernels"]:
            assert kernel["total_ops"] == 2 * 120
            assert kernel["best_seconds"] > 0
            assert kernel["ops_per_sec"] > 0
            assert kernel["runtime_cycles"] > 0
            assert kernel["events_processed"] >= kernel["total_ops"]

    def test_campaign_cold_and_cached_timed(self, report):
        campaign = report["campaign"]
        assert campaign["cells"] == 2
        assert campaign["cold_seconds"] > 0
        assert campaign["cached_seconds"] > 0

    def test_studies_plan_timed(self, report):
        """Schema v3: the unified all-studies plan is timed cold vs cached."""
        studies = report["studies"]
        assert studies["studies"] >= 10
        assert studies["cells"] > studies["unique_jobs"] > 0
        assert studies["cold_seconds"] > 0
        assert studies["cached_seconds"] > 0

    def test_batch_section_timed_and_identical(self, report):
        """Schema v4: the batch tier is timed per lane width, both engines."""
        batch = report["batch"]
        assert batch["config"] == "sc"
        assert batch["num_cores"] == 1
        assert batch["ops_per_thread"] == _PRESET.batch_ops_per_thread
        assert tuple(w["width"] for w in batch["widths"]) == BATCH_WIDTHS
        for width in batch["widths"]:
            assert width["identical"], "batch results must match fast"
            assert width["total_ops"] == (width["width"]
                                          * _PRESET.batch_ops_per_thread)
            assert width["fast_ops_per_sec"] > 0
            assert width["batch_ops_per_sec"] > 0
            assert width["speedup"] > 0
        assert batch["studies_cold_seconds"] > 0

    def test_batch_multicore_section_timed_and_identical(self, report):
        """Schema v7: the coherence-epoch path is timed on a 4-core cell."""
        multicore = report["batch_multicore"]
        assert multicore["config"] == "sc"
        assert multicore["num_cores"] == 4
        assert multicore["ops_per_thread"] == _PRESET.batch_ops_per_thread
        assert multicore["total_ops"] == 4 * _PRESET.batch_ops_per_thread
        assert multicore["identical"], "batch results must match fast"
        assert multicore["fast_ops_per_sec"] > 0
        assert multicore["batch_ops_per_sec"] > 0
        assert multicore["speedup"] > 0
        # Bulk retirement must actually fire across cores, and the
        # per-reason decline counters must be surfaced for diagnosis.
        assert multicore["bulk_retired_ops"] > 0
        assert isinstance(multicore["declines"], dict)
        assert isinstance(multicore["optouts"], dict)

    def test_distributed_section_partitions_and_matches(self, report):
        """Schema v6: 1-vs-2-worker queue drains over one sqlite backend."""
        distributed = report["distributed"]
        assert distributed["study"] == "figure8"
        assert distributed["cells"] > 0
        assert distributed["one_worker_simulated"] == distributed["cells"]
        assert sum(distributed["two_worker_simulated"]) == distributed["cells"]
        assert distributed["identical"], "drains must be byte-identical"
        assert distributed["one_worker_seconds"] > 0
        assert distributed["two_worker_seconds"] > 0
        assert "distributed figure8" in format_bench_report(report)

    def test_telemetry_section_timed(self, report):
        """Schema v5: disabled-recorder overhead is measured and exported."""
        telemetry = report["telemetry"]
        assert telemetry["config"] == "sc"
        assert telemetry["total_ops"] >= 2 * 2000  # dedicated ops floor
        assert telemetry["off_seconds"] > 0
        assert telemetry["null_seconds"] > 0
        assert telemetry["traced_seconds"] > 0
        assert telemetry["overhead_frac"] < 0.02  # the zero-overhead contract

    def test_round_trips_through_disk(self, report, tmp_path):
        path = tmp_path / "BENCH_kernel.json"
        write_report(report, path)
        assert load_report(path) == report

    def test_format_is_human_readable(self, report):
        text = format_bench_report(report)
        assert "ops/s" in text
        for name in KERNEL_CONFIGS:
            assert name in text


class TestBaselineCheck:
    def test_passes_against_itself(self, report):
        assert check_against_baseline(report, copy.deepcopy(report)) == []

    def test_detects_kernel_regression(self, report):
        baseline = copy.deepcopy(report)
        for kernel in baseline["kernels"]:
            kernel["ops_per_sec"] *= 10  # pretend we used to be 10x faster
        failures = check_against_baseline(report, baseline, tolerance=0.30)
        assert len(failures) == len(KERNEL_CONFIGS)
        assert all("below" in failure for failure in failures)

    def test_tolerance_allows_bounded_slowdown(self, report):
        baseline = copy.deepcopy(report)
        for kernel in baseline["kernels"]:
            kernel["ops_per_sec"] *= 1.2  # 20% slower than baseline
        assert check_against_baseline(report, baseline, tolerance=0.30) == []

    def test_preset_mismatch_is_a_failure(self, report):
        """Different engine or scale => numbers are not comparable."""
        baseline = copy.deepcopy(report)
        baseline["preset"]["engine"] = "reference"
        baseline["preset"]["ops_per_thread"] = 999
        failures = check_against_baseline(report, baseline)
        assert len(failures) == 2
        assert all("preset mismatch" in failure for failure in failures)

    def test_schema_mismatch_is_a_failure(self, report):
        baseline = copy.deepcopy(report)
        baseline["schema"] = BENCH_SCHEMA_VERSION + 1
        failures = check_against_baseline(report, baseline)
        assert failures and "schema" in failures[0]

    def test_missing_kernel_is_a_failure(self, report):
        baseline = copy.deepcopy(report)
        baseline["kernels"] = baseline["kernels"][:-1]
        failures = check_against_baseline(report, baseline)
        assert any("missing from baseline" in failure for failure in failures)

    def test_detects_batch_regression(self, report):
        baseline = copy.deepcopy(report)
        for width in baseline["batch"]["widths"]:
            width["batch_ops_per_sec"] *= 10
        failures = check_against_baseline(report, baseline, tolerance=0.30)
        assert len(failures) == len(BATCH_WIDTHS)
        assert all("batch width" in failure for failure in failures)

    def test_identity_mismatch_is_a_failure(self, report):
        fresh = copy.deepcopy(report)
        fresh["batch"]["widths"][0]["identical"] = False
        failures = check_against_baseline(fresh, copy.deepcopy(report))
        assert any("byte-identical" in failure for failure in failures)

    def test_batch_multicore_identity_mismatch_is_a_failure(self, report):
        fresh = copy.deepcopy(report)
        fresh["batch_multicore"]["identical"] = False
        failures = check_against_baseline(fresh, copy.deepcopy(report))
        assert any("batch_multicore" in failure and "byte-identical" in failure
                   for failure in failures)

    def test_batch_multicore_speedup_floor(self, report):
        """A multicore speedup below 1.5x fails the check within-report."""
        fresh = copy.deepcopy(report)
        fresh["batch_multicore"]["speedup"] = 1.1
        failures = check_against_baseline(fresh, copy.deepcopy(report))
        assert any("below the 1.5x floor" in failure for failure in failures)

    def test_batch_multicore_requires_bulk_retirement(self, report):
        fresh = copy.deepcopy(report)
        fresh["batch_multicore"]["bulk_retired_ops"] = 0
        failures = check_against_baseline(fresh, copy.deepcopy(report))
        assert any("never fired" in failure for failure in failures)

    def test_missing_batch_multicore_section_is_a_failure(self, report):
        fresh = copy.deepcopy(report)
        del fresh["batch_multicore"]
        failures = check_against_baseline(fresh, copy.deepcopy(report))
        assert any("batch_multicore section missing" in failure
                   for failure in failures)

    def test_distributed_identity_mismatch_is_a_failure(self, report):
        fresh = copy.deepcopy(report)
        fresh["distributed"]["identical"] = False
        failures = check_against_baseline(fresh, copy.deepcopy(report))
        assert any("distributed" in failure and "byte-identical" in failure
                   for failure in failures)

    def test_distributed_partition_violation_is_a_failure(self, report):
        """A cell simulated by both workers means the leases failed."""
        fresh = copy.deepcopy(report)
        fresh["distributed"]["two_worker_simulated"] = [
            fresh["distributed"]["cells"], 1]
        failures = check_against_baseline(fresh, copy.deepcopy(report))
        assert any("partition" in failure for failure in failures)

    def test_missing_distributed_section_is_a_failure(self, report):
        fresh = copy.deepcopy(report)
        del fresh["distributed"]
        failures = check_against_baseline(fresh, copy.deepcopy(report))
        assert any("distributed section missing" in failure
                   for failure in failures)

    def test_telemetry_overhead_gate(self, report):
        """A disabled recorder costing >2% of throughput fails the check."""
        fresh = copy.deepcopy(report)
        fresh["telemetry"]["overhead_frac"] = 0.50
        failures = check_against_baseline(fresh, copy.deepcopy(report))
        assert any("telemetry" in failure and "50.00%" in failure
                   for failure in failures)
        # A custom tolerance lets the inflated report through.
        assert check_against_baseline(fresh, copy.deepcopy(report),
                                      telemetry_tolerance=0.60) == []

    def test_missing_telemetry_section_is_a_failure(self, report):
        fresh = copy.deepcopy(report)
        del fresh["telemetry"]
        failures = check_against_baseline(fresh, copy.deepcopy(report))
        assert any("telemetry section missing" in failure
                   for failure in failures)


class TestBaselineDelta:
    def test_delta_table_covers_every_section(self, report):
        text = format_baseline_delta(report, copy.deepcopy(report))
        for label in ("kernel sc", "scenario splice", "geometry",
                      "batch width", "batch 4-core",
                      "telemetry null recorder", "telemetry overhead"):
            assert label in text
        assert "+0.0%" in text  # identical reports: all deltas are zero

    def test_delta_table_shows_signed_movement(self, report):
        baseline = copy.deepcopy(report)
        for kernel in baseline["kernels"]:
            kernel["ops_per_sec"] = kernel["ops_per_sec"] / 2  # we got faster
        text = format_baseline_delta(report, baseline)
        assert "+100.0%" in text

    def test_delta_table_tolerates_missing_baseline_sections(self, report):
        text = format_baseline_delta(report, {"schema": BENCH_SCHEMA_VERSION})
        assert "telemetry overhead" in text
        assert "n/a" in text


class TestBenchCLI:
    def test_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_kernel.json"
        code = main(["bench", "--small", "--ops", "120", "--repeats", "1",
                     "--output", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == BENCH_SCHEMA_VERSION
        assert report["preset"]["name"] == "small"
        assert report["preset"]["ops_per_thread"] == 120  # explicit override
        captured = capsys.readouterr()
        assert "ops/s" in captured.out

    def test_bench_check_passes_against_own_output(self, tmp_path):
        out = tmp_path / "BENCH_kernel.json"
        assert main(["bench", "--small", "--ops", "120", "--repeats", "1",
                     "--output", str(out)]) == 0
        assert main(["bench", "--small", "--ops", "120", "--repeats", "1",
                     "--output", str(tmp_path / "second.json"),
                     "--check", str(out), "--tolerance", "0.95"]) == 0

    def test_bench_check_fails_on_regression(self, tmp_path, capsys):
        out = tmp_path / "BENCH_kernel.json"
        assert main(["bench", "--small", "--ops", "120", "--repeats", "1",
                     "--output", str(out)]) == 0
        baseline = json.loads(out.read_text())
        for kernel in baseline["kernels"]:
            kernel["ops_per_sec"] *= 1000
        inflated = tmp_path / "inflated.json"
        inflated.write_text(json.dumps(baseline))
        code = main(["bench", "--small", "--ops", "120", "--repeats", "1",
                     "--output", str(tmp_path / "third.json"),
                     "--check", str(inflated)])
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err

    def test_reference_engine_supported(self, tmp_path):
        out = tmp_path / "BENCH_ref.json"
        assert main(["bench", "--small", "--ops", "120", "--repeats", "1",
                     "--engine", "reference", "--output", str(out)]) == 0
        assert json.loads(out.read_text())["preset"]["engine"] == "reference"


class TestCommittedBaseline:
    def test_committed_baseline_is_well_formed(self):
        """The CI gate's baseline file must stay loadable and schema-current."""
        baseline = load_report("benchmarks/bench_baseline.json")
        assert baseline["schema"] == BENCH_SCHEMA_VERSION
        assert {k["config"] for k in baseline["kernels"]} == set(KERNEL_CONFIGS)
        assert all(k["ops_per_sec"] > 0 for k in baseline["kernels"])

"""Tests for repro.trace (ops, containers, serialization)."""

import pytest

from repro.errors import TraceError
from repro.trace.ops import MemOp, OpKind, atomic, compute, fence, load, store
from repro.trace.serialization import load_trace, save_trace
from repro.trace.trace import MultiThreadedTrace, Trace


class TestOps:
    def test_constructors(self):
        assert load(64).kind is OpKind.LOAD
        assert store(64).kind is OpKind.STORE
        assert atomic(64).kind is OpKind.ATOMIC
        assert fence().kind is OpKind.FENCE
        assert compute(5).kind is OpKind.COMPUTE

    def test_memory_classification(self):
        assert load(0).is_memory
        assert store(0).is_memory
        assert atomic(0).is_memory
        assert not fence().is_memory
        assert not compute(1).is_memory

    def test_read_write_classification(self):
        assert load(0).reads and not load(0).writes
        assert store(0).writes and not store(0).reads
        assert atomic(0).reads and atomic(0).writes

    def test_labels(self):
        op = atomic(128, label="lock_acquire")
        assert op.label == "lock_acquire"
        assert "lock_acquire" in op.describe()

    def test_describe_mentions_address(self):
        assert "0x40" in load(64).describe()
        assert "fence" in fence().describe()
        assert "5 cycles" in compute(5).describe()

    def test_invalid_ops_rejected(self):
        with pytest.raises(TraceError):
            MemOp(OpKind.LOAD, address=-1)
        with pytest.raises(TraceError):
            MemOp(OpKind.STORE, address=0, size=0)
        with pytest.raises(TraceError):
            MemOp(OpKind.COMPUTE, cycles=0)

    def test_ops_are_immutable(self):
        op = load(64)
        with pytest.raises(Exception):
            op.address = 128


class TestTrace:
    def test_append_and_iterate(self):
        trace = Trace()
        trace.append(load(0))
        trace.extend([store(64), fence()])
        assert len(trace) == 3
        assert [op.kind for op in trace] == [OpKind.LOAD, OpKind.STORE, OpKind.FENCE]
        assert trace[1].kind is OpKind.STORE

    def test_count_by_kind(self):
        trace = Trace([load(0), load(64), store(0), fence(), compute(3)])
        assert trace.count(OpKind.LOAD) == 2
        assert trace.count(OpKind.STORE) == 1
        assert trace.count(OpKind.ATOMIC) == 0

    def test_instruction_weight_counts_compute_bundles(self):
        trace = Trace([load(0), compute(10), store(0)])
        assert trace.instruction_weight() == 12

    def test_footprint(self):
        trace = Trace([load(0), load(32), store(64), load(256)])
        assert trace.footprint(64) == 3

    def test_mix_sums_to_one(self):
        trace = Trace([load(0), store(0), fence(), compute(2)])
        mix = trace.mix()
        assert abs(sum(mix.values()) - 1.0) < 1e-9

    def test_empty_trace_mix(self):
        assert all(v == 0.0 for v in Trace().mix().values())


class TestMultiThreadedTrace:
    def test_requires_at_least_one_thread(self):
        with pytest.raises(TraceError):
            MultiThreadedTrace([])

    def test_thread_ids_assigned(self):
        bundle = MultiThreadedTrace([Trace([load(0)]), Trace([store(0)])])
        assert [t.thread_id for t in bundle] == [0, 1]
        assert bundle.num_threads == 2
        assert len(bundle) == 2

    def test_total_ops(self):
        bundle = MultiThreadedTrace([Trace([load(0)] * 3), Trace([store(0)] * 2)])
        assert bundle.total_ops() == 5

    def test_shared_blocks(self):
        shared = 128
        t0 = Trace([load(shared), load(0)])
        t1 = Trace([store(shared), load(64 * 100)])
        bundle = MultiThreadedTrace([t0, t1])
        assert bundle.shared_blocks(64) == 1


class TestSerialization:
    def test_round_trip(self, tmp_path):
        t0 = Trace([load(64, label="x"), store(128), fence(label="f"),
                    compute(7), atomic(192, label="l")])
        t1 = Trace([compute(2), load(0)])
        bundle = MultiThreadedTrace([t0, t1], name="demo", seed=42)
        path = tmp_path / "trace.jsonl"
        save_trace(bundle, path)
        loaded = load_trace(path)
        assert loaded.name == "demo"
        assert loaded.seed == 42
        assert loaded.num_threads == 2
        for original, restored in zip(bundle, loaded):
            assert len(original) == len(restored)
            for a, b in zip(original, restored):
                assert a == b

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        bundle = MultiThreadedTrace([Trace([load(0), store(0)])], name="demo")
        path = tmp_path / "trace.jsonl"
        save_trace(bundle, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"version": 99, "name": "x", "seed": 0, "threads": 0, '
                        '"ops_per_thread": []}\n')
        with pytest.raises(TraceError):
            load_trace(path)

    def test_round_trip_all_op_kinds_with_fences_and_atomics(self, tmp_path):
        """Every op kind, with and without labels and non-default sizes."""
        ops = [
            load(64), load(128, size=4, label="narrow"),
            store(192), store(256, size=1, label="byte"),
            atomic(320), atomic(384, size=16, label="wide_cas"),
            fence(), fence(label="acquire"),
            compute(1), compute(99, label="bundle"),
        ]
        bundle = MultiThreadedTrace([Trace(ops)], name="kinds", seed=7)
        path = tmp_path / "kinds.jsonl"
        save_trace(bundle, path)
        restored = load_trace(path)
        assert list(restored[0]) == ops
        for original, back in zip(ops, restored[0]):
            assert back.kind is original.kind
            assert back.size == original.size
            assert back.label == original.label
            assert back.cycles == original.cycles

    def test_round_trip_preserves_phase_layout(self, tmp_path):
        t0 = Trace([load(0), store(64), fence(), atomic(128), compute(2)])
        t1 = Trace([atomic(0), fence(), load(64), store(128), compute(3)])
        bundle = MultiThreadedTrace([t0, t1], name="phased", seed=3,
                                    phases=[("warm", 2), ("storm", 3)])
        path = tmp_path / "phased.jsonl"
        save_trace(bundle, path)
        restored = load_trace(path)
        assert restored.phases == (("warm", 2), ("storm", 3))
        assert restored.phase_bounds == (2, 5)
        assert restored.phase_names == ("warm", "storm")

    def test_plain_trace_round_trip_has_no_phases(self, tmp_path):
        bundle = MultiThreadedTrace([Trace([load(0)])], name="plain")
        path = tmp_path / "plain.jsonl"
        save_trace(bundle, path)
        assert load_trace(path).phases is None


class TestPhaseSplicedSerialization:
    def test_spliced_scenario_trace_round_trips_and_is_deterministic(self, tmp_path):
        """Same (spec, seed) twice -> identical traces; both survive disk."""
        from repro.scenarios import PhaseSpec, ScenarioSpec, generate_scenario
        from repro.workloads.presets import preset

        spec = ScenarioSpec(name="rt", phases=(
            PhaseSpec("mix", 120, workload=preset("zeus")),
            PhaseSpec("pc", 90, pattern="producer_consumer"),
            PhaseSpec("bar", 90, pattern="barrier"),
        ))
        first = generate_scenario(spec, num_threads=2, seed=11)
        second = generate_scenario(spec, num_threads=2, seed=11)
        for a, b in zip(first, second):
            assert list(a) == list(b)

        path = tmp_path / "spliced.jsonl"
        save_trace(first, path)
        restored = load_trace(path)
        assert restored.phases == first.phases
        for a, b in zip(first, restored):
            assert list(a) == list(b)
        # The spliced stream contains the synchronisation every phase relies on.
        kinds = {op.kind for thread in restored for op in thread}
        assert OpKind.ATOMIC in kinds and OpKind.FENCE in kinds

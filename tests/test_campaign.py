"""Tests for the campaign subsystem: registry, jobs, cache, and executor."""

import dataclasses
import json

import pytest

from repro.campaign import (
    CampaignExecutor,
    ConfigRegistry,
    DEFAULT_REGISTRY,
    Job,
    ResultCache,
    cache_key,
    derived,
    expand_jobs,
)
from repro.config import SystemConfig
from repro.engine.results import RunResult
from repro.engine.simulator import simulate
from repro.errors import ConfigurationError
from repro.experiments.common import CONFIG_NAMES, ExperimentSettings, make_config
from repro.workloads.presets import preset
from repro.workloads.registry import build_trace

#: miniature scale so the whole module runs in seconds.
SETTINGS = ExperimentSettings.quick(num_cores=2, ops_per_thread=300,
                                    workloads=("apache",))


@pytest.fixture()
def tiny_result():
    trace = build_trace("barnes", num_threads=2, ops_per_thread=200, seed=5)
    return simulate(make_config("sc", SETTINGS), trace, warmup_fraction=0.2)


class TestRegistry:
    def test_every_default_name_resolves(self):
        for name in CONFIG_NAMES:
            config = DEFAULT_REGISTRY.make(name, SETTINGS)
            assert isinstance(config, SystemConfig)
            assert config.num_cores == SETTINGS.num_cores

    def test_make_config_delegates_to_registry(self):
        for name in CONFIG_NAMES:
            assert make_config(name, SETTINGS) == DEFAULT_REGISTRY.make(name, SETTINGS)

    def test_configs_hash_stably(self):
        for name in CONFIG_NAMES:
            spec = preset("apache").scaled(SETTINGS.ops_per_thread)
            first = cache_key(make_config(name, SETTINGS), spec, 1, 0.2)
            second = cache_key(make_config(name, SETTINGS), spec, 1, 0.2)
            assert first == second

    def test_distinct_configs_hash_differently(self):
        spec = preset("apache").scaled(SETTINGS.ops_per_thread)
        keys = {cache_key(make_config(name, SETTINGS), spec, 1, 0.2)
                for name in CONFIG_NAMES}
        assert len(keys) == len(CONFIG_NAMES)

    def test_config_dict_round_trip(self):
        for name in CONFIG_NAMES:
            config = make_config(name, SETTINGS)
            data = json.loads(json.dumps(config.to_dict(), sort_keys=True))
            assert SystemConfig.from_dict(data) == config

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_REGISTRY.make("bogus", SETTINGS)

    def test_runtime_registration(self):
        registry = ConfigRegistry()
        registry.register("sc_variant",
                          derived("sc", memory_latency=320))
        config = registry.make("sc_variant", SETTINGS)
        assert config.memory_latency == 320
        assert config.num_cores == SETTINGS.num_cores
        registry.unregister("sc_variant")
        assert "sc_variant" not in registry

    def test_derived_speculation_override(self):
        factory = derived("invisi_cont_cov", cov_timeout=1234)
        config = factory(SETTINGS)
        assert config.speculation.cov_timeout == 1234

    def test_duplicate_registration_rejected(self):
        registry = ConfigRegistry({"sc": derived("sc")})
        with pytest.raises(ConfigurationError):
            registry.register("sc", derived("sc"))

    def test_names_preserve_registration_order(self):
        assert DEFAULT_REGISTRY.names()[:3] == ("sc", "tso", "rmo")


class TestJobs:
    def test_jobs_are_hashable_and_ordered(self):
        a = Job("sc", "apache", 1)
        b = Job("sc", "apache", 1)
        assert a == b and hash(a) == hash(b)
        assert Job("sc", "apache", 1) < Job("sc", "apache", 2)

    def test_expand_jobs_is_config_major(self):
        jobs = expand_jobs(("sc", "tso"), ("apache",), (1, 2))
        assert jobs == [Job("sc", "apache", 1), Job("sc", "apache", 2),
                        Job("tso", "apache", 1), Job("tso", "apache", 2)]


class TestResultSerialization:
    def test_json_round_trip(self, tiny_result):
        restored = RunResult.from_json(tiny_result.to_json())
        assert restored.config == tiny_result.config
        assert restored.workload == tiny_result.workload
        assert restored.seed == tiny_result.seed
        assert restored.runtime == tiny_result.runtime
        assert restored.summary() == tiny_result.summary()

    def test_schema_mismatch_rejected(self, tiny_result):
        data = tiny_result.to_dict()
        data["schema"] = 999
        with pytest.raises(ValueError):
            RunResult.from_dict(data)

    def test_results_are_immutable(self, tiny_result):
        with pytest.raises(dataclasses.FrozenInstanceError):
            tiny_result.seed = 7


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, tiny_result):
        cache = ResultCache(tmp_path / "cache")
        key = "0" * 64
        assert cache.get(key) is None
        cache.put(key, tiny_result)
        restored = cache.get(key)
        assert restored is not None
        assert restored.summary() == tiny_result.summary()
        assert cache.misses == 1 and cache.hits == 1
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path, tiny_result):
        cache = ResultCache(tmp_path / "cache")
        key = "1" * 64
        cache.put(key, tiny_result)
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None

    def test_clear(self, tmp_path, tiny_result):
        cache = ResultCache(tmp_path / "cache")
        cache.put("2" * 64, tiny_result)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestExecutor:
    JOBS = expand_jobs(("sc", "invisi_sc"), ("apache",), (1, 2))

    def test_cache_populated_then_no_simulation(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = CampaignExecutor(SETTINGS, jobs=1, cache=cache)
        first = executor.run(self.JOBS)
        assert executor.last_report.simulated == len(self.JOBS)
        assert len(cache) == len(self.JOBS)

        again = CampaignExecutor(SETTINGS, jobs=1,
                                 cache=ResultCache(tmp_path / "cache"))
        second = again.run(self.JOBS)
        assert again.last_report.simulated == 0
        assert again.last_report.cache_hits == len(self.JOBS)
        for a, b in zip(first, second):
            assert a.summary() == b.summary()

    def test_duplicate_cells_simulated_once(self):
        executor = CampaignExecutor(SETTINGS, jobs=1)
        job = Job("sc", "apache", 1)
        results = executor.run([job, job])
        assert executor.last_report.simulated == 1
        assert executor.last_report.deduplicated == 1
        assert results[0] is results[1]

    def test_results_keep_input_order(self):
        executor = CampaignExecutor(SETTINGS, jobs=1)
        reordered = list(reversed(self.JOBS))
        results = executor.run(reordered)
        for job, result in zip(reordered, results):
            assert result.workload == job.workload
            assert result.seed == job.seed
            assert result.config == make_config(job.config_name, SETTINGS)

    def test_parallel_matches_serial(self):
        serial = CampaignExecutor(SETTINGS, jobs=1).run(self.JOBS)
        parallel = CampaignExecutor(SETTINGS, jobs=4).run(self.JOBS)
        for a, b in zip(serial, parallel):
            assert a.summary() == b.summary()
            assert a.config == b.config
            assert a.seed == b.seed
            assert [s.to_dict() for s in a.core_stats] == \
                   [s.to_dict() for s in b.core_stats]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            CampaignExecutor(SETTINGS, jobs=0)

"""Tests for repro.interconnect (torus topology and latency model)."""

import pytest

from repro.config import InterconnectConfig, paper_config
from repro.errors import ConfigurationError
from repro.interconnect.latency import LatencyModel
from repro.interconnect.topology import TorusTopology


def torus(width: int = 4, height: int = 4, hop: int = 100) -> TorusTopology:
    return TorusTopology(InterconnectConfig(mesh_width=width, mesh_height=height,
                                            hop_latency=hop))


class TestTopology:
    def test_coordinates_roundtrip(self):
        topo = torus()
        for node in range(topo.num_nodes):
            x, y = topo.coordinates(node)
            assert topo.node_at(x, y) == node

    def test_rejects_invalid_node(self):
        topo = torus()
        with pytest.raises(ConfigurationError):
            topo.coordinates(16)
        with pytest.raises(ConfigurationError):
            topo.node_at(4, 0)

    def test_distance_to_self_is_zero(self):
        topo = torus()
        for node in range(topo.num_nodes):
            assert topo.hops(node, node) == 0

    def test_distance_is_symmetric(self):
        topo = torus()
        for a in range(topo.num_nodes):
            for b in range(topo.num_nodes):
                assert topo.hops(a, b) == topo.hops(b, a)

    def test_adjacent_nodes_one_hop(self):
        topo = torus()
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 4) == 1

    def test_wraparound_links(self):
        topo = torus()
        # Node 0 and node 3 are adjacent through the wrap-around link.
        assert topo.hops(0, 3) == 1
        # Opposite corners of a 4x4 torus are at most 2+2 hops away.
        assert topo.hops(0, 15) <= 4

    def test_max_distance_on_4x4_torus(self):
        topo = torus()
        assert max(topo.hops(0, n) for n in range(16)) == 4

    def test_triangle_inequality(self):
        topo = torus()
        for a in range(16):
            for b in range(16):
                for c in (0, 5, 10, 15):
                    assert topo.hops(a, b) <= topo.hops(a, c) + topo.hops(c, b)

    def test_home_node_distribution(self):
        topo = torus()
        homes = {topo.home_node(i * 64, 64) for i in range(64)}
        assert homes == set(range(16))

    def test_home_node_stable_within_block(self):
        topo = torus()
        assert topo.home_node(0, 64) == topo.home_node(0, 64)


class TestLatencyModel:
    def test_network_latency_scales_with_hops(self):
        config = paper_config()
        model = LatencyModel(config)
        assert model.network(0, 0) == 0
        assert model.network(0, 1) == config.interconnect.hop_latency
        assert model.network(0, 2) == 2 * config.interconnect.hop_latency

    def test_directory_access_includes_memory_on_miss(self):
        config = paper_config()
        model = LatencyModel(config)
        hit = model.directory_access(l2_hit=True)
        miss = model.directory_access(l2_hit=False)
        assert miss == hit + config.memory_latency

    def test_owner_forward_is_three_hop(self):
        config = paper_config()
        model = LatencyModel(config)
        lat = model.owner_forward(home=0, owner=1, requester=2)
        expected = (model.network(0, 1) + config.l1.hit_latency + model.network(1, 2))
        assert lat == expected

    def test_invalidation_round_takes_worst_sharer(self):
        config = paper_config()
        model = LatencyModel(config)
        near = model.invalidation_round(home=0, sharers=[1], requester=0)
        far = model.invalidation_round(home=0, sharers=[1, 10], requester=0)
        assert far >= near

    def test_invalidation_round_skips_requester(self):
        model = LatencyModel(paper_config())
        assert model.invalidation_round(home=0, sharers=[5], requester=5) == 0

    def test_writeback_latency(self):
        config = paper_config()
        model = LatencyModel(config)
        assert model.writeback(1, 1) == config.directory_latency
        assert model.writeback(0, 1) == (config.interconnect.hop_latency
                                         + config.directory_latency)

"""Tests for repro.interconnect (torus topology and latency model)."""

import pytest

from repro.config import InterconnectConfig, paper_config, resolved_interconnect
from repro.errors import ConfigurationError
from repro.interconnect.latency import LatencyModel
from repro.interconnect.topology import TorusTopology


def torus(width: int = 4, height: int = 4, hop: int = 100) -> TorusTopology:
    return TorusTopology(InterconnectConfig(mesh_width=width, mesh_height=height,
                                            hop_latency=hop))


class TestTopology:
    def test_coordinates_roundtrip(self):
        topo = torus()
        for node in range(topo.num_nodes):
            x, y = topo.coordinates(node)
            assert topo.node_at(x, y) == node

    def test_rejects_invalid_node(self):
        topo = torus()
        with pytest.raises(ConfigurationError):
            topo.coordinates(16)
        with pytest.raises(ConfigurationError):
            topo.node_at(4, 0)

    def test_distance_to_self_is_zero(self):
        topo = torus()
        for node in range(topo.num_nodes):
            assert topo.hops(node, node) == 0

    def test_distance_is_symmetric(self):
        topo = torus()
        for a in range(topo.num_nodes):
            for b in range(topo.num_nodes):
                assert topo.hops(a, b) == topo.hops(b, a)

    def test_adjacent_nodes_one_hop(self):
        topo = torus()
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 4) == 1

    def test_wraparound_links(self):
        topo = torus()
        # Node 0 and node 3 are adjacent through the wrap-around link.
        assert topo.hops(0, 3) == 1
        # Opposite corners of a 4x4 torus are at most 2+2 hops away.
        assert topo.hops(0, 15) <= 4

    def test_max_distance_on_4x4_torus(self):
        topo = torus()
        assert max(topo.hops(0, n) for n in range(16)) == 4

    def test_triangle_inequality(self):
        topo = torus()
        for a in range(16):
            for b in range(16):
                for c in (0, 5, 10, 15):
                    assert topo.hops(a, b) <= topo.hops(a, c) + topo.hops(c, b)

    def test_home_node_distribution(self):
        topo = torus()
        homes = {topo.home_node(i * 64, 64) for i in range(64)}
        assert homes == set(range(16))

    def test_home_node_stable_within_block(self):
        topo = torus()
        assert topo.home_node(0, 64) == topo.home_node(0, 64)


class TestEdgeGeometries:
    """1xN rings, non-square tori, and the full 8x8 machine."""

    def test_ring_1xn_wraparound(self):
        ring = torus(width=1, height=8)
        assert ring.num_nodes == 8
        # Around an 8-ring the far side is 4 hops, wrapping either way.
        assert ring.hops(0, 4) == 4
        assert ring.hops(0, 7) == 1
        assert ring.hops(0, 5) == 3
        assert max(ring.hops(0, n) for n in range(8)) == 4

    def test_ring_has_no_x_movement(self):
        ring = torus(width=1, height=6)
        for node in range(6):
            x, _ = ring.coordinates(node)
            assert x == 0

    def test_non_square_2x4(self):
        topo = torus(width=2, height=4)
        # Wrap-around makes the farthest node 1 + 2 hops away.
        assert max(topo.hops(0, n) for n in range(8)) == 3
        assert topo.hops(0, 7) == 1 + 1  # one X wrap + one Y wrap

    def test_non_square_4x8(self):
        topo = torus(width=4, height=8)
        assert topo.num_nodes == 32
        # Worst case: half-way around both rings.
        assert max(topo.hops(0, n) for n in range(32)) == 2 + 4

    def test_8x8_wraparound_distances(self):
        topo = torus(width=8, height=8)
        assert topo.num_nodes == 64
        # Opposite corner reached through both wrap links.
        assert topo.hops(0, 63) == 2
        # The true antipode (4, 4) is the worst case at 4 + 4 hops.
        assert topo.hops(0, topo.node_at(4, 4)) == 8
        assert max(topo.hops(0, n) for n in range(64)) == 8

    def test_8x8_symmetry_and_triangle(self):
        topo = torus(width=8, height=8)
        probes = (0, 7, 28, 36, 63)
        for a in probes:
            for b in probes:
                assert topo.hops(a, b) == topo.hops(b, a)
                for c in (0, 27, 63):
                    assert topo.hops(a, b) <= topo.hops(a, c) + topo.hops(c, b)

    def test_home_distribution_covers_all_64_nodes(self):
        topo = torus(width=8, height=8)
        homes = {topo.home_node(i * 64, 64) for i in range(256)}
        assert homes == set(range(64))


class TestRoutes:
    def test_route_length_matches_hops(self):
        for width, height in ((1, 7), (2, 4), (4, 4), (8, 8)):
            topo = torus(width=width, height=height)
            for src in range(topo.num_nodes):
                for dst in range(topo.num_nodes):
                    assert len(topo.route(src, dst)) == topo.hops(src, dst)

    def test_route_to_self_is_empty(self):
        assert torus().route(5, 5) == ()

    def test_route_links_are_distinct_per_message(self):
        topo = torus(width=4, height=4)
        for src in range(16):
            for dst in range(16):
                links = topo.route(src, dst)
                assert len(set(links)) == len(links)

    def test_route_is_deterministic(self):
        topo = torus(width=4, height=4)
        assert topo.route(0, 10) == topo.route(0, 10)


class TestLatencyModel:
    def test_network_latency_scales_with_hops(self):
        config = paper_config()
        model = LatencyModel(config)
        assert model.network(0, 0) == 0
        assert model.network(0, 1) == config.interconnect.hop_latency
        assert model.network(0, 2) == 2 * config.interconnect.hop_latency

    def test_directory_access_includes_memory_on_miss(self):
        config = paper_config()
        model = LatencyModel(config)
        hit = model.directory_access(l2_hit=True)
        miss = model.directory_access(l2_hit=False)
        assert miss == hit + config.memory_latency

    def test_owner_forward_is_three_hop(self):
        config = paper_config()
        model = LatencyModel(config)
        lat = model.owner_forward(home=0, owner=1, requester=2)
        expected = (model.network(0, 1) + config.l1.hit_latency + model.network(1, 2))
        assert lat == expected

    def test_invalidation_round_takes_worst_sharer(self):
        config = paper_config()
        model = LatencyModel(config)
        near = model.invalidation_round(home=0, sharers=[1], requester=0)
        far = model.invalidation_round(home=0, sharers=[1, 10], requester=0)
        assert far >= near

    def test_invalidation_round_skips_requester(self):
        model = LatencyModel(paper_config())
        assert model.invalidation_round(home=0, sharers=[5], requester=5) == 0

    def test_writeback_latency(self):
        config = paper_config()
        model = LatencyModel(config)
        assert model.writeback(1, 1) == config.directory_latency
        assert model.writeback(0, 1) == (config.interconnect.hop_latency
                                         + config.directory_latency)


class TestQueuedContention:
    """The opt-in per-link/per-ejection-port queued contention model."""

    def contended_model(self, num_cores=16, hop=100, bandwidth=1):
        config = paper_config(
            num_cores=num_cores,
            interconnect=resolved_interconnect(num_cores, hop_latency=hop,
                                               contention="queued",
                                               link_bandwidth=bandwidth))
        return LatencyModel(config)

    def test_none_mode_traverse_is_pure_arithmetic(self):
        model = LatencyModel(paper_config())
        assert not model.contended
        for _ in range(3):  # repeat traversals must not accumulate state
            assert model.traverse(0, 5, 1000) == 1000 + model.network(0, 5)
        assert model.contention_cycles == 0

    def test_single_message_pays_uncontended_latency(self):
        model = self.contended_model()
        assert model.traverse(0, 1, 0) == model.network(0, 1)
        assert model.contention_cycles == 0

    def test_traverse_to_self_is_free(self):
        model = self.contended_model()
        assert model.traverse(3, 3, 42) == 42

    def test_second_message_queues_behind_first(self):
        model = self.contended_model(hop=100, bandwidth=1)
        first = model.traverse(0, 1, 0)
        second = model.traverse(0, 1, 0)
        # Same single-link route: the second waits one full occupancy.
        assert first == 100
        assert second == 200
        assert model.contention_cycles == 100

    def test_wider_links_shrink_the_queue_penalty(self):
        model = self.contended_model(hop=100, bandwidth=4)
        first = model.traverse(0, 1, 0)
        second = model.traverse(0, 1, 0)
        assert first == 100
        assert second == 125  # occupancy 100 // 4 = 25

    def test_disjoint_routes_do_not_interfere(self):
        model = self.contended_model()
        a = model.traverse(0, 1, 0)
        b = model.traverse(10, 9, 0)
        assert a == model.network(0, 1)
        assert b == model.network(10, 9)
        assert model.contention_cycles == 0

    def test_ejection_port_is_shared(self):
        model = self.contended_model(hop=100, bandwidth=1)
        # 1 -> 0 and 4 -> 0 use disjoint links but the same ejection port.
        first = model.traverse(1, 0, 0)
        second = model.traverse(4, 0, 0)
        assert first == 100
        assert second == 200
        assert model.contention_cycles == 100

    def test_later_departure_clears_the_queue(self):
        model = self.contended_model(hop=100, bandwidth=1)
        model.traverse(0, 1, 0)
        # Departing after the first message's occupancy window: no wait.
        assert model.traverse(0, 1, 500) == 600
        assert model.contention_cycles == 0

    def test_contention_on_a_ring(self):
        model = self.contended_model(num_cores=8, hop=50)
        topo = model.topology
        assert (topo.config.mesh_width, topo.config.mesh_height) == (2, 4)
        first = model.traverse(0, 5, 0)
        second = model.traverse(0, 5, 0)
        assert second > first

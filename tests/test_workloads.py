"""Tests for workload specifications, presets, and the trace generator."""

import pytest

from repro.errors import WorkloadError
from repro.trace.ops import OpKind
from repro.workloads.generator import BLOCK_BYTES, SyntheticWorkloadGenerator, generate_workload
from repro.workloads.presets import WORKLOAD_PRESETS, preset, workload_names
from repro.workloads.registry import build_trace
from repro.workloads.spec import WorkloadSpec


def small_spec(**overrides) -> WorkloadSpec:
    base = dict(name="unit", ops_per_thread=600, sync_interval=40.0,
                load_fraction=0.4, store_fraction=0.3, compute_fraction=0.3)
    base.update(overrides)
    return WorkloadSpec(**base)


class TestWorkloadSpec:
    def test_valid_spec(self):
        spec = small_spec()
        assert spec.ops_per_thread == 600

    def test_mix_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            small_spec(load_fraction=0.5, store_fraction=0.5, compute_fraction=0.5)

    def test_negative_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            small_spec(load_fraction=-0.1, store_fraction=0.6, compute_fraction=0.5)

    def test_bad_shared_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            small_spec(shared_fraction=1.5)

    def test_bad_locality_rejected(self):
        with pytest.raises(WorkloadError):
            small_spec(locality=-0.2)

    def test_bad_lock_affinity_rejected(self):
        with pytest.raises(WorkloadError):
            small_spec(lock_affinity=2.0)

    def test_scaled_changes_only_length(self):
        spec = small_spec()
        scaled = spec.scaled(50)
        assert scaled.ops_per_thread == 50
        assert scaled.sync_interval == spec.sync_interval

    def test_describe(self):
        info = small_spec().describe()
        assert info["name"] == "unit"
        assert "sync interval" in info


class TestGenerator:
    def test_exact_length(self):
        trace = generate_workload(small_spec(), num_threads=3, seed=1)
        assert trace.num_threads == 3
        assert all(len(t) == 600 for t in trace)

    def test_deterministic_for_same_seed(self):
        a = generate_workload(small_spec(), num_threads=2, seed=5)
        b = generate_workload(small_spec(), num_threads=2, seed=5)
        for ta, tb in zip(a, b):
            assert list(ta) == list(tb)

    def test_different_seeds_differ(self):
        a = generate_workload(small_spec(), num_threads=1, seed=1)
        b = generate_workload(small_spec(), num_threads=1, seed=2)
        assert list(a[0]) != list(b[0])

    def test_threads_differ_from_each_other(self):
        trace = generate_workload(small_spec(), num_threads=2, seed=1)
        assert list(trace[0]) != list(trace[1])

    def test_contains_synchronisation(self):
        trace = generate_workload(small_spec(), num_threads=1, seed=3)
        thread = trace[0]
        assert thread.count(OpKind.ATOMIC) > 0
        assert thread.count(OpKind.FENCE) > 0

    def test_acquire_fence_follows_lock_atomic(self):
        trace = generate_workload(small_spec(), num_threads=1, seed=3)
        ops = list(trace[0])
        for i, op in enumerate(ops[:-1]):
            if op.label == "lock_acquire":
                assert ops[i + 1].kind is OpKind.FENCE

    def test_private_regions_disjoint_across_threads(self):
        trace = generate_workload(small_spec(shared_fraction=0.0,
                                             sync_interval=10_000.0),
                                  num_threads=2, seed=4)
        blocks = []
        for thread in trace:
            blocks.append({op.address // BLOCK_BYTES for op in thread if op.is_memory})
        assert not (blocks[0] & blocks[1])

    def test_locks_are_shared_across_threads(self):
        spec = small_spec(sync_interval=10.0, num_locks=2, lock_affinity=0.0)
        trace = generate_workload(spec, num_threads=2, seed=4)
        lock_blocks = []
        for thread in trace:
            lock_blocks.append({op.address // BLOCK_BYTES for op in thread
                                if op.label == "lock_acquire"})
        assert lock_blocks[0] & lock_blocks[1]

    def test_lock_affinity_partitions_locks(self):
        spec = small_spec(sync_interval=10.0, num_locks=32, lock_affinity=1.0)
        trace = generate_workload(spec, num_threads=2, seed=4)
        lock_blocks = []
        for thread in trace:
            lock_blocks.append({op.address // BLOCK_BYTES for op in thread
                                if op.label == "lock_acquire"})
        assert not (lock_blocks[0] & lock_blocks[1])

    def test_store_bursts_cover_whole_blocks(self):
        spec = small_spec(store_burst_prob=0.2, store_burst_len=3.0)
        trace = generate_workload(spec, num_threads=1, seed=9)
        burst_addresses = [op.address for op in trace[0] if op.label == "burst"]
        assert burst_addresses
        # Bursts write word-granularity addresses within consecutive blocks.
        assert any(a % BLOCK_BYTES != 0 for a in burst_addresses)

    def test_lockfree_atomics_emitted_when_enabled(self):
        spec = small_spec(lockfree_atomic_prob=0.1)
        trace = generate_workload(spec, num_threads=1, seed=2)
        assert any(op.label == "lockfree_atomic" for op in trace[0])

    def test_generate_thread_individually(self):
        gen = SyntheticWorkloadGenerator(small_spec(), num_threads=4, seed=1)
        whole = gen.generate()
        alone = gen.generate_thread(2)
        assert list(whole[2]) == list(alone)


class TestPresets:
    def test_seven_paper_workloads(self):
        assert len(workload_names()) == 7
        assert set(workload_names()) == set(WORKLOAD_PRESETS)

    def test_preset_lookup(self):
        assert preset("apache").name == "apache"

    def test_unknown_preset_rejected(self):
        with pytest.raises(WorkloadError):
            preset("doom")

    def test_web_servers_synchronise_most_often(self):
        assert preset("apache").sync_interval < preset("dss-db2").sync_interval
        assert preset("zeus").sync_interval < preset("barnes").sync_interval

    def test_scientific_workloads_have_high_locality(self):
        assert preset("barnes").locality > preset("oltp-oracle").locality
        assert preset("ocean").locality > preset("dss-db2").locality

    def test_all_presets_generate(self):
        for name in workload_names():
            trace = build_trace(name, num_threads=2, ops_per_thread=200, seed=1)
            assert trace.total_ops() == 400
            assert trace.name == name

    def test_build_trace_accepts_spec_directly(self):
        trace = build_trace(small_spec(), num_threads=2, seed=1)
        assert trace.name == "unit"

    def test_build_trace_overrides_length(self):
        trace = build_trace("barnes", num_threads=2, ops_per_thread=123, seed=1)
        assert all(len(t) == 123 for t in trace)

"""The public API facade and the unified campaign CLI flags."""

import json

import pytest

import repro
import repro.api
from repro import (
    ConsistencyModel,
    PlanExecution,
    build_trace,
    execute_plan,
    open_cache,
    run_study,
    simulate,
    small_config,
)
from repro.campaign import ResultCache, ShardedBackend, SqliteBackend
from repro.cli import main
from repro.errors import ReproError
from repro.experiments.common import ExperimentSettings

QUICK = ExperimentSettings.quick(num_cores=2, ops_per_thread=200,
                                 workloads=("apache",))


class TestFacadeSurface:
    def test_all_exports_resolve(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is getattr(repro, name)

    def test_blessed_entry_points_exported(self):
        assert {"simulate", "run_study", "execute_plan",
                "open_cache"} <= set(repro.api.__all__)
        assert set(repro.api.__all__) <= set(repro.__all__)


class TestOpenCache:
    def test_none_is_default_directory_cache(self):
        cache = open_cache()
        assert isinstance(cache, ResultCache)
        assert cache.describe() == "dir:results/cache"

    def test_url_and_path_forms(self, tmp_path):
        assert open_cache(str(tmp_path / "c")).describe() == \
            f"dir:{tmp_path}/c"
        assert open_cache(f"sqlite://{tmp_path}/c.sqlite").describe() == \
            f"sqlite:{tmp_path}/c.sqlite"
        assert open_cache(
            f"sqlite://{tmp_path}/c.sqlite?shards=2").describe() == \
            "sharded[2]"

    def test_passthrough(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert open_cache(cache) is cache
        backend = SqliteBackend(tmp_path / "c.sqlite")
        wrapped = open_cache(backend)
        assert isinstance(wrapped, ResultCache)
        assert wrapped.backend is backend


class TestSimulate:
    def test_trace_mode_matches_engine_simulate(self):
        from repro.engine.simulator import simulate as engine_simulate

        trace = build_trace("apache", num_threads=4, ops_per_thread=200,
                            seed=1)
        config = small_config(ConsistencyModel.SC)
        assert simulate(config, trace).to_dict() == \
            engine_simulate(config, trace).to_dict()

    def test_name_mode_is_deterministic(self):
        first = simulate("sc", "apache", cores=2, ops=200, seed=1)
        again = simulate("sc", "apache", cores=2, ops=200, seed=1)
        assert first.to_dict() == again.to_dict()

    def test_config_name_with_prebuilt_trace(self):
        trace = build_trace("apache", num_threads=2, ops_per_thread=200,
                            seed=1)
        result = simulate("sc", trace)
        assert result.to_dict() == simulate("sc", trace).to_dict()

    def test_scenario_names_accepted(self):
        result = simulate("sc", "false-sharing-storm", cores=2, ops=200)
        assert result.cycles_per_core() > 0

    def test_cached_call_round_trips(self, tmp_path):
        cache = open_cache(f"sqlite://{tmp_path}/c.sqlite")
        cold = simulate("sc", "apache", cores=2, ops=200, seed=1,
                        cache=cache)
        warm = simulate("sc", "apache", cores=2, ops=200, seed=1,
                        cache=cache)
        assert cache.stats.hits == 1 and cache.stats.stores == 1
        assert cold.to_dict() == warm.to_dict()
        uncached = simulate("sc", "apache", cores=2, ops=200, seed=1)
        assert warm.to_dict() == uncached.to_dict()


class TestRunStudyAndExecutePlan:
    def test_execute_plan_matches_run_study(self, tmp_path):
        direct = run_study("figure1", QUICK,
                           cache=str(tmp_path / "cache-a"))
        execution = execute_plan("figure1", QUICK,
                                 cache=str(tmp_path / "cache-b"))
        assert isinstance(execution, PlanExecution)
        assert execution.names() == ("figure1",)
        assert execution.result("figure1").format() == direct.format()

    def test_execute_plan_report_and_memoized_results(self, tmp_path):
        execution = execute_plan(["figure1"], QUICK,
                                 cache=str(tmp_path / "cache"))
        assert execution.report.simulated == len(execution.plan.unique_cells)
        assert execution.result("figure1") is execution.result("figure1")
        assert "figure1" in execution.results()
        assert "unique jobs" in execution.describe()

    def test_execute_plan_deduplicates_across_studies(self, tmp_path):
        execution = execute_plan(["figure8", "figure9"], QUICK,
                                 cache=str(tmp_path / "cache"))
        assert execution.plan.deduplicated > 0
        assert execution.report.simulated == len(execution.plan.unique_cells)


class TestUnifiedCliFlags:
    CAMPAIGN_COMMANDS = (
        ["simulate", "--cores", "2", "--ops", "200"],
        ["figure", "8", "--cores", "2", "--ops", "200"],
        ["sweep", "--quick"],
        ["study", "run", "figure1", "--quick"],
        ["scenario", "run", "false-sharing-storm", "--small"],
        ["worker", "figure1", "--quick"],
    )

    def test_every_campaign_command_accepts_the_shared_flags(self, capsys):
        """The parent parser gives each subcommand the identical set."""
        from repro.cli import _build_parser

        parser = _build_parser()
        for argv in self.CAMPAIGN_COMMANDS:
            args = parser.parse_args(argv + ["--jobs", "2", "--no-cache",
                                             "--engine", "fast",
                                             "--telemetry"])
            assert args.jobs == 2 and args.no_cache and args.telemetry
            assert args.cache is None and args.cache_dir is None

    def test_cache_url_flag_sqlite(self, tmp_path, capsys):
        url = f"sqlite://{tmp_path}/c.sqlite"
        assert main(["sweep", "--quick", "--cache", url]) == 0
        capsys.readouterr()
        assert main(["sweep", "--quick", "--cache", url]) == 0
        out = capsys.readouterr().out
        assert "0 simulated, 2 cache hits" in out
        assert f"sqlite:{tmp_path}/c.sqlite" in out

    def test_cache_dir_flag_is_a_deprecated_alias(self, tmp_path, capsys):
        path = str(tmp_path / "cache")
        assert main(["sweep", "--quick", "--cache-dir", path]) == 0
        out = capsys.readouterr().out
        assert "--cache-dir is deprecated" in out
        assert main(["sweep", "--quick", "--cache", path]) == 0
        out = capsys.readouterr().out
        assert "0 simulated, 2 cache hits" in out

    def test_cache_and_cache_dir_together_rejected(self, tmp_path):
        assert main(["sweep", "--quick",
                     "--cache", str(tmp_path / "a"),
                     "--cache-dir", str(tmp_path / "b")]) == 2

    def test_worker_requires_a_cache(self):
        assert main(["worker", "figure1", "--quick", "--no-cache"]) == 2

    def test_worker_then_study_run_is_fully_cached(self, tmp_path, capsys):
        url = f"sqlite://{tmp_path}/queue.sqlite"
        assert main(["worker", "figure1", "--quick", "--cache", url,
                     "--worker-id", "w1"]) == 0
        out = capsys.readouterr().out
        assert "[worker w1]" in out
        assert main(["study", "run", "figure1", "--quick", "--cache", url,
                     "--out-dir", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "0 simulated, 6 cache hits" in out

    def test_sharded_cache_reports_per_backend_stats(self, tmp_path, capsys):
        url = f"dir://{tmp_path}/cache?shards=2"
        assert main(["sweep", "--quick", "--cache", url]) == 0
        out = capsys.readouterr().out
        assert "sharded[2]" in out
        assert "shard0" in out and "shard1" in out

"""Tests for repro.cpu.stats (cycle classification and rollback accounting)."""

import pytest

from repro.cpu.stats import BREAKDOWN_COMPONENTS, STALL_CLASSES, CoreStats


class TestBasicAccounting:
    def test_initial_state_is_zero(self):
        stats = CoreStats()
        assert stats.total_accounted() == 0
        assert all(value == 0 for value in stats.breakdown().values())

    def test_add_cycles(self):
        stats = CoreStats()
        stats.add_cycles("busy", 10)
        stats.add_cycles("other", 5)
        stats.add_cycles("sb_drain", 3)
        assert stats.busy == 10
        assert stats.total_accounted() == 18

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            CoreStats().add_cycles("busy", -1)

    def test_ordering_stall_cycles(self):
        stats = CoreStats(sb_full=5, sb_drain=7, violation=3, busy=100)
        assert stats.ordering_stall_cycles() == 15

    def test_breakdown_components_constant(self):
        assert set(BREAKDOWN_COMPONENTS) == {"busy", "other", "sb_full", "sb_drain",
                                             "violation"}
        assert set(STALL_CLASSES) < set(BREAKDOWN_COMPONENTS)


class TestRollback:
    def test_rollback_restores_work_and_charges_violation(self):
        stats = CoreStats()
        stats.add_cycles("busy", 100)
        snapshot = stats.snapshot()
        stats.add_cycles("busy", 40)
        stats.add_cycles("other", 60)
        stats.rollback_to(snapshot, elapsed=120)
        assert stats.busy == 100
        assert stats.other == 0
        assert stats.violation == 120
        assert stats.total_accounted() == 220

    def test_rollback_is_cumulative(self):
        stats = CoreStats()
        snap = stats.snapshot()
        stats.rollback_to(snap, elapsed=50)
        stats.rollback_to(snap, elapsed=30)
        assert stats.violation == 80

    def test_rollback_rejects_negative_elapsed(self):
        stats = CoreStats()
        with pytest.raises(ValueError):
            stats.rollback_to(stats.snapshot(), elapsed=-1)

    def test_snapshot_excludes_violation(self):
        stats = CoreStats()
        stats.add_cycles("violation", 10)
        assert "violation" not in stats.snapshot()


class TestMergeAndReset:
    def test_merge_sums_counters(self):
        a = CoreStats(busy=10, other=5, commits=2, loads=7, finish_time=100)
        b = CoreStats(busy=20, sb_drain=3, commits=1, loads=4, finish_time=150)
        a.merge(b)
        assert a.busy == 30
        assert a.sb_drain == 3
        assert a.commits == 3
        assert a.loads == 11
        assert a.finish_time == 150

    def test_reset_measurement_zeroes_everything(self):
        stats = CoreStats(busy=10, other=5, violation=2, commits=3, loads=9,
                          spec_cycles=40)
        stats.reset_measurement()
        assert stats.total_accounted() == 0
        assert stats.commits == 0
        assert stats.loads == 0
        assert stats.spec_cycles == 0

"""Directed tests for the ASO (Atomic Sequence Ordering) baseline."""

import pytest

from repro.aso.ssb import ScalableStoreBuffer
from repro.config import ConsistencyModel, SpeculationConfig, SpeculationMode
from repro.errors import ConfigurationError
from repro.trace.ops import compute, load, store
from tests.conftest import aso_config, block_addr, make_system, run_ops, run_system, tiny_config

A = block_addr(1000)
B = block_addr(2000)
SHARED = block_addr(500)


def single_core(ops, config):
    result = run_ops([ops, [compute(1)]], config)
    return result, result.core_stats[0]


class TestScalableStoreBuffer:
    def test_large_capacity(self):
        ssb = ScalableStoreBuffer()
        assert ssb.capacity >= 128

    def test_commit_drain_latency_scales_with_store_count(self):
        ssb = ScalableStoreBuffer(drain_cycles_per_store=2)
        for i in range(5):
            ssb.add_store(i * 8, now=0, completion_time=10_000, speculative=True,
                          checkpoint_id=1)
        assert ssb.speculative_store_count(0) == 5
        assert ssb.commit_drain_latency(0) == 10
        assert ssb.commit_drains == 1
        assert ssb.committed_stores == 5

    def test_non_speculative_stores_not_counted(self):
        ssb = ScalableStoreBuffer()
        ssb.add_store(0, 0, 10_000, speculative=False)
        assert ssb.speculative_store_count(0) == 0


class TestASOController:
    def test_requires_sc(self):
        spec = SpeculationConfig(mode=SpeculationMode.ASO)
        config = tiny_config(ConsistencyModel.RMO, spec)
        with pytest.raises(ConfigurationError):
            make_system([[compute(1)], [compute(1)]], config)

    def test_uses_scalable_store_buffer(self):
        system = make_system([[compute(1)], [compute(1)]], aso_config())
        assert isinstance(system.cores[0].controller.sb, ScalableStoreBuffer)

    def test_speculates_on_sc_ordering_stalls(self):
        config = aso_config()
        result, stats = single_core([store(A), load(B), compute(3000)], config)
        assert stats.speculations >= 1
        assert stats.sb_drain == 0
        assert stats.commits >= 1

    def test_periodic_checkpoints_taken(self):
        config = aso_config(memory_latency=600, hop_latency=50)
        interval = config.speculation.aso_checkpoint_interval
        warm = [load(block_addr(5000 + i)) for i in range(3 * interval)]
        # Warm the blocks first so the speculative re-loads are fast hits and
        # many of them retire while the store miss is still outstanding.
        ops = warm + [compute(20_000), store(A)]
        ops += [load(block_addr(5000 + i)) for i in range(3 * interval)]
        ops.append(compute(5000))
        system = make_system([ops, [compute(1)]], config)
        controller = system.cores[0].controller
        max_ckpts = 0
        original = controller.process_op

        def wrapped(op, now):
            nonlocal max_ckpts
            out = original(op, now)
            max_ckpts = max(max_ckpts, controller.checkpoints_in_use)
            return out

        controller.process_op = wrapped
        run_system(system)
        assert max_ckpts >= 2

    def test_matches_invisifence_when_no_conflicts(self):
        from tests.conftest import selective_config
        ops = []
        for i in range(12):
            ops.extend([store(block_addr(4000 + i)), load(block_addr(6000 + i)),
                        compute(5)])
        aso, aso_stats = single_core(list(ops), aso_config())
        invisi, inv_stats = single_core(list(ops),
                                        selective_config(ConsistencyModel.SC))
        # Without violations the two proposals perform comparably.
        ratio = aso_stats.finish_time / inv_stats.finish_time
        assert 0.8 < ratio < 1.25

    def test_violation_rolls_back_less_work_than_single_checkpoint(self):
        """ASO's periodic checkpoints bound the work lost to a violation."""
        from tests.conftest import selective_config

        def ops_for_run():
            core0 = [store(A)]
            core0 += [load(block_addr(13_000 + i)) for i in range(40)]
            core0 += [load(SHARED)]
            core0 += [compute(40)] * 10
            core1 = [compute(2500), store(SHARED), compute(10)]
            return [core0, core1]

        aso = run_ops(ops_for_run(), aso_config(memory_latency=600, hop_latency=50))
        invisi = run_ops(ops_for_run(),
                         selective_config(ConsistencyModel.SC, memory_latency=600,
                                          hop_latency=50))
        if aso.core_stats[0].aborts and invisi.core_stats[0].aborts:
            assert (aso.core_stats[0].replayed_ops
                    <= invisi.core_stats[0].replayed_ops)

    def test_accounting_identity(self):
        config = aso_config(memory_latency=600, hop_latency=50, num_cores=2)
        core0 = [store(A), load(SHARED)] + [compute(50)] * 10
        core1 = [compute(300), store(SHARED)]
        result = run_ops([core0, core1], config)
        for stats in result.core_stats:
            assert stats.total_accounted() == stats.finish_time

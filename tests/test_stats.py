"""Tests for the statistics helpers (breakdowns, confidence intervals, reports)."""

import math

import pytest

from repro.config import ConsistencyModel
from repro.engine.simulator import simulate
from repro.stats.breakdown import (
    average_over_workloads,
    normalized_breakdown,
    normalized_total,
    ordering_stall_breakdown,
    speedup,
    speedup_table,
)
from repro.stats.confidence import mean_confidence_interval
from repro.stats.report import format_breakdown_table, format_series_table, format_table
from repro.trace.ops import atomic, compute, load, store
from tests.conftest import block_addr, make_trace, tiny_config


def run_pair():
    ops = []
    for i in range(15):
        ops.extend([store(block_addr(4000 + i)), load(block_addr(6000 + i)),
                    atomic(block_addr(100)), compute(4)])
    trace = make_trace([ops, [compute(1)]])
    slow = simulate(tiny_config(ConsistencyModel.SC), trace)
    fast = simulate(tiny_config(ConsistencyModel.RMO), trace)
    return slow, fast


class TestBreakdownHelpers:
    def test_speedup_direction(self):
        slow, fast = run_pair()
        assert speedup(fast, slow) > 1.0
        assert speedup(slow, fast) < 1.0

    def test_speedup_table(self):
        slow, fast = run_pair()
        table = speedup_table({"sc": slow, "rmo": fast}, baseline_key="sc")
        assert table["sc"] == pytest.approx(1.0)
        assert table["rmo"] > 1.0

    def test_normalized_breakdown_baseline_sums_to_100(self):
        slow, fast = run_pair()
        values = normalized_breakdown(slow, slow)
        assert sum(values.values()) == pytest.approx(100.0)

    def test_normalized_total_smaller_for_faster_config(self):
        slow, fast = run_pair()
        assert normalized_total(fast, slow) < 100.0

    def test_ordering_stall_breakdown_fractions(self):
        slow, _ = run_pair()
        values = ordering_stall_breakdown(slow)
        assert set(values) == {"sb_full", "sb_drain"}
        assert all(0.0 <= v <= 100.0 for v in values.values())

    def test_average_over_workloads(self):
        assert average_over_workloads({"a": 1.0, "b": 3.0}) == 2.0
        assert average_over_workloads({}) == 0.0


class TestConfidenceIntervals:
    def test_single_sample_zero_width(self):
        interval = mean_confidence_interval([2.5])
        assert interval.mean == 2.5
        assert interval.half_width == 0.0
        assert interval.samples == 1

    def test_single_sample_never_nan_regression(self):
        """n < 2 must yield a finite point estimate, not NaN or an error.

        Regression guard for single-seed runs: ``std(ddof=1)`` of one
        sample is NaN, so the n == 1 case must short-circuit before the
        Student-t machinery at every confidence level.
        """
        for confidence in (0.5, 0.90, 0.95, 0.999):
            interval = mean_confidence_interval([7.25], confidence=confidence)
            assert math.isfinite(interval.mean)
            assert math.isfinite(interval.half_width)
            assert interval.half_width == 0.0
            assert interval.low == interval.mean == interval.high == 7.25
            assert interval.confidence == confidence

    def test_single_sample_accepts_any_iterable(self):
        interval = mean_confidence_interval(iter([3.0]))
        assert interval.samples == 1 and interval.half_width == 0.0

    def test_constant_samples_zero_width(self):
        interval = mean_confidence_interval([1.0, 1.0, 1.0, 1.0])
        assert interval.half_width == pytest.approx(0.0)

    def test_known_interval(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        interval = mean_confidence_interval(samples, confidence=0.95)
        assert interval.mean == pytest.approx(3.0)
        # Half width = t(0.975, 4) * s/sqrt(5) = 2.7764 * 1.5811/2.2361
        assert interval.half_width == pytest.approx(1.9634, rel=1e-3)
        assert interval.low < interval.mean < interval.high

    def test_wider_confidence_gives_wider_interval(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        narrow = mean_confidence_interval(samples, confidence=0.90)
        wide = mean_confidence_interval(samples, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_rejects_empty_and_bad_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0], confidence=1.5)

    def test_str_representation(self):
        text = str(mean_confidence_interval([1.0, 2.0]))
        assert "±" in text


class TestReportFormatting:
    def test_format_table_alignment_and_title(self):
        text = format_table(["name", "value"], [["apache", 1.234], ["zeus", 10.5]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "apache" in text and "1.23" in text
        # All data rows have the same width as the header row.
        assert len(set(len(line) for line in lines[2:])) >= 1

    def test_format_breakdown_table(self):
        data = {"apache": {"sc": {"busy": 30.0, "other": 50.0},
                           "rmo": {"busy": 30.0, "other": 40.0}}}
        text = format_breakdown_table(data, ["busy", "other"], title="breakdown")
        assert "apache" in text and "sc" in text and "rmo" in text
        assert "80.00" in text  # total column

    def test_format_series_table_handles_missing_configs(self):
        series = {"apache": {"sc": 1.0, "rmo": 1.5}, "zeus": {"sc": 1.0}}
        text = format_series_table(series)
        assert "apache" in text and "zeus" in text
        assert "nan" in text.lower()

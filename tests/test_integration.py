"""End-to-end integration tests on generated workloads.

These run small multi-core simulations of the synthetic workloads across
the main machine configurations and check the cross-configuration
relationships the paper's evaluation rests on, plus global invariants
(coherence state consistency, accounting identities, determinism).
"""

import pytest

from repro.config import ConsistencyModel, ViolationPolicy
from repro.engine.simulator import simulate
from repro.engine.system import build_system
from repro.engine.simulator import Simulator
from repro.workloads.registry import build_trace
from tests.conftest import continuous_config, selective_config, tiny_config

CORES = 4
OPS = 1200


@pytest.fixture(scope="module")
def apache_trace():
    return build_trace("apache", num_threads=CORES, ops_per_thread=OPS, seed=11)


@pytest.fixture(scope="module")
def apache_results(apache_trace):
    """Run the main configurations once and share across tests."""
    configs = {
        "sc": tiny_config(ConsistencyModel.SC, num_cores=CORES),
        "tso": tiny_config(ConsistencyModel.TSO, num_cores=CORES),
        "rmo": tiny_config(ConsistencyModel.RMO, num_cores=CORES),
        "invisi_sc": selective_config(ConsistencyModel.SC, num_cores=CORES),
        "invisi_rmo": selective_config(ConsistencyModel.RMO, num_cores=CORES),
        "invisi_cont": continuous_config(num_cores=CORES, min_chunk_size=50),
        "invisi_cont_cov": continuous_config(
            num_cores=CORES, min_chunk_size=50,
            violation_policy=ViolationPolicy.COMMIT_ON_VIOLATE),
    }
    return {name: simulate(config, apache_trace) for name, config in configs.items()}


class TestCrossModelRelationships:
    def test_relaxed_models_not_slower_than_sc(self, apache_results):
        sc = apache_results["sc"].cycles_per_core()
        assert apache_results["tso"].cycles_per_core() <= sc
        assert apache_results["rmo"].cycles_per_core() <= sc * 1.01

    def test_ordering_stalls_shrink_with_relaxation(self, apache_results):
        sc = apache_results["sc"].ordering_stall_fraction()
        tso = apache_results["tso"].ordering_stall_fraction()
        rmo = apache_results["rmo"].ordering_stall_fraction()
        assert sc >= tso >= rmo * 0.9

    def test_invisifence_removes_most_ordering_stalls(self, apache_results):
        conventional = apache_results["sc"].aggregate()
        speculative = apache_results["invisi_sc"].aggregate()
        conventional_stalls = conventional.sb_full + conventional.sb_drain
        speculative_stalls = speculative.sb_full + speculative.sb_drain
        assert speculative_stalls < 0.35 * max(1, conventional_stalls)

    def test_invisifence_sc_competitive_with_conventional_rmo(self, apache_results):
        assert (apache_results["invisi_sc"].cycles_per_core()
                <= apache_results["rmo"].cycles_per_core() * 1.05)

    def test_invisi_rmo_at_least_as_fast_as_invisi_sc(self, apache_results):
        assert (apache_results["invisi_rmo"].cycles_per_core()
                <= apache_results["invisi_sc"].cycles_per_core() * 1.1)

    def test_continuous_speculates_nearly_always(self, apache_results):
        assert apache_results["invisi_cont"].speculation_fraction() > 0.8
        assert apache_results["invisi_sc"].speculation_fraction() < 0.9

    def test_cov_reduces_violation_cycles(self, apache_results):
        plain = apache_results["invisi_cont"].aggregate().violation
        cov = apache_results["invisi_cont_cov"].aggregate().violation
        assert cov <= plain

    def test_speculative_configs_commit(self, apache_results):
        for name in ("invisi_sc", "invisi_rmo", "invisi_cont", "invisi_cont_cov"):
            assert apache_results[name].aggregate().commits > 0


class TestGlobalInvariants:
    def test_accounting_identity_all_configs(self, apache_results):
        for name, result in apache_results.items():
            for stats in result.core_stats:
                assert stats.total_accounted() == stats.finish_time, name

    def test_coherence_invariants_after_full_run(self, apache_trace):
        system = build_system(selective_config(ConsistencyModel.SC, num_cores=CORES),
                              apache_trace)
        Simulator(system).run()
        system.memory.check_invariants()

    def test_no_speculative_state_left_behind(self, apache_trace):
        for config in (selective_config(ConsistencyModel.SC, num_cores=CORES),
                       continuous_config(num_cores=CORES, min_chunk_size=50)):
            system = build_system(config, apache_trace)
            Simulator(system).run()
            for core in system.cores:
                l1 = system.memory.l1(core.core_id)
                assert not any(block.speculative for block in l1.blocks())
                assert core.controller.sb.is_empty(core.finish_time)

    def test_determinism_across_runs(self, apache_trace):
        config = selective_config(ConsistencyModel.SC, num_cores=CORES)
        first = simulate(config, apache_trace)
        second = simulate(config, apache_trace)
        assert first.runtime == second.runtime
        assert first.breakdown() == second.breakdown()

    def test_different_seeds_give_different_but_similar_runtimes(self):
        config = tiny_config(ConsistencyModel.SC, num_cores=CORES)
        runtimes = []
        for seed in (1, 2, 3):
            trace = build_trace("barnes", num_threads=CORES, ops_per_thread=600,
                                seed=seed)
            runtimes.append(simulate(config, trace).cycles_per_core())
        assert len(set(runtimes)) > 1
        assert max(runtimes) < 2.0 * min(runtimes)


class TestOtherWorkloads:
    @pytest.mark.parametrize("workload", ["zeus", "oltp-db2", "dss-db2", "ocean"])
    def test_workloads_run_under_speculation(self, workload):
        trace = build_trace(workload, num_threads=2, ops_per_thread=500, seed=3)
        config = selective_config(ConsistencyModel.SC, num_cores=2)
        result = simulate(config, trace)
        assert result.runtime > 0
        assert result.aggregate().commits >= 0
        for stats in result.core_stats:
            assert stats.total_accounted() == stats.finish_time

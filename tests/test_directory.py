"""Tests for the full-map directory and the shared L2."""

import pytest

from repro.coherence.directory import Directory, DirectoryEntry
from repro.coherence.l2 import L2Cache
from repro.config import CacheConfig
from repro.errors import CoherenceError


class TestDirectoryEntry:
    def test_initial_state_uncached(self):
        entry = DirectoryEntry(address=0)
        assert entry.is_uncached
        assert not entry.is_shared
        assert not entry.is_modified
        assert entry.holders() == set()

    def test_shared_state(self):
        entry = DirectoryEntry(address=0, sharers={1, 2})
        assert entry.is_shared
        assert entry.holders() == {1, 2}

    def test_modified_state(self):
        entry = DirectoryEntry(address=0, owner=3)
        assert entry.is_modified
        assert entry.holders() == {3}

    def test_invariant_check(self):
        entry = DirectoryEntry(address=0, owner=1, sharers={2})
        with pytest.raises(CoherenceError):
            entry.check()


class TestDirectory:
    def test_entry_created_on_demand(self):
        directory = Directory(block_bytes=64)
        assert directory.peek(0) is None
        entry = directory.entry(0)
        assert entry.address == 0
        assert directory.peek(0) is entry
        assert len(directory) == 1

    def test_entry_is_stable(self):
        directory = Directory(block_bytes=64)
        assert directory.entry(128) is directory.entry(128)

    def test_check_invariants_scans_all(self):
        directory = Directory(block_bytes=64)
        directory.entry(0).sharers.add(1)
        directory.entry(64).owner = 2
        directory.check_invariants()
        directory.entry(128).owner = 1
        directory.entry(128).sharers.add(3)
        with pytest.raises(CoherenceError):
            directory.check_invariants()

    def test_iteration(self):
        directory = Directory(block_bytes=64)
        for i in range(5):
            directory.entry(i * 64)
        assert len(list(directory)) == 5


class TestL2Cache:
    def _l2(self, blocks: int = 16) -> L2Cache:
        return L2Cache(CacheConfig(size_bytes=blocks * 64, associativity=4,
                                   block_bytes=64, hit_latency=10))

    def test_miss_then_hit(self):
        l2 = self._l2()
        assert not l2.probe(0)
        l2.install(0)
        assert l2.probe(0)
        assert l2.hits == 1 and l2.misses == 1

    def test_install_dirty(self):
        l2 = self._l2()
        l2.install_dirty(64)
        assert l2.contains(64)

    def test_eviction_bounded_by_capacity(self):
        l2 = self._l2(blocks=8)
        for i in range(32):
            l2.install(i * 64)
        assert len(l2) <= 8

    def test_dirty_evictions_counted(self):
        l2 = self._l2(blocks=4)
        for i in range(12):
            l2.install_dirty(i * 64)
        assert l2.writebacks > 0


class TestBankedL2:
    def _banked(self, blocks: int = 16, banks: int = 4) -> L2Cache:
        return L2Cache(CacheConfig(size_bytes=blocks * 64, associativity=1,
                                   block_bytes=64, hit_latency=10),
                       banks=banks)

    def test_single_bank_matches_monolithic(self):
        mono = L2Cache(CacheConfig(size_bytes=8 * 64, associativity=4,
                                   block_bytes=64, hit_latency=10))
        assert mono.num_banks == 1
        banked = self._banked(blocks=8, banks=1)
        for i in range(32):
            mono.install(i * 64)
            banked.install(i * 64)
        assert len(mono) <= 8 and len(banked) <= 8

    def test_blocks_interleave_across_banks(self):
        l2 = self._banked(blocks=16, banks=4)
        for i in range(4):
            assert l2.bank_of(i * 64) == i
        assert l2.bank_of(4 * 64) == 0

    def test_bank_capacity_is_partitioned(self):
        # 16 direct-mapped blocks over 4 banks: 4 blocks per bank.  Fill
        # one bank's worth of conflicting addresses; other banks untouched.
        l2 = self._banked(blocks=16, banks=4)
        for i in range(12):
            l2.install(i * 4 * 64)  # all map to bank 0
        assert len(l2) <= 4
        l2.install(64)  # bank 1
        assert l2.contains(64)

    def test_total_capacity_respected(self):
        l2 = self._banked(blocks=16, banks=4)
        for i in range(128):
            l2.install(i * 64)
        assert len(l2) <= 16

    def test_every_bank_set_is_reachable(self):
        # Regression: banking must divide the interleave stride out of the
        # set index, or each bank only ever reaches 1/banks of its sets.
        l2 = self._banked(blocks=16, banks=4)
        for i in range(4):  # blocks 0, 4, 8, 12 all interleave to bank 0
            l2.install(i * 4 * 64)
        for i in range(4):
            assert l2.contains(i * 4 * 64)

    def test_full_nominal_capacity_is_usable(self):
        l2 = self._banked(blocks=16, banks=4)
        for i in range(16):
            l2.install(i * 64)
        assert len(l2) == 16
        for i in range(16):
            assert l2.contains(i * 64)


class Test64CoreDirectory:
    """Directory sharer-set and flash-op behaviour at the 8x8 machine."""

    def _system(self):
        from repro.coherence.memory_system import MemorySystem
        from repro.config import small_config

        config = small_config(num_cores=64)
        assert config.interconnect.num_nodes == 64
        assert config.l2_banks == 4
        return MemorySystem(config), config

    def test_all_64_cores_share_one_block(self):
        memory, config = self._system()
        for core in range(64):
            memory.access(core, 0x1000, is_write=False, now=core * 1000)
        entry = memory.directory.peek(0x1000)
        assert entry is not None
        assert entry.holders() == set(range(64))
        memory.check_invariants()

    def test_write_invalidates_63_sharers(self):
        memory, config = self._system()
        for core in range(64):
            memory.access(core, 0x1000, is_write=False, now=core * 1000)
        memory.access(7, 0x1000, is_write=True, now=200_000)
        entry = memory.directory.peek(0x1000)
        assert entry.owner == 7
        assert entry.sharers == set()
        for core in range(64):
            if core != 7:
                assert not memory.contains(core, 0x1000)
        memory.check_invariants()

    def test_invalidation_latency_grows_with_sharer_distance(self):
        memory, config = self._system()
        model = memory.latency_model
        near = model.invalidation_round(home=0, sharers=[1], requester=0)
        far = model.invalidation_round(home=0, sharers=list(range(1, 64)),
                                       requester=0)
        assert far > near

    def test_flash_ops_scale_to_64_cores(self):
        memory, config = self._system()
        # Every core writes its own private block speculatively, and reads
        # one widely shared block speculatively.
        for core in range(64):
            memory.access(core, 0x100000 + core * 64, is_write=True,
                          now=core * 1000, spec_checkpoint=1)
            memory.access(core, 0x2000, is_write=False,
                          now=core * 1000 + 500, spec_checkpoint=1)
        # Abort half the machine: speculatively written blocks invalidate.
        for core in range(0, 64, 2):
            dropped = memory.l1(core).flash_invalidate_spec_written()
            assert dropped == [0x100000 + core * 64]
            assert not memory.contains(core, 0x100000 + core * 64)
        # Commit the other half: spec bits clear, blocks stay resident.
        for core in range(1, 64, 2):
            cleared = memory.l1(core).flash_clear_spec_bits()
            assert cleared >= 1
            assert memory.contains(core, 0x100000 + core * 64)
        memory.check_invariants()

"""Tests for the full-map directory and the shared L2."""

import pytest

from repro.coherence.directory import Directory, DirectoryEntry
from repro.coherence.l2 import L2Cache
from repro.config import CacheConfig
from repro.errors import CoherenceError


class TestDirectoryEntry:
    def test_initial_state_uncached(self):
        entry = DirectoryEntry(address=0)
        assert entry.is_uncached
        assert not entry.is_shared
        assert not entry.is_modified
        assert entry.holders() == set()

    def test_shared_state(self):
        entry = DirectoryEntry(address=0, sharers={1, 2})
        assert entry.is_shared
        assert entry.holders() == {1, 2}

    def test_modified_state(self):
        entry = DirectoryEntry(address=0, owner=3)
        assert entry.is_modified
        assert entry.holders() == {3}

    def test_invariant_check(self):
        entry = DirectoryEntry(address=0, owner=1, sharers={2})
        with pytest.raises(CoherenceError):
            entry.check()


class TestDirectory:
    def test_entry_created_on_demand(self):
        directory = Directory(block_bytes=64)
        assert directory.peek(0) is None
        entry = directory.entry(0)
        assert entry.address == 0
        assert directory.peek(0) is entry
        assert len(directory) == 1

    def test_entry_is_stable(self):
        directory = Directory(block_bytes=64)
        assert directory.entry(128) is directory.entry(128)

    def test_check_invariants_scans_all(self):
        directory = Directory(block_bytes=64)
        directory.entry(0).sharers.add(1)
        directory.entry(64).owner = 2
        directory.check_invariants()
        directory.entry(128).owner = 1
        directory.entry(128).sharers.add(3)
        with pytest.raises(CoherenceError):
            directory.check_invariants()

    def test_iteration(self):
        directory = Directory(block_bytes=64)
        for i in range(5):
            directory.entry(i * 64)
        assert len(list(directory)) == 5


class TestL2Cache:
    def _l2(self, blocks: int = 16) -> L2Cache:
        return L2Cache(CacheConfig(size_bytes=blocks * 64, associativity=4,
                                   block_bytes=64, hit_latency=10))

    def test_miss_then_hit(self):
        l2 = self._l2()
        assert not l2.probe(0)
        l2.install(0)
        assert l2.probe(0)
        assert l2.hits == 1 and l2.misses == 1

    def test_install_dirty(self):
        l2 = self._l2()
        l2.install_dirty(64)
        assert l2.contains(64)

    def test_eviction_bounded_by_capacity(self):
        l2 = self._l2(blocks=8)
        for i in range(32):
            l2.install(i * 64)
        assert len(l2) <= 8

    def test_dirty_evictions_counted(self):
        l2 = self._l2(blocks=4)
        for i in range(12):
            l2.install_dirty(i * 64)
        assert l2.writebacks > 0

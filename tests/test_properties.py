"""Property-based tests (hypothesis) for the core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, ConsistencyModel, StoreBufferConfig, StoreBufferKind
from repro.cpu.stats import CoreStats, STALL_CLASSES
from repro.cpu.store_buffer import CoalescingStoreBuffer, FIFOStoreBuffer
from repro.engine.events import EventQueue
from repro.engine.simulator import simulate
from repro.memory.address import block_address, block_offset, same_block, word_address
from repro.memory.block import CoherenceState
from repro.memory.cache import CacheArray
from repro.workloads.generator import generate_workload
from repro.workloads.spec import WorkloadSpec
from tests.conftest import make_trace, tiny_config
from repro.trace.ops import compute, load, store


addresses = st.integers(min_value=0, max_value=2 ** 40)
block_sizes = st.sampled_from([32, 64, 128, 256])


class TestAddressProperties:
    @given(addresses, block_sizes)
    def test_block_address_is_idempotent_and_aligned(self, addr, block):
        aligned = block_address(addr, block)
        assert aligned % block == 0
        assert aligned <= addr
        assert block_address(aligned, block) == aligned

    @given(addresses, block_sizes)
    def test_offset_within_block(self, addr, block):
        assert 0 <= block_offset(addr, block) < block
        assert block_address(addr, block) + block_offset(addr, block) == addr

    @given(addresses, addresses, block_sizes)
    def test_same_block_consistent_with_block_address(self, a, b, block):
        assert same_block(a, b, block) == (block_address(a, block) == block_address(b, block))

    @given(addresses)
    def test_word_address_aligned(self, addr):
        assert word_address(addr) % 8 == 0
        assert 0 <= addr - word_address(addr) < 8


class TestCacheArrayProperties:
    @given(st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_capacity_and_uniqueness(self, block_indices):
        cache = CacheArray(CacheConfig(size_bytes=16 * 64, associativity=2,
                                       block_bytes=64, hit_latency=1))
        for index in block_indices:
            addr = index * 64
            result = cache.prepare_fill(addr)
            assert not result.requires_forced_commit
            cache.install(addr, CoherenceState.SHARED)
            assert cache.contains(addr)
        assert len(cache) <= 16
        seen = [b.address for b in cache.blocks()]
        assert len(seen) == len(set(seen))

    @given(st.lists(st.tuples(st.integers(0, 60), st.booleans()), min_size=1,
                    max_size=80))
    @settings(max_examples=50)
    def test_flash_operations_leave_no_spec_bits(self, accesses):
        cache = CacheArray(CacheConfig(size_bytes=32 * 64, associativity=4,
                                       block_bytes=64, hit_latency=1))
        for index, is_write in accesses:
            addr = index * 64
            result = cache.prepare_fill(addr)
            if result.requires_forced_commit:
                cache.flash_clear_spec_bits()
                result = cache.prepare_fill(addr)
            block = cache.install(addr, CoherenceState.MODIFIED if is_write
                                  else CoherenceState.SHARED, dirty=is_write)
            if is_write:
                block.mark_spec_written(1)
            else:
                block.mark_spec_read(1)
        cache.flash_invalidate_spec_written()
        assert not any(b.speculative for b in cache.blocks())
        # No speculatively written block survived.
        assert all(not b.dirty or b.spec_written is None for b in cache.blocks())


store_ops = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 500), st.booleans()),
    min_size=1, max_size=60,
)


class TestStoreBufferProperties:
    @given(store_ops)
    @settings(max_examples=50)
    def test_fifo_release_monotonic_and_bounded(self, ops):
        sb = FIFOStoreBuffer(StoreBufferConfig(StoreBufferKind.FIFO_WORD, 64, 8))
        releases = []
        now = 0
        for index, latency, spec in ops:
            if sb.is_full(now):
                now = sb.next_free_slot_time(now)
            entry = sb.add_store(index * 8, now, now + latency, speculative=spec,
                                 checkpoint_id=1 if spec else None)
            releases.append(entry.release_time)
            assert sb.occupancy(now) <= sb.capacity
        assert releases == sorted(releases)
        assert sb.drain_time(now) >= max(releases)
        assert sb.drain_time(now) == max(sb.drain_time(now), now)

    @given(store_ops)
    @settings(max_examples=50)
    def test_coalescing_capacity_and_nonnegative_queries(self, ops):
        sb = CoalescingStoreBuffer(
            StoreBufferConfig(StoreBufferKind.COALESCING_BLOCK, 8, 64))
        now = 0
        for index, latency, spec in ops:
            if sb.is_full(now):
                now = sb.next_free_slot_time(now)
            sb.add_store(index * 64, now, now + latency, speculative=spec,
                         checkpoint_id=1 if spec else None)
            assert sb.occupancy(now) <= sb.capacity
            assert sb.drain_time(now) >= now
            assert sb.next_free_slot_time(now) >= now
        # Queries never mutate state: repeated queries agree.
        assert sb.drain_time(now) == sb.drain_time(now)
        dropped = sb.flash_invalidate_speculative(now)
        assert dropped >= 0
        assert all(not e.speculative for e in sb.entries(now))


class TestEventQueueProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=200))
    @settings(max_examples=50)
    def test_events_fire_in_nondecreasing_time_order(self, times):
        queue = EventQueue()
        fired = []
        for t in times:
            queue.schedule(t, lambda now: fired.append(now))
        queue.run()
        assert fired == sorted(times)


class TestStatsProperties:
    @given(st.lists(st.tuples(st.sampled_from(STALL_CLASSES),
                              st.integers(0, 1000)), max_size=50),
           st.integers(0, 100_000))
    def test_rollback_conserves_totals(self, additions, elapsed):
        stats = CoreStats()
        snapshot = stats.snapshot()
        for category, cycles in additions:
            stats.add_cycles(category, cycles)
        before_violation = stats.violation
        stats.rollback_to(snapshot, elapsed)
        assert stats.violation == before_violation + elapsed
        for category in STALL_CLASSES:
            assert getattr(stats, category) == snapshot[category]


class TestWorkloadProperties:
    @given(st.integers(0, 2 ** 20), st.integers(1, 4),
           st.floats(0.0, 1.0), st.floats(0.05, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_generator_determinism_and_length(self, seed, threads, shared, locality):
        spec = WorkloadSpec(name="prop", ops_per_thread=150,
                            shared_fraction=shared, locality=locality,
                            sync_interval=30.0)
        a = generate_workload(spec, num_threads=threads, seed=seed)
        b = generate_workload(spec, num_threads=threads, seed=seed)
        assert a.total_ops() == threads * 150
        for ta, tb in zip(a, b):
            assert list(ta) == list(tb)


class TestSimulationProperties:
    @given(st.lists(st.tuples(st.integers(0, 30), st.sampled_from(["load", "store", "compute"])),
                    min_size=1, max_size=60),
           st.sampled_from(list(ConsistencyModel)))
    @settings(max_examples=20, deadline=None)
    def test_accounting_identity_for_random_traces(self, ops_desc, model):
        ops = []
        for index, kind in ops_desc:
            addr = (1000 + index) * 64
            if kind == "load":
                ops.append(load(addr))
            elif kind == "store":
                ops.append(store(addr))
            else:
                ops.append(compute(1 + index % 5))
        trace = make_trace([ops, [compute(1)]])
        result = simulate(tiny_config(model), trace)
        for stats in result.core_stats:
            assert stats.total_accounted() == stats.finish_time
        assert result.runtime == max(s.finish_time for s in result.core_stats)

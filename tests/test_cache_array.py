"""Tests for repro.memory.cache (tag array, LRU, flash operations)."""

import pytest

from repro.config import CacheConfig
from repro.errors import SimulationError
from repro.memory.block import CoherenceState
from repro.memory.cache import CacheArray


def small_cache(num_blocks: int = 8, assoc: int = 2) -> CacheArray:
    return CacheArray(CacheConfig(size_bytes=num_blocks * 64, associativity=assoc,
                                  block_bytes=64, hit_latency=2))


def addr_in_set(cache: CacheArray, set_index: int, tag: int) -> int:
    """Build an address mapping to a specific set."""
    num_sets = cache.config.num_sets
    return (tag * num_sets + set_index) * 64


class TestLookupAndInstall:
    def test_empty_cache_misses(self):
        cache = small_cache()
        assert cache.lookup(0) is None
        assert not cache.contains(0)

    def test_install_then_hit(self):
        cache = small_cache()
        cache.install(0, CoherenceState.SHARED)
        assert cache.contains(0)
        block = cache.lookup(0)
        assert block is not None
        assert block.state is CoherenceState.SHARED

    def test_lookup_matches_any_address_in_block(self):
        cache = small_cache()
        cache.install(128, CoherenceState.EXCLUSIVE)
        assert cache.contains(128 + 63)
        assert not cache.contains(128 + 64)

    def test_is_writable(self):
        cache = small_cache()
        cache.install(0, CoherenceState.SHARED)
        cache.install(64, CoherenceState.MODIFIED)
        assert not cache.is_writable(0)
        assert cache.is_writable(64)

    def test_install_invalid_state_rejected(self):
        cache = small_cache()
        with pytest.raises(SimulationError):
            cache.install(0, CoherenceState.INVALID)

    def test_install_updates_existing_block(self):
        cache = small_cache()
        cache.install(0, CoherenceState.SHARED)
        cache.install(0, CoherenceState.MODIFIED, dirty=True)
        block = cache.lookup(0)
        assert block.state is CoherenceState.MODIFIED
        assert block.dirty
        assert len(cache) == 1

    def test_remove(self):
        cache = small_cache()
        cache.install(0, CoherenceState.SHARED)
        removed = cache.remove(0)
        assert removed is not None
        assert not cache.contains(0)
        assert cache.remove(0) is None


class TestEviction:
    def test_no_eviction_while_set_has_room(self):
        cache = small_cache(num_blocks=8, assoc=2)
        a = addr_in_set(cache, 0, 0)
        result = cache.prepare_fill(a)
        assert result.victim is None
        assert not result.requires_forced_commit

    def test_lru_victim_selected(self):
        cache = small_cache(num_blocks=8, assoc=2)
        a = addr_in_set(cache, 0, 0)
        b = addr_in_set(cache, 0, 1)
        c = addr_in_set(cache, 0, 2)
        cache.install(a, CoherenceState.SHARED)
        cache.install(b, CoherenceState.SHARED)
        cache.lookup(a)  # make b the LRU block
        result = cache.prepare_fill(c)
        assert result.victim is not None
        assert result.victim.address == b

    def test_dirty_victim_needs_writeback(self):
        cache = small_cache(num_blocks=8, assoc=1)
        a = addr_in_set(cache, 0, 0)
        b = addr_in_set(cache, 0, 1)
        cache.install(a, CoherenceState.MODIFIED, dirty=True)
        result = cache.prepare_fill(b)
        assert result.victim is not None
        assert result.needs_writeback

    def test_clean_victim_needs_no_writeback(self):
        cache = small_cache(num_blocks=8, assoc=1)
        a = addr_in_set(cache, 0, 0)
        b = addr_in_set(cache, 0, 1)
        cache.install(a, CoherenceState.SHARED)
        result = cache.prepare_fill(b)
        assert result.victim is not None
        assert not result.needs_writeback

    def test_speculative_blocks_not_chosen_as_victims(self):
        cache = small_cache(num_blocks=8, assoc=2)
        a = addr_in_set(cache, 0, 0)
        b = addr_in_set(cache, 0, 1)
        c = addr_in_set(cache, 0, 2)
        spec = cache.install(a, CoherenceState.MODIFIED)
        spec.mark_spec_written(1)
        cache.install(b, CoherenceState.SHARED)
        result = cache.prepare_fill(c)
        assert result.victim is not None
        assert result.victim.address == b

    def test_all_speculative_set_requires_forced_commit(self):
        cache = small_cache(num_blocks=8, assoc=2)
        a = addr_in_set(cache, 0, 0)
        b = addr_in_set(cache, 0, 1)
        c = addr_in_set(cache, 0, 2)
        cache.install(a, CoherenceState.MODIFIED).mark_spec_written(1)
        cache.install(b, CoherenceState.SHARED).mark_spec_read(1)
        result = cache.prepare_fill(c)
        assert result.requires_forced_commit
        assert result.victim is None
        # Nothing was evicted.
        assert cache.contains(a) and cache.contains(b)

    def test_install_into_full_set_without_prepare_raises(self):
        cache = small_cache(num_blocks=8, assoc=1)
        a = addr_in_set(cache, 0, 0)
        b = addr_in_set(cache, 0, 1)
        cache.install(a, CoherenceState.SHARED)
        with pytest.raises(SimulationError):
            cache.install(b, CoherenceState.SHARED)

    def test_capacity_never_exceeded_with_protocol(self):
        cache = small_cache(num_blocks=8, assoc=2)
        for i in range(50):
            addr = i * 64
            result = cache.prepare_fill(addr)
            assert not result.requires_forced_commit
            cache.install(addr, CoherenceState.SHARED)
        assert len(cache) <= 8


class TestFlashOperations:
    def test_flash_clear_spec_bits(self):
        cache = small_cache()
        for i in range(4):
            block = cache.install(i * 64, CoherenceState.MODIFIED)
            if i % 2 == 0:
                block.mark_spec_read(1)
            else:
                block.mark_spec_written(1)
        cleared = cache.flash_clear_spec_bits()
        assert cleared == 4
        assert not any(b.speculative for b in cache.blocks())
        # All blocks remain valid: commit publishes speculative data.
        assert len(cache) == 4

    def test_flash_clear_specific_checkpoint(self):
        cache = small_cache()
        cache.install(0, CoherenceState.MODIFIED).mark_spec_written(1)
        cache.install(64, CoherenceState.MODIFIED).mark_spec_written(2)
        cache.flash_clear_spec_bits(checkpoint_id=1)
        assert cache.lookup(0).spec_written is None
        assert cache.lookup(64).spec_written == 2

    def test_flash_invalidate_spec_written(self):
        cache = small_cache()
        written = cache.install(0, CoherenceState.MODIFIED)
        written.mark_spec_written(1)
        read_only = cache.install(64, CoherenceState.SHARED)
        read_only.mark_spec_read(1)
        plain = cache.install(128, CoherenceState.MODIFIED, dirty=True)

        invalidated = cache.flash_invalidate_spec_written()
        assert invalidated == [0]
        assert not cache.contains(0)
        # Speculatively read blocks stay valid but lose their bits.
        assert cache.contains(64)
        assert not cache.lookup(64).speculative
        # Unrelated blocks are untouched.
        assert cache.contains(128)
        assert cache.lookup(128).dirty

    def test_flash_invalidate_specific_checkpoint(self):
        cache = small_cache()
        cache.install(0, CoherenceState.MODIFIED).mark_spec_written(1)
        cache.install(64, CoherenceState.MODIFIED).mark_spec_written(2)
        invalidated = cache.flash_invalidate_spec_written(checkpoint_id=2)
        assert invalidated == [64]
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_speculative_blocks_iterator(self):
        cache = small_cache()
        cache.install(0, CoherenceState.MODIFIED).mark_spec_written(1)
        cache.install(64, CoherenceState.SHARED)
        spec_addrs = [b.address for b in cache.speculative_blocks()]
        assert spec_addrs == [0]

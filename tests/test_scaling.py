"""Tests for the machine-scaling study (experiments/scaling.py + CLI)."""

import pytest

from repro.campaign import DEFAULT_REGISTRY, Job, ResultCache, derived
from repro.campaign.executor import CampaignExecutor
from repro.cli import main
from repro.config import resolved_interconnect, small_config
from repro.cpu.stats import BREAKDOWN_COMPONENTS
from repro.engine.simulator import Simulator
from repro.engine.system import build_system
from repro.experiments import ExperimentSettings, run_scaling
from repro.workloads.registry import build_trace

CORE_COUNTS = (2, 4)
CONFIGS = ("sc", "invisi_sc")
SCENARIOS = ("false-sharing-storm",)


def tiny_settings(ops: int = 240) -> ExperimentSettings:
    return ExperimentSettings(num_cores=max(CORE_COUNTS), ops_per_thread=ops,
                              seeds=(1,), workloads=SCENARIOS)


def run_tiny(jobs: int = 1, cache=None):
    return run_scaling(tiny_settings(), core_counts=CORE_COUNTS,
                       configs=CONFIGS, scenarios=SCENARIOS,
                       jobs=jobs, cache=cache)


class TestRunScaling:
    def test_covers_every_cell(self):
        result = run_tiny()
        for scenario in SCENARIOS:
            for config in CONFIGS:
                curve = result.throughput[scenario][config]
                assert set(curve) == set(CORE_COUNTS)
                assert all(value > 0 for value in curve.values())
        assert result.report.simulated == len(CORE_COUNTS) * len(CONFIGS)

    def test_normalization_anchors_at_smallest_count(self):
        result = run_tiny()
        for scenario in SCENARIOS:
            for config in CONFIGS:
                curve = result.normalized(scenario, config)
                assert curve[min(CORE_COUNTS)] == pytest.approx(1.0)

    def test_breakdowns_are_percentages_per_geometry(self):
        result = run_tiny()
        assert len(result.breakdowns) == len(CORE_COUNTS) * len(SCENARIOS)
        for label, per_config in result.breakdowns.items():
            assert "@" in label
            for config in CONFIGS:
                values = per_config[config]
                assert set(values) == set(BREAKDOWN_COMPONENTS)
                assert sum(values.values()) == pytest.approx(100.0)

    def test_format_mentions_geometries_and_configs(self):
        text = run_tiny().format()
        assert "stall attribution" in text
        assert "1x2" in text and "2x2" in text
        for config in CONFIGS:
            assert config in text

    def test_serial_and_parallel_byte_identical(self, tmp_path):
        serial_cache = ResultCache(tmp_path / "serial")
        parallel_cache = ResultCache(tmp_path / "parallel")
        serial = run_tiny(jobs=1, cache=serial_cache)
        parallel = run_tiny(jobs=2, cache=parallel_cache)
        assert serial.format() == parallel.format()
        serial_entries = sorted(p.name for p in serial_cache.root.glob("*.json"))
        parallel_entries = sorted(p.name for p in parallel_cache.root.glob("*.json"))
        assert serial_entries == parallel_entries and serial_entries
        for name in serial_entries:
            assert ((serial_cache.root / name).read_bytes()
                    == (parallel_cache.root / name).read_bytes())

    def test_cached_rerun_simulates_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_tiny(cache=cache)
        warm = run_tiny(cache=cache)
        assert cold.report.simulated == 4
        assert warm.report.simulated == 0
        assert warm.report.cache_hits == 4
        assert cold.format() == warm.format()


class TestGeometryVariantCampaigns:
    def test_core_count_override_matches_serial_and_parallel(self, tmp_path):
        """A registered geometry variant simulates at its own core count."""
        name = "sc@4-test"
        DEFAULT_REGISTRY.register(
            name, derived("sc", num_cores=4,
                          interconnect=resolved_interconnect(4)))
        try:
            settings = ExperimentSettings(num_cores=2, ops_per_thread=200,
                                          seeds=(1,))
            jobs = [Job(name, "apache", 1)]
            serial = CampaignExecutor(settings, jobs=1).run(jobs)[0]
            parallel = CampaignExecutor(settings, jobs=2).run(jobs)[0]
            assert serial.config.num_cores == 4
            assert len(serial.core_stats) == 4
            assert serial.to_json() == parallel.to_json()
        finally:
            DEFAULT_REGISTRY.unregister(name)


class TestContentionEndToEnd:
    def test_queued_interconnect_slows_contended_sharing(self):
        trace = build_trace("false-sharing-storm", num_threads=4,
                            ops_per_thread=300, seed=5)
        runtimes = {}
        for mode in ("none", "queued"):
            config = small_config(
                num_cores=4,
                interconnect=resolved_interconnect(4, hop_latency=20,
                                                   contention=mode))
            system = build_system(config, trace)
            result = Simulator(system).run(seed=5)
            runtimes[mode] = result.runtime
            if mode == "none":
                assert system.memory.contention_cycles == 0
            else:
                assert system.memory.contention_cycles > 0
        assert runtimes["queued"] > runtimes["none"]

    def test_queued_runs_are_deterministic(self):
        trace = build_trace("false-sharing-storm", num_threads=4,
                            ops_per_thread=200, seed=9)
        config = small_config(
            num_cores=4,
            interconnect=resolved_interconnect(4, hop_latency=20,
                                               contention="queued"))
        first = Simulator(build_system(config, trace)).run(seed=9)
        second = Simulator(build_system(config, trace)).run(seed=9)
        assert first.to_json() == second.to_json()


class TestScalingCli:
    def test_small_preset_cold_then_cached(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code = main(["figure", "scaling", "--small", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "stall attribution" in out
        assert "cache hits" in out
        assert "6 simulated" in out

        code = main(["figure", "scaling", "--small", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 simulated, 6 cache hits" in out

    def test_cores_flag_rejected_for_scaling(self, capsys):
        code = main(["figure", "scaling", "--small", "--cores", "8",
                     "--no-cache"])
        assert code == 2
        assert "--core-counts" in capsys.readouterr().err

    def test_explicit_core_counts_and_scenarios(self, capsys):
        code = main(["figure", "scaling", "--core-counts", "2,4",
                     "--ops", "200", "--workloads", "task-pool",
                     "--no-cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "task-pool" in out
        assert "1x2" in out and "2x2" in out

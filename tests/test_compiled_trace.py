"""Tests for the struct-of-arrays compiled trace form."""

from repro.trace import CompiledTrace, Trace
from repro.trace.compiled import (
    KIND_FOR_OPCODE,
    OP_ATOMIC,
    OP_COMPUTE,
    OP_FENCE,
    OP_LOAD,
    OP_STORE,
    OPCODES,
)
from repro.trace.ops import OpKind, atomic, compute, fence, load, store

OPS = [load(0x100), store(0x140, size=4), atomic(0x180),
       fence(), compute(7, label="spin")]


class TestCompilation:
    def test_arrays_mirror_the_authored_ops(self):
        compiled = CompiledTrace(OPS)
        assert len(compiled) == 5
        assert compiled.kinds == [OP_LOAD, OP_STORE, OP_ATOMIC,
                                  OP_FENCE, OP_COMPUTE]
        assert compiled.addresses == [0x100, 0x140, 0x180, 0, 0]
        assert compiled.sizes == [8, 4, 8, 8, 8]
        assert compiled.cycles == [1, 1, 1, 1, 7]
        assert compiled.is_memory == [True, True, True, False, False]

    def test_instruction_weights_match_core_accounting(self):
        """compute bundles weigh their cycle count; everything else is 1."""
        compiled = CompiledTrace(OPS)
        assert compiled.instr_weights == [1, 1, 1, 1, 7]

    def test_view_returns_the_authoring_memop(self):
        compiled = CompiledTrace(OPS)
        for index, op in enumerate(OPS):
            assert compiled.view(index) is op

    def test_opcode_tables_are_total_and_inverse(self):
        assert set(OPCODES) == set(OpKind)
        assert sorted(OPCODES.values()) == list(range(5))
        for kind, code in OPCODES.items():
            assert KIND_FOR_OPCODE[code] is kind


class TestTraceCaching:
    def test_compiled_is_cached(self):
        trace = Trace(OPS)
        assert trace.compiled() is trace.compiled()

    def test_append_invalidates_the_cache(self):
        trace = Trace(OPS)
        first = trace.compiled()
        trace.append(load(0x200))
        second = trace.compiled()
        assert second is not first
        assert len(second) == len(OPS) + 1
        assert second.addresses[-1] == 0x200

    def test_extend_invalidates_the_cache(self):
        trace = Trace(OPS)
        trace.compiled()
        trace.extend([store(0x240), fence()])
        assert len(trace.compiled()) == len(OPS) + 2
        assert trace.compiled().kinds[-1] == OP_FENCE

    def test_empty_trace_compiles(self):
        compiled = Trace().compiled()
        assert len(compiled) == 0
        assert compiled.kinds == []


class TestNumpyArrayCaching:
    """The lazy numpy views must never outlive the ops they mirror."""

    def test_arrays_are_cached(self):
        compiled = Trace(OPS).compiled()
        assert compiled.arrays() is compiled.arrays()

    def test_arrays_mirror_the_columns(self):
        arrays = Trace(OPS).compiled().arrays()
        assert arrays.length == len(OPS)
        assert arrays.kinds.tolist() == [OP_LOAD, OP_STORE, OP_ATOMIC,
                                         OP_FENCE, OP_COMPUTE]
        assert arrays.addresses.tolist() == [0x100, 0x140, 0x180, 0, 0]
        assert arrays.instr_weights.tolist() == [1, 1, 1, 1, 7]
        assert arrays.is_memory.tolist() == [True, True, True, False, False]

    def test_append_after_arrays_invalidates_the_views(self):
        """Regression: mutating the trace must rebuild the numpy views.

        The views are cached on the compiled form, so a mutation that
        discards the compiled trace discards them; a stale-arrays bug
        would leave the batch engine planning against the old op list.
        """
        trace = Trace(OPS)
        stale = trace.compiled().arrays()
        trace.append(load(0x200))
        fresh = trace.compiled().arrays()
        assert fresh is not stale
        assert fresh.length == len(OPS) + 1
        assert fresh.addresses[-1] == 0x200

    def test_extend_after_arrays_invalidates_the_views(self):
        trace = Trace(OPS)
        trace.compiled().arrays()
        trace.extend([store(0x240), fence()])
        fresh = trace.compiled().arrays()
        assert fresh.length == len(OPS) + 2
        assert fresh.kinds[-1] == OP_FENCE

    def test_rebuilt_compiled_trace_rebuilds_arrays(self):
        """Even same-length recompilation must not serve foreign views."""
        trace = Trace(OPS)
        stale = trace.compiled().arrays()
        trace._compiled = CompiledTrace(list(OPS))
        assert trace.compiled().arrays() is not stale

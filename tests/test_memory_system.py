"""Tests for the directory-coherent memory system."""

import pytest

from tests.conftest import tiny_config
from repro.coherence.memory_system import MemorySystem
from repro.coherence.messages import ConflictResolution
from repro.errors import SimulationError
from repro.memory.block import CoherenceState


def make_mem(**kwargs) -> MemorySystem:
    return MemorySystem(tiny_config(**kwargs), record_transactions=True)


BLOCK = 64 * 1000  # an arbitrary aligned block address


class RecordingListener:
    """A listener that records conflicts and optionally defers requests."""

    def __init__(self, extra_delay: int = 0, commit_time: int = 0):
        self.conflicts = []
        self.forced_commits = []
        self.extra_delay = extra_delay
        self.commit_time = commit_time

    def on_external_conflict(self, block_addr, is_write, arrival_time):
        self.conflicts.append((block_addr, is_write, arrival_time))
        return ConflictResolution(extra_delay=self.extra_delay)

    def forced_commit(self, now):
        self.forced_commits.append(now)
        return max(now, self.commit_time)

    @property
    def speculating(self):
        return False


class TestBasicAccesses:
    def test_cold_load_misses_then_hits(self):
        mem = make_mem()
        out = mem.access(0, BLOCK, is_write=False, now=0)
        assert out.miss
        assert out.completion_time > 0
        again = mem.access(0, BLOCK, is_write=False, now=out.completion_time)
        assert again.hit
        assert again.completion_time == out.completion_time + mem.config.l1.hit_latency

    def test_exclusive_granted_when_unshared(self):
        mem = make_mem()
        out = mem.access(0, BLOCK, is_write=False, now=0)
        assert out.state is CoherenceState.EXCLUSIVE

    def test_second_reader_gets_shared(self):
        mem = make_mem()
        mem.access(0, BLOCK, is_write=False, now=0)
        out = mem.access(1, BLOCK, is_write=False, now=10)
        assert out.state is CoherenceState.SHARED
        entry = mem.directory.entry(BLOCK)
        assert entry.sharers == {0, 1}

    def test_store_miss_gets_modified(self):
        mem = make_mem()
        out = mem.access(0, BLOCK, is_write=True, now=0)
        assert out.state is CoherenceState.MODIFIED
        assert mem.directory.entry(BLOCK).owner == 0
        assert mem.is_write_hit(0, BLOCK)

    def test_write_hit_is_fast(self):
        mem = make_mem()
        first = mem.access(0, BLOCK, is_write=True, now=0)
        t = first.completion_time
        second = mem.access(0, BLOCK + 8, is_write=True, now=t)
        assert second.hit
        assert second.completion_time == t + mem.config.l1.hit_latency

    def test_upgrade_from_shared(self):
        mem = make_mem()
        mem.access(0, BLOCK, is_write=False, now=0)
        mem.access(1, BLOCK, is_write=False, now=5)
        out = mem.access(0, BLOCK, is_write=True, now=100)
        assert out.miss  # an upgrade is not a simple write hit
        assert mem.directory.entry(BLOCK).owner == 0
        assert not mem.contains(1, BLOCK)
        assert mem.upgrades[0] == 1

    def test_l2_miss_costs_memory_latency(self):
        mem = make_mem()
        cold = mem.access(0, BLOCK, is_write=False, now=0)
        warm = mem.access(1, BLOCK + 64, is_write=False, now=0)
        # Both are cold; compare against a block already present in the L2.
        mem.access(0, BLOCK + 128, is_write=False, now=0)
        again = mem.access(1, BLOCK + 128, is_write=False, now=10_000)
        assert again.record.l2_hit
        assert not cold.record.l2_hit
        assert cold.latency_proxy if hasattr(cold, "latency_proxy") else True
        assert (cold.completion_time - cold.record.start_time
                > again.completion_time - again.record.start_time - mem.config.memory_latency)


class TestOwnerForwarding:
    def test_read_forwarded_from_modified_owner(self):
        mem = make_mem()
        mem.access(0, BLOCK, is_write=True, now=0)
        out = mem.access(1, BLOCK, is_write=False, now=1000)
        assert out.record.forwarded_from_owner == 0
        # The previous owner is downgraded to Shared; directory tracks both.
        owner_block = mem.l1(0).lookup(BLOCK, touch=False)
        assert owner_block.state is CoherenceState.SHARED
        assert not owner_block.dirty
        entry = mem.directory.entry(BLOCK)
        assert entry.owner is None
        assert entry.sharers == {0, 1}
        # The dirty data went to the L2.
        assert mem.l2.contains(BLOCK)

    def test_write_invalidates_modified_owner(self):
        mem = make_mem()
        mem.access(0, BLOCK, is_write=True, now=0)
        out = mem.access(1, BLOCK, is_write=True, now=1000)
        assert out.record.forwarded_from_owner == 0
        assert not mem.contains(0, BLOCK)
        assert mem.directory.entry(BLOCK).owner == 1

    def test_write_invalidates_all_sharers(self):
        mem = make_mem(num_cores=4)
        for core in range(3):
            mem.access(core, BLOCK, is_write=False, now=core * 10)
        out = mem.access(3, BLOCK, is_write=True, now=1000)
        assert sorted(out.record.invalidated_sharers) == [0, 1, 2]
        for core in range(3):
            assert not mem.contains(core, BLOCK)
        assert mem.directory.entry(BLOCK).owner == 3

    def test_directory_serialises_same_block(self):
        mem = make_mem()
        first = mem.access(0, BLOCK, is_write=True, now=0)
        second = mem.access(1, BLOCK, is_write=True, now=0)
        assert second.record.start_time >= mem.config.directory_latency
        assert second.completion_time > 0


class TestConflictDetection:
    def test_external_write_to_spec_read_block_reported(self):
        mem = make_mem()
        listener = RecordingListener()
        mem.register_listener(0, listener)
        mem.access(0, BLOCK, is_write=False, now=0, spec_checkpoint=7)
        mem.access(1, BLOCK, is_write=True, now=500)
        assert len(listener.conflicts) == 1
        addr, is_write, arrival = listener.conflicts[0]
        assert addr == BLOCK and is_write
        assert arrival >= 500

    def test_external_read_to_spec_read_block_not_a_conflict(self):
        mem = make_mem()
        listener = RecordingListener()
        mem.register_listener(0, listener)
        mem.access(0, BLOCK, is_write=False, now=0, spec_checkpoint=7)
        mem.access(1, BLOCK, is_write=False, now=500)
        assert listener.conflicts == []

    def test_external_read_to_spec_written_block_is_a_conflict(self):
        mem = make_mem()
        listener = RecordingListener()
        mem.register_listener(0, listener)
        mem.access(0, BLOCK, is_write=True, now=0, spec_checkpoint=7)
        mem.access(1, BLOCK, is_write=False, now=500)
        assert len(listener.conflicts) == 1
        assert listener.conflicts[0][1] is False

    def test_conflict_deferral_extends_requester_latency(self):
        baseline_mem = make_mem()
        baseline_mem.register_listener(0, RecordingListener(extra_delay=0))
        baseline_mem.access(0, BLOCK, is_write=False, now=0, spec_checkpoint=7)
        baseline = baseline_mem.access(1, BLOCK, is_write=True, now=500)

        deferring_mem = make_mem()
        deferring_mem.register_listener(0, RecordingListener(extra_delay=300))
        deferring_mem.access(0, BLOCK, is_write=False, now=0, spec_checkpoint=7)
        deferred = deferring_mem.access(1, BLOCK, is_write=True, now=500)
        assert deferred.completion_time >= baseline.completion_time + 300

    def test_no_listener_means_no_delay(self):
        mem = make_mem()
        mem.access(0, BLOCK, is_write=False, now=0, spec_checkpoint=7)
        out = mem.access(1, BLOCK, is_write=True, now=500)
        assert out.completion_time > 500
        assert mem.conflicts_detected == 1


class TestSpeculativeStores:
    def test_spec_bits_set_on_access(self):
        mem = make_mem()
        mem.access(0, BLOCK, is_write=False, now=0, spec_checkpoint=3)
        assert mem.l1(0).lookup(BLOCK, touch=False).spec_read == 3
        mem.access(0, BLOCK + 64, is_write=True, now=0, spec_checkpoint=3)
        assert mem.l1(0).lookup(BLOCK + 64, touch=False).spec_written == 3

    def test_speculative_store_to_dirty_block_forces_clean_writeback(self):
        mem = make_mem()
        # Make the block non-speculatively dirty.
        mem.access(0, BLOCK, is_write=True, now=0)
        t = 1000
        out = mem.access(0, BLOCK, is_write=True, now=t, spec_checkpoint=9)
        assert out.hit
        assert out.completion_time == t + mem.config.clean_writeback_latency
        assert mem.clean_writebacks[0] == 1
        # The pre-speculative data is preserved in the L2.
        assert mem.l2.contains(BLOCK)
        block = mem.l1(0).lookup(BLOCK, touch=False)
        assert block.spec_written == 9

    def test_speculative_store_to_clean_block_is_fast(self):
        mem = make_mem()
        mem.access(0, BLOCK, is_write=False, now=0)   # Exclusive, clean
        t = 1000
        out = mem.access(0, BLOCK, is_write=True, now=t, spec_checkpoint=9)
        assert out.completion_time == t + mem.config.l1.hit_latency
        assert mem.clean_writebacks[0] == 0


class TestEvictionsAndForcedCommit:
    def test_eviction_updates_directory(self):
        mem = MemorySystem(tiny_config(l1_blocks=2, l1_assoc=1))
        # Fill the single way of set 0 twice: the first block is evicted.
        sets = mem.config.l1.num_sets
        first = 0
        second = sets * 64
        mem.access(0, first, is_write=True, now=0)
        mem.access(0, second, is_write=False, now=100)
        assert not mem.contains(0, first)
        assert mem.directory.entry(first).owner is None
        assert mem.l2.contains(first)

    def test_forced_commit_invoked_when_set_is_fully_speculative(self):
        config = tiny_config(l1_blocks=2, l1_assoc=1)
        mem = MemorySystem(config)
        listener = RecordingListener(commit_time=5000)

        class CommittingListener(RecordingListener):
            def __init__(self, mem):
                super().__init__(commit_time=5000)
                self._mem = mem

            def forced_commit(self, now):
                self.forced_commits.append(now)
                self._mem.l1(0).flash_clear_spec_bits()
                return max(now, self.commit_time)

        listener = CommittingListener(mem)
        mem.register_listener(0, listener)
        sets = config.l1.num_sets
        mem.access(0, 0, is_write=True, now=0, spec_checkpoint=1)
        out = mem.access(0, sets * 64, is_write=False, now=100, spec_checkpoint=1)
        assert listener.forced_commits
        assert out.forced_commit_delay == 5000 - 100

    def test_forced_commit_without_listener_raises(self):
        config = tiny_config(l1_blocks=2, l1_assoc=1)
        mem = MemorySystem(config)
        sets = config.l1.num_sets
        mem.access(0, 0, is_write=True, now=0, spec_checkpoint=1)
        with pytest.raises(SimulationError):
            mem.access(0, sets * 64, is_write=False, now=100, spec_checkpoint=1)


class TestStorePrefetchLead:
    def test_lead_shortens_write_miss_latency(self):
        slow = MemorySystem(tiny_config(store_prefetch_lead=0))
        fast = MemorySystem(tiny_config(store_prefetch_lead=80))
        a = slow.access(0, BLOCK, is_write=True, now=0)
        b = fast.access(0, BLOCK, is_write=True, now=0)
        assert b.completion_time == max(slow.config.l1.hit_latency,
                                        a.completion_time - 80)

    def test_lead_does_not_affect_loads(self):
        slow = MemorySystem(tiny_config(store_prefetch_lead=0))
        fast = MemorySystem(tiny_config(store_prefetch_lead=80))
        a = slow.access(0, BLOCK, is_write=False, now=0)
        b = fast.access(0, BLOCK, is_write=False, now=0)
        assert a.completion_time == b.completion_time


class TestInvariants:
    def test_check_invariants_after_traffic(self):
        mem = make_mem(num_cores=4)
        for i in range(40):
            core = i % 4
            addr = BLOCK + (i % 7) * 64
            mem.access(core, addr, is_write=(i % 3 == 0), now=i * 50)
        mem.check_invariants()

    def test_transaction_records_collected(self):
        mem = make_mem()
        mem.access(0, BLOCK, is_write=True, now=0)
        mem.access(1, BLOCK, is_write=False, now=100)
        assert len(mem.transactions) == 2
        assert all(t.completion_time >= t.issue_time for t in mem.transactions)

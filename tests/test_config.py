"""Tests for repro.config."""

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    ConsistencyModel,
    InterconnectConfig,
    SpeculationConfig,
    SpeculationMode,
    StoreBufferConfig,
    StoreBufferKind,
    SystemConfig,
    ViolationPolicy,
    default_l2_banks,
    default_store_buffer,
    paper_config,
    resolved_interconnect,
    small_config,
    torus_geometry,
)
from repro.errors import ConfigurationError


class TestCacheConfig:
    def test_basic_geometry(self):
        cache = CacheConfig(size_bytes=64 * 1024, associativity=2, block_bytes=64,
                            hit_latency=2)
        assert cache.num_blocks == 1024
        assert cache.num_sets == 512

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, associativity=2, block_bytes=48, hit_latency=1)

    def test_rejects_size_not_multiple_of_way_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, associativity=2, block_bytes=64, hit_latency=1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, associativity=2, block_bytes=64, hit_latency=-1)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=0, associativity=2, block_bytes=64, hit_latency=1)


class TestStoreBufferConfig:
    def test_valid(self):
        sb = StoreBufferConfig(StoreBufferKind.FIFO_WORD, 64, 8)
        assert sb.entries == 64

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            StoreBufferConfig(StoreBufferKind.FIFO_WORD, 0, 8)

    def test_rejects_zero_entry_bytes(self):
        with pytest.raises(ConfigurationError):
            StoreBufferConfig(StoreBufferKind.COALESCING_BLOCK, 8, 0)


class TestInterconnectConfig:
    def test_num_nodes(self):
        net = InterconnectConfig(mesh_width=4, mesh_height=4, hop_latency=100)
        assert net.num_nodes == 16

    def test_rejects_zero_dimension(self):
        with pytest.raises(ConfigurationError):
            InterconnectConfig(mesh_width=0, mesh_height=4, hop_latency=1)

    def test_contention_defaults_off(self):
        net = InterconnectConfig(mesh_width=4, mesh_height=4, hop_latency=100)
        assert net.contention == "none"
        assert net.link_bandwidth == 1

    def test_rejects_unknown_contention_mode(self):
        with pytest.raises(ConfigurationError):
            InterconnectConfig(mesh_width=2, mesh_height=2, hop_latency=10,
                               contention="infinite")

    def test_rejects_zero_link_bandwidth(self):
        with pytest.raises(ConfigurationError):
            InterconnectConfig(mesh_width=2, mesh_height=2, hop_latency=10,
                               link_bandwidth=0)

    def test_link_occupancy_scales_with_bandwidth(self):
        slow = InterconnectConfig(mesh_width=2, mesh_height=2, hop_latency=20,
                                  contention="queued")
        fast = InterconnectConfig(mesh_width=2, mesh_height=2, hop_latency=20,
                                  contention="queued", link_bandwidth=4)
        assert slow.link_occupancy == 20
        assert fast.link_occupancy == 5
        # Occupancy never collapses to zero, however wide the link.
        wide = InterconnectConfig(mesh_width=2, mesh_height=2, hop_latency=1,
                                  contention="queued", link_bandwidth=8)
        assert wide.link_occupancy == 1


class TestTorusGeometryResolver:
    @pytest.mark.parametrize("cores,expected", [
        (1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)), (8, (2, 4)),
        (12, (3, 4)), (16, (4, 4)), (32, (4, 8)), (48, (6, 8)), (64, (8, 8)),
    ])
    def test_most_square_factorisation(self, cores, expected):
        assert torus_geometry(cores) == expected

    def test_prime_counts_resolve_to_rings(self):
        assert torus_geometry(7) == (1, 7)
        assert torus_geometry(17) == (1, 17)

    def test_every_count_covers_exactly_its_cores(self):
        for cores in range(1, 65):
            width, height = torus_geometry(cores)
            assert width * height == cores
            assert width <= height

    def test_rejects_non_positive_and_oversized(self):
        with pytest.raises(ConfigurationError):
            torus_geometry(0)
        with pytest.raises(ConfigurationError):
            torus_geometry(65)

    def test_resolved_interconnect_carries_knobs(self):
        net = resolved_interconnect(8, hop_latency=40, contention="queued",
                                    link_bandwidth=2)
        assert (net.mesh_width, net.mesh_height) == (2, 4)
        assert net.contention == "queued"
        assert net.link_occupancy == 20

    def test_default_l2_banks(self):
        assert default_l2_banks(4) == 1
        assert default_l2_banks(16) == 1
        assert default_l2_banks(32) == 2
        # Rounded down to a power of two: 3 banks cannot split a
        # power-of-two set count.
        assert default_l2_banks(48) == 2
        assert default_l2_banks(64) == 4

    def test_every_resolvable_core_count_builds_a_config(self):
        for cores in range(1, 65):
            config = paper_config(num_cores=cores)
            assert config.interconnect.num_nodes == cores
            small = small_config(num_cores=cores)
            assert small.l2.num_sets % small.l2_banks == 0


class TestSpeculationConfig:
    def test_defaults_are_non_speculative(self):
        spec = SpeculationConfig()
        assert spec.mode is SpeculationMode.NONE
        assert spec.num_checkpoints == 1

    def test_rejects_zero_checkpoints(self):
        with pytest.raises(ConfigurationError):
            SpeculationConfig(num_checkpoints=0)

    def test_rejects_three_checkpoints_for_invisifence(self):
        with pytest.raises(ConfigurationError):
            SpeculationConfig(mode=SpeculationMode.SELECTIVE, num_checkpoints=3)

    def test_aso_may_use_many_checkpoints(self):
        spec = SpeculationConfig(mode=SpeculationMode.ASO, num_checkpoints=8)
        assert spec.num_checkpoints == 8

    def test_rejects_non_positive_cov_timeout(self):
        with pytest.raises(ConfigurationError):
            SpeculationConfig(cov_timeout=0)

    def test_rejects_non_positive_chunk(self):
        with pytest.raises(ConfigurationError):
            SpeculationConfig(min_chunk_size=0)


class TestDefaultStoreBuffer:
    def test_sc_and_tso_get_fifo(self):
        for model in (ConsistencyModel.SC, ConsistencyModel.TSO):
            sb = default_store_buffer(model, SpeculationConfig())
            assert sb.kind is StoreBufferKind.FIFO_WORD
            assert sb.entries == 64

    def test_rmo_gets_coalescing(self):
        sb = default_store_buffer(ConsistencyModel.RMO, SpeculationConfig())
        assert sb.kind is StoreBufferKind.COALESCING_BLOCK
        assert sb.entries == 8

    def test_selective_single_checkpoint_gets_eight_entries(self):
        sb = default_store_buffer(ConsistencyModel.SC,
                                  SpeculationConfig(mode=SpeculationMode.SELECTIVE))
        assert sb.kind is StoreBufferKind.COALESCING_BLOCK
        assert sb.entries == 8

    def test_two_checkpoints_get_32_entries(self):
        sb = default_store_buffer(
            ConsistencyModel.SC,
            SpeculationConfig(mode=SpeculationMode.SELECTIVE, num_checkpoints=2))
        assert sb.entries == 32

    def test_continuous_gets_32_entries(self):
        sb = default_store_buffer(
            ConsistencyModel.SC,
            SpeculationConfig(mode=SpeculationMode.CONTINUOUS, num_checkpoints=2))
        assert sb.entries == 32

    def test_aso_gets_large_fifo(self):
        sb = default_store_buffer(ConsistencyModel.SC,
                                  SpeculationConfig(mode=SpeculationMode.ASO))
        assert sb.kind is StoreBufferKind.FIFO_WORD
        assert sb.entries >= 128


class TestSystemConfig:
    def test_paper_defaults_match_figure6(self):
        config = paper_config()
        assert config.num_cores == 16
        assert config.l1.size_bytes == 64 * 1024
        assert config.l1.hit_latency == 2
        assert config.l2.size_bytes == 8 * 1024 * 1024
        assert config.l2.hit_latency == 25
        assert config.memory_latency == 160
        assert config.interconnect.mesh_width == 4
        assert config.interconnect.hop_latency == 100

    def test_store_buffer_auto_selected(self):
        config = paper_config(ConsistencyModel.RMO)
        assert config.store_buffer is not None
        assert config.store_buffer.kind is StoreBufferKind.COALESCING_BLOCK

    def test_geometry_resolves_from_core_count(self):
        # 17 cores used to be rejected against the fixed 4x4 torus; the
        # resolver now lays out a 1x17 ring for it and an 8x8 at 64 cores.
        assert paper_config(num_cores=17).interconnect.num_nodes == 17
        big = paper_config(num_cores=64)
        assert (big.interconnect.mesh_width, big.interconnect.mesh_height) == (8, 8)
        assert big.l2_banks == 4
        with pytest.raises(ConfigurationError):
            paper_config(num_cores=65)

    def test_rejects_more_cores_than_nodes(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_cores=17)  # default interconnect is the 4x4 torus

    def test_explicit_interconnect_override(self):
        net = resolved_interconnect(16, contention="queued", link_bandwidth=2)
        config = paper_config(num_cores=16, interconnect=net)
        assert config.interconnect.contention == "queued"

    def test_rejects_unsplittable_l2_banking(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_cores=2, l2_banks=3)
        with pytest.raises(ConfigurationError):
            SystemConfig(num_cores=2, l2_banks=0)

    def test_rejects_mismatched_block_sizes(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(
                num_cores=2,
                l1=CacheConfig(size_bytes=8 * 1024, associativity=2, block_bytes=64,
                               hit_latency=2),
                l2=CacheConfig(size_bytes=64 * 1024, associativity=8, block_bytes=128,
                               hit_latency=10),
            )

    def test_describe_mentions_key_parameters(self):
        info = paper_config().describe()
        assert info["cores"] == "16"
        assert "64KB" in info["L1"]
        assert "torus" in info["interconnect"]

    def test_replace_creates_modified_copy(self):
        config = paper_config()
        other = config.replace(num_cores=8)
        assert other.num_cores == 8
        assert config.num_cores == 16

    def test_uses_speculation_flag(self):
        assert not paper_config().uses_speculation
        spec = SpeculationConfig(mode=SpeculationMode.SELECTIVE)
        assert paper_config(speculation=spec).uses_speculation

    def test_small_config_scales_down(self):
        config = small_config(num_cores=4)
        assert config.num_cores == 4
        assert config.l1.size_bytes < paper_config().l1.size_bytes
        assert config.memory_latency < paper_config().memory_latency

    def test_small_config_grows_mesh_for_more_cores(self):
        config = small_config(num_cores=9)
        assert config.interconnect.num_nodes >= 9

    def test_enums_render_as_strings(self):
        assert str(ConsistencyModel.SC) == "sc"
        assert str(SpeculationMode.SELECTIVE) == "selective"
        assert str(ViolationPolicy.COMMIT_ON_VIOLATE) == "commit_on_violate"
        assert str(StoreBufferKind.FIFO_WORD) == "fifo_word"

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            paper_config().num_cores = 4
